"""Exactly-rounded float64 summation for SUM/AVG aggregates.

Float addition is not associative, so a naive parallel SUM depends on
shard order — the reason the fragment planner historically declined
float aggregates. This module computes group sums *exactly*: every
float64 is decomposed into an integer mantissa and a power-of-two
exponent (``np.frexp``), mantissas are accumulated per (group, exponent)
in overflow-safe int64 lanes, and per-group totals combine into one
arbitrary-precision ``(mantissa, exp2)`` pair. The pair represents the
mathematically exact sum ``mantissa * 2**exp2``; converting it to float64
rounds once, correctly. The result is therefore independent of addition
order — stronger than compensated (Neumaier) summation, whose partials
are exact only up to one residual term — so sequential execution and any
shard layout produce bit-identical answers.

Inputs must be finite (callers gate on ``np.isfinite``); the int64 lane
accumulation is exact for up to 2**31 rows per group per exponent, far
above anything a batch holds.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Optional, Tuple

import numpy as np

#: 2**53 — frexp mantissas in [0.5, 1) scale to integers in [2**52, 2**53].
_MANTISSA_SCALE = float(1 << 53)

#: The exact-sum pair representing zero.
ZERO_PAIR: Tuple[int, int] = (0, 0)


def add_pairs(a: Tuple[int, int], b: Tuple[int, int]) -> Tuple[int, int]:
    """Exact sum of two (mantissa, exp2) pairs (commutative, associative)."""
    ma, ea = a
    mb, eb = b
    if ma == 0:
        return b
    if mb == 0:
        return a
    e = min(ea, eb)
    m = (ma << (ea - e)) + (mb << (eb - e))
    if m == 0:
        return ZERO_PAIR
    # Normalize away trailing zero bits so mantissas stay small across
    # long accumulation chains.
    shift = (m & -m).bit_length() - 1
    return (m >> shift, e + shift)


def pair_to_float(pair: Tuple[int, int]) -> float:
    """Round an exact (mantissa, exp2) pair to the nearest float64."""
    m, e = pair
    if m == 0:
        return 0.0
    try:
        if e >= 0:
            return float(m << e)
        return float(Fraction(m, 1 << -e))
    except OverflowError:
        return math.inf if m > 0 else -math.inf


def group_sum_pairs(
    values: np.ndarray, gids: np.ndarray, n_groups: int
) -> List[Tuple[int, int]]:
    """Exact per-group sums of finite float64 values as (mantissa, exp2).

    Vectorized over rows: mantissas are split into 32-bit lo/hi int64
    lanes and accumulated per (group, exponent) with ``np.add.at``; only
    the final cross-exponent combine runs in Python, once per touched
    (group, exponent) cell.
    """
    totals: List[Tuple[int, int]] = [ZERO_PAIR] * n_groups
    if len(values) == 0:
        return totals
    mantissa, exponent = np.frexp(values.astype(np.float64))
    m_int = np.round(mantissa * _MANTISSA_SCALE).astype(np.int64)
    e_int = exponent.astype(np.int64) - 53
    live = m_int != 0  # zeros contribute nothing at any exponent
    m_int, e_int = m_int[live], e_int[live]
    gids = np.asarray(gids, dtype=np.int64)[live]
    mask32 = np.int64(0xFFFFFFFF)
    for exp in np.unique(e_int):
        sel = e_int == exp
        g = gids[sel]
        mm = m_int[sel]
        lo = np.zeros(n_groups, dtype=np.int64)
        hi = np.zeros(n_groups, dtype=np.int64)
        # mm == (mm >> 32) * 2**32 + (mm & mask32) holds for negatives
        # too (arithmetic shift); each lane stays far from int64 range.
        np.add.at(lo, g, mm & mask32)
        np.add.at(hi, g, mm >> 32)
        for gi in np.unique(g):
            cell = (int(hi[gi]) << 32) + int(lo[gi])
            if cell:
                totals[gi] = add_pairs(totals[gi], (cell, int(exp)))
    return totals


def exact_group_sums(
    values: np.ndarray, gids: np.ndarray, n_groups: int
) -> np.ndarray:
    """Per-group exactly-rounded float64 sums (order-independent)."""
    pairs = group_sum_pairs(values, gids, n_groups)
    return np.array([pair_to_float(p) for p in pairs], dtype=np.float64)


def sum_pairs_shard(
    values: np.ndarray, gids: np.ndarray, n_groups: int
) -> np.ndarray:
    """Kernel-side partial: one exact pair per shard-local group.

    Returned as an object array so shards of any size pickle cleanly;
    ``add_pairs`` merges partials across shards without rounding.
    """
    pairs = group_sum_pairs(values, gids, n_groups)
    out = np.empty(n_groups, dtype=object)
    out[:] = pairs
    return out


def merge_pair_arrays(
    concatenated: np.ndarray, gids: np.ndarray, n_groups: int
) -> Optional[np.ndarray]:
    """Combine concatenated shard pair-partials by merged group id."""
    merged: List[Tuple[int, int]] = [ZERO_PAIR] * n_groups
    for pos, pair in enumerate(concatenated):
        gi = int(gids[pos])
        merged[gi] = add_pairs(merged[gi], pair)
    out = np.empty(n_groups, dtype=object)
    out[:] = merged
    return out


def pairs_to_floats(pairs: np.ndarray) -> np.ndarray:
    """Object array of pairs -> exactly-rounded float64 values."""
    return np.array([pair_to_float(p) for p in pairs], dtype=np.float64)
