"""Columnar batches flowing between plan operators.

A :class:`ColumnVector` is a numpy array plus enough metadata to interpret
it (logical type, string dictionary). A :class:`Batch` maps
``(alias, column_name)`` keys to equal-length vectors; after projection the
alias is the empty string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ExecutionError
from ..storage import StringDictionary, Table
from ..types import DataType, Value

Key = Tuple[str, str]  # (alias, column) — alias "" after projection


@dataclass
class ColumnVector:
    values: np.ndarray
    dtype: DataType
    dictionary: Optional[StringDictionary] = None

    def __post_init__(self) -> None:
        if self.dtype is DataType.STRING and self.dictionary is None:
            raise ExecutionError("string vectors need a dictionary")

    def __len__(self) -> int:
        return len(self.values)

    def take(self, rows: np.ndarray) -> "ColumnVector":
        return ColumnVector(self.values[rows], self.dtype, self.dictionary)

    def mask(self, mask: np.ndarray) -> "ColumnVector":
        return ColumnVector(self.values[mask], self.dtype, self.dictionary)

    def decode(self) -> List[Value]:
        if self.dictionary is not None:
            return self.dictionary.decode_many(self.values)
        # One vectorized cast + tolist() instead of a Python-level
        # int()/float() call per element (the fetch-phase hot loop).
        if self.dtype is DataType.INT:
            return np.asarray(self.values, dtype=np.int64).tolist()
        return np.asarray(self.values, dtype=np.float64).tolist()

    def sort_ranks(self) -> np.ndarray:
        """Values usable for ordering (lexicographic for strings)."""
        if self.dictionary is None:
            return self.values
        perm = self.dictionary.sort_permutation()
        ranks = np.empty(len(perm), dtype=np.int64)
        ranks[perm] = np.arange(len(perm))
        if len(self.values) == 0:
            return self.values
        return ranks[self.values.astype(np.int64)]


class Batch:
    """A set of equal-length column vectors."""

    def __init__(self, columns: Dict[Key, ColumnVector], length: int):
        for key, vector in columns.items():
            if len(vector) != length:
                raise ExecutionError(
                    f"column {key} has length {len(vector)}, batch is {length}"
                )
        self.columns = columns
        self.length = length

    def __len__(self) -> int:
        return self.length

    def column(self, alias: str, name: str) -> ColumnVector:
        key = (alias.lower(), name.lower())
        vector = self.columns.get(key)
        if vector is None:
            raise ExecutionError(f"batch has no column {key}")
        return vector

    def has_column(self, alias: str, name: str) -> bool:
        return (alias.lower(), name.lower()) in self.columns

    def take(self, rows: np.ndarray) -> "Batch":
        return Batch(
            {k: v.take(rows) for k, v in self.columns.items()}, len(rows)
        )

    def mask(self, mask: np.ndarray) -> "Batch":
        count = int(mask.sum())
        return Batch({k: v.mask(mask) for k, v in self.columns.items()}, count)

    @staticmethod
    def merge(left: "Batch", right: "Batch") -> "Batch":
        if len(left) != len(right):
            raise ExecutionError("merging batches of different lengths")
        columns = dict(left.columns)
        for key, vector in right.columns.items():
            if key in columns:
                raise ExecutionError(f"duplicate column {key} in merge")
            columns[key] = vector
        return Batch(columns, len(left))

    @staticmethod
    def empty() -> "Batch":
        return Batch({}, 0)


def batch_from_table(
    table: Table,
    alias: str,
    rows: Optional[np.ndarray],
    columns: Optional[List[str]] = None,
) -> Batch:
    """Materialize (a subset of) a table as a batch."""
    names = columns if columns is not None else list(table.schema.column_names())
    out: Dict[Key, ColumnVector] = {}
    length = table.row_count if rows is None else len(rows)
    for name in names:
        column = table.column(name)
        data = column.data if rows is None else column.data[rows]
        out[(alias.lower(), name.lower())] = ColumnVector(
            data, column.dtype, column.dictionary
        )
    return Batch(out, length)


def code_lookup(
    source: StringDictionary, target: StringDictionary
) -> np.ndarray:
    """Translation array mapping source codes to target codes (-1 missing).

    The array form is what crosses process boundaries: worker kernels
    apply it with :func:`apply_code_lookup` without ever touching the
    dictionaries themselves.
    """
    lookup = np.full(max(len(source), 1), -1, dtype=np.int64)
    for code, value in enumerate(source.values()):
        mapped = target.find_code(value)
        if mapped is not None:
            lookup[code] = mapped
    return lookup


def apply_code_lookup(lookup: np.ndarray, codes: np.ndarray) -> np.ndarray:
    if len(codes) == 0:
        return codes.astype(np.int64)
    return lookup[codes.astype(np.int64)]


def translate_codes(
    source: StringDictionary, target: StringDictionary, codes: np.ndarray
) -> np.ndarray:
    """Map codes from one dictionary into another (-1 for missing values).

    Needed whenever string columns from different tables meet (joins,
    residual comparisons): codes are only meaningful per dictionary.
    """
    if source is target:
        return codes
    return apply_code_lookup(code_lookup(source, target), codes)
