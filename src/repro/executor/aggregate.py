"""Grouped aggregation over batches."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ExecutionError
from ..sql import ast
from ..types import DataType
from .expr import eval_bool, eval_expr
from .floatsum import exact_group_sums
from .vector import Batch, ColumnVector


def collect_aggregates(exprs) -> List[ast.Aggregate]:
    """All distinct Aggregate nodes appearing in the given expressions."""
    found: List[ast.Aggregate] = []
    seen = set()

    def visit(node) -> None:
        if node is None:
            return
        if isinstance(node, ast.Aggregate):
            if node not in seen:
                seen.add(node)
                found.append(node)
            return
        if isinstance(node, ast.BinaryArith):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, ast.UnaryArith):
            visit(node.operand)
        elif isinstance(node, ast.Comparison):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, (ast.AndExpr, ast.OrExpr)):
            for operand in node.operands:
                visit(operand)
        elif isinstance(node, ast.NotExpr):
            visit(node.operand)
        elif isinstance(node, ast.BetweenExpr):
            visit(node.operand)
            visit(node.low)
            visit(node.high)
        elif isinstance(node, ast.InListExpr):
            visit(node.operand)

    for expr in exprs:
        visit(expr)
    return found


def group_ids(batch: Batch, keys: Tuple[ast.ColumnRef, ...]):
    """(gids, n_groups, representative row index per group)."""
    n = len(batch)
    if not keys:
        return np.zeros(n, dtype=np.int64), 1, np.zeros(1, dtype=np.int64)
    code_columns = []
    for key in keys:
        vector = eval_expr(key, batch)
        _, inverse = np.unique(vector.values, return_inverse=True)
        code_columns.append(inverse.astype(np.int64))
    stacked = np.stack(code_columns, axis=1)
    _, first_idx, inverse = np.unique(
        stacked, axis=0, return_index=True, return_inverse=True
    )
    return inverse.astype(np.int64), len(first_idx), first_idx.astype(np.int64)


def _min_max_by_group(
    values: ColumnVector, gids: np.ndarray, n_groups: int, want_max: bool
) -> np.ndarray:
    """Row index of the min/max value within each group."""
    ranks = values.sort_ranks()
    order = np.lexsort((ranks, gids))
    sorted_gids = gids[order]
    if want_max:
        pos = np.searchsorted(sorted_gids, np.arange(n_groups), side="right") - 1
    else:
        pos = np.searchsorted(sorted_gids, np.arange(n_groups), side="left")
    return order[pos]


def compute_aggregate(
    agg: ast.Aggregate, batch: Batch, gids: np.ndarray, n_groups: int
) -> ColumnVector:
    """Per-group value of one aggregate function."""
    if agg.func is ast.AggFunc.COUNT and agg.argument is None:
        counts = np.bincount(gids, minlength=n_groups)
        return ColumnVector(counts.astype(np.int64), DataType.INT)

    argument = eval_expr(agg.argument, batch)
    if agg.func is ast.AggFunc.COUNT:
        if agg.distinct:
            if len(batch) == 0:
                return ColumnVector(
                    np.zeros(n_groups, dtype=np.int64), DataType.INT
                )
            pairs = np.stack([gids, argument.values.astype(np.int64)], axis=1) \
                if argument.dtype is not DataType.FLOAT else None
            if pairs is None:
                # Float distinct: factorize values first.
                _, codes = np.unique(argument.values, return_inverse=True)
                pairs = np.stack([gids, codes.astype(np.int64)], axis=1)
            unique_pairs = np.unique(pairs, axis=0)
            counts = np.bincount(unique_pairs[:, 0], minlength=n_groups)
            return ColumnVector(counts.astype(np.int64), DataType.INT)
        counts = np.bincount(gids, minlength=n_groups)
        return ColumnVector(counts.astype(np.int64), DataType.INT)

    if agg.func in (ast.AggFunc.SUM, ast.AggFunc.AVG):
        if argument.dtype is DataType.STRING:
            raise ExecutionError(f"{agg.func.value.upper()} over string values")
        values = argument.values.astype(np.float64)
        if agg.distinct:
            pairs = np.unique(np.stack([gids.astype(np.float64), values], axis=1), axis=0)
            sums = np.bincount(
                pairs[:, 0].astype(np.int64), weights=pairs[:, 1], minlength=n_groups
            )
            counts = np.bincount(pairs[:, 0].astype(np.int64), minlength=n_groups)
        else:
            if argument.dtype is DataType.FLOAT and np.isfinite(values).all():
                # Exactly-rounded, order-independent float sums: the same
                # answer the parallel fragment path merges shard partials
                # into, keeping sequential and sharded plans bit-identical.
                sums = exact_group_sums(values, gids, n_groups)
            else:
                sums = np.bincount(gids, weights=values, minlength=n_groups)
            counts = np.bincount(gids, minlength=n_groups)
        if agg.func is ast.AggFunc.SUM:
            if argument.dtype is DataType.INT:
                return ColumnVector(
                    np.round(sums).astype(np.int64), DataType.INT
                )
            return ColumnVector(sums, DataType.FLOAT)
        averages = np.divide(
            sums, counts, out=np.zeros_like(sums), where=counts > 0
        )
        return ColumnVector(averages, DataType.FLOAT)

    if agg.func in (ast.AggFunc.MIN, ast.AggFunc.MAX):
        if len(batch) == 0:
            # No NULLs in this engine; empty input yields a zero vector.
            zeros = np.zeros(n_groups, dtype=argument.values.dtype)
            return ColumnVector(zeros, argument.dtype, argument.dictionary)
        idx = _min_max_by_group(
            argument, gids, n_groups, want_max=agg.func is ast.AggFunc.MAX
        )
        return argument.take(idx)

    raise ExecutionError(f"unsupported aggregate {agg.func}")


def aggregate_batch(
    batch: Batch,
    group_keys: Tuple[ast.ColumnRef, ...],
    items,
    output_names: Tuple[str, ...],
    having: Optional[ast.BoolExpr],
) -> Batch:
    """Full GROUP BY / HAVING / projection pipeline for one block."""
    gids, n_groups, representatives = group_ids(batch, group_keys)
    if len(batch) == 0 and group_keys:
        n_groups = 0
        representatives = np.empty(0, dtype=np.int64)

    # Group-level batch exposes the key columns so that non-aggregate
    # references in the select list resolve per group.
    group_columns: Dict[Tuple[str, str], ColumnVector] = {}
    for key in group_keys:
        vector = eval_expr(key, batch)
        group_columns[((key.qualifier or "").lower(), key.name.lower())] = (
            vector.take(representatives)
        )
    group_batch = Batch(group_columns, n_groups)

    needed = collect_aggregates(
        [item.expr for item in items] + ([having] if having is not None else [])
    )
    computed: Dict[ast.Aggregate, ColumnVector] = {}
    for agg in needed:
        computed[agg] = compute_aggregate(agg, batch, gids, n_groups)

    return finalize_aggregate(group_batch, computed, items, output_names, having)


def finalize_aggregate(
    group_batch: Batch,
    computed: Dict[ast.Aggregate, ColumnVector],
    items,
    output_names: Tuple[str, ...],
    having: Optional[ast.BoolExpr],
) -> Batch:
    """HAVING + projection over per-group aggregate vectors.

    Shared tail of the sequential :func:`aggregate_batch` pipeline and
    the parallel fused-aggregate fragment: both produce ``group_batch``
    (key columns at group representatives) plus ``computed`` (one vector
    per distinct aggregate) and hand off here.
    """

    def resolver(agg: ast.Aggregate) -> ColumnVector:
        return computed[agg]

    if having is not None:
        mask = eval_bool(having, group_batch, resolver)
        group_batch = group_batch.mask(mask)
        computed = {a: v.mask(mask) for a, v in computed.items()}

        def resolver(agg: ast.Aggregate) -> ColumnVector:  # noqa: F811
            return computed[agg]

    out: Dict[Tuple[str, str], ColumnVector] = {}
    for item, name in zip(items, output_names):
        out[("", name.lower())] = eval_expr(item.expr, group_batch, resolver)
    return Batch(out, len(group_batch))
