"""A deliberately naive reference executor, used only by the test suite.

Evaluates a bound query block row-at-a-time over the full cross product of
its quantifiers. Unusable for real workloads, trivially correct — which is
the point: property tests compare the optimized executor's output against
this one on randomized small queries.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Tuple

from ..errors import ExecutionError
from ..sql import ast
from ..sql.qgm import QueryBlock
from ..storage import Database
from ..types import Value


def run_reference(block: QueryBlock, database: Database) -> List[Tuple[Value, ...]]:
    """All result rows of the block, unordered unless ORDER BY is given."""
    rows = _join_rows(block, database)
    if block.has_aggregates:
        out = _aggregate(block, rows)
    else:
        out = [
            tuple(_eval(item.expr, env) for item in block.select_items)
            for env in rows
        ]
    if block.distinct:
        seen = set()
        deduped = []
        for row in out:
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        out = deduped
    if block.order_by:
        out = _order(block, out)
    if block.limit is not None:
        out = out[: block.limit]
    return out


Env = Dict[Tuple[str, str], Value]


def _quantifier_rows(block: QueryBlock, database: Database, alias: str) -> List[Env]:
    quantifier = block.quantifiers[alias]
    if quantifier.is_base:
        table = database.table(quantifier.table_name)
        names = table.schema.column_names()
        out = []
        for row in table.fetch_rows(None, names):
            out.append(
                {(alias, n.lower()): v for n, v in zip(names, row)}
            )
        return out
    child_rows = run_reference(quantifier.child, database)
    names = quantifier.child.output_names()
    return [
        {(alias, n): v for n, v in zip(names, row)} for row in child_rows
    ]


def _join_rows(block: QueryBlock, database: Database) -> List[Env]:
    # Local predicates and single-alias residuals are applied per
    # quantifier BEFORE the cross product — semantically identical for a
    # conjunctive WHERE, and it keeps the naive product tractable.
    per_alias = []
    for alias in block.quantifiers:
        rows = _quantifier_rows(block, database, alias)
        predicates = block.local_predicates_for(alias)
        residuals = block.scan_residuals.get(alias, [])
        filtered = [
            env
            for env in rows
            if all(_local_holds(p, env) for p in predicates)
            and all(_bool_eval(r, env) for r in residuals)
        ]
        per_alias.append(filtered)
    results: List[Env] = []
    for combo in itertools.product(*per_alias):
        env: Env = {}
        for part in combo:
            env.update(part)
        if _passes(block, env):
            results.append(env)
    return results


def _passes(block: QueryBlock, env: Env) -> bool:
    for join in block.join_predicates:
        if env[(join.left_alias, join.left_column)] != env[
            (join.right_alias, join.right_column)
        ]:
            return False
    for residual in block.residuals:
        if not _bool_eval(residual, env):
            return False
    return True


def _local_holds(predicate, env: Env) -> bool:
    from ..predicates import PredOp

    value = env[(predicate.alias, predicate.column)]
    op = predicate.op
    if op is PredOp.EQ:
        return value == predicate.value
    if op is PredOp.NE:
        return value != predicate.value
    if op is PredOp.IN:
        return value in predicate.values
    if op is PredOp.BETWEEN:
        return predicate.values[0] <= value <= predicate.values[1]
    if op is PredOp.LT:
        return value < predicate.value
    if op is PredOp.LE:
        return value <= predicate.value
    if op is PredOp.GT:
        return value > predicate.value
    if op is PredOp.GE:
        return value >= predicate.value
    raise ExecutionError(f"unhandled op {op}")


def _eval(expr: ast.Expr, env: Env, aggs: Optional[Dict] = None) -> Value:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return env[((expr.qualifier or "").lower(), expr.name.lower())]
    if isinstance(expr, ast.UnaryArith):
        return -_eval(expr.operand, env, aggs)
    if isinstance(expr, ast.BinaryArith):
        left = _eval(expr.left, env, aggs)
        right = _eval(expr.right, env, aggs)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    if isinstance(expr, ast.Aggregate):
        if aggs is None:
            raise ExecutionError("aggregate outside aggregation")
        return aggs[expr]
    raise ExecutionError(f"cannot evaluate {expr!r}")


def _bool_eval(expr: ast.BoolExpr, env: Env, aggs: Optional[Dict] = None) -> bool:
    if isinstance(expr, ast.Comparison):
        left = _eval(expr.left, env, aggs)
        right = _eval(expr.right, env, aggs)
        return {
            ast.CompareOp.EQ: left == right,
            ast.CompareOp.NE: left != right,
            ast.CompareOp.LT: left < right,
            ast.CompareOp.LE: left <= right,
            ast.CompareOp.GT: left > right,
            ast.CompareOp.GE: left >= right,
        }[expr.op]
    if isinstance(expr, ast.BetweenExpr):
        value = _eval(expr.operand, env, aggs)
        result = _eval(expr.low, env, aggs) <= value <= _eval(expr.high, env, aggs)
        return not result if expr.negated else result
    if isinstance(expr, ast.InListExpr):
        value = _eval(expr.operand, env, aggs)
        result = value in {item.value for item in expr.items}
        return not result if expr.negated else result
    if isinstance(expr, ast.AndExpr):
        return all(_bool_eval(o, env, aggs) for o in expr.operands)
    if isinstance(expr, ast.OrExpr):
        return any(_bool_eval(o, env, aggs) for o in expr.operands)
    if isinstance(expr, ast.NotExpr):
        return not _bool_eval(expr.operand, env, aggs)
    raise ExecutionError(f"cannot evaluate {expr!r}")


def _aggregate(block: QueryBlock, rows: List[Env]) -> List[Tuple[Value, ...]]:
    from .aggregate import collect_aggregates

    groups: Dict[Tuple[Value, ...], List[Env]] = {}
    for env in rows:
        key = tuple(
            env[(k.qualifier, k.name)] for k in block.group_by
        )
        groups.setdefault(key, []).append(env)
    if not block.group_by and not groups:
        groups[()] = []
    needed = collect_aggregates(
        [i.expr for i in block.select_items]
        + ([block.having] if block.having is not None else [])
    )
    out: List[Tuple[Value, ...]] = []
    for key, members in groups.items():
        aggs = {agg: _agg_value(agg, members) for agg in needed}
        env: Env = {}
        for ref, value in zip(block.group_by, key):
            env[(ref.qualifier, ref.name)] = value
        if block.having is not None and not _bool_eval(block.having, env, aggs):
            continue
        out.append(
            tuple(_eval(item.expr, env, aggs) for item in block.select_items)
        )
    return out


def _finite_floats(values: List[Value]) -> bool:
    return any(isinstance(v, float) for v in values) and all(
        math.isfinite(v) for v in values
    )


def _agg_value(agg: ast.Aggregate, members: List[Env]) -> Value:
    if agg.func is ast.AggFunc.COUNT and agg.argument is None:
        return len(members)
    values = [_eval(agg.argument, env) for env in members]
    if agg.distinct:
        values = list(dict.fromkeys(values))
    if agg.func is ast.AggFunc.COUNT:
        return len(values)
    if not values:
        return 0 if agg.func is not ast.AggFunc.AVG else 0.0
    if agg.func is ast.AggFunc.SUM:
        if not agg.distinct and _finite_floats(values):
            # The engine's float sums are exactly rounded (see
            # ``executor.floatsum``); math.fsum matches bit-for-bit.
            return math.fsum(values)
        return sum(values)
    if agg.func is ast.AggFunc.AVG:
        if not agg.distinct and _finite_floats(values):
            return math.fsum(values) / len(values)
        return sum(values) / len(values)
    if agg.func is ast.AggFunc.MIN:
        return min(values)
    if agg.func is ast.AggFunc.MAX:
        return max(values)
    raise ExecutionError(f"unhandled aggregate {agg.func}")


def _order(block: QueryBlock, rows: List[Tuple[Value, ...]]):
    # The reference executor only orders by output columns.
    keys: List[int] = []
    reverses: List[bool] = []
    names = [o.name for o in block.outputs]
    exprs = [o.expr for o in block.outputs]
    for order in block.order_by:
        idx = None
        for i, expr in enumerate(exprs):
            if str(expr) == str(order.expr):
                idx = i
                break
        if idx is None and isinstance(order.expr, ast.ColumnRef):
            lowered = order.expr.name.lower()
            if lowered in names:
                idx = names.index(lowered)
        if idx is None:
            raise ExecutionError("reference ORDER BY must target an output")
        keys.append(idx)
        reverses.append(order.descending)
    for idx, reverse in zip(reversed(keys), reversed(reverses)):
        rows = sorted(rows, key=lambda r: r[idx], reverse=reverse)
    return rows
