"""Execution feedback (the LEO analogue).

After a query runs, compare the optimizer's estimated selectivity for each
base-table access with the actually observed one, and emit
:class:`FeedbackRecord` entries. The JITS StatHistory consumes these: each
record carries the ``errorfactor = estimated / actual`` the paper's
sensitivity analysis is built on (Section 3.3.1, citing LEO [14]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..optimizer.optimizer import OptimizedQuery
from ..predicates import PredicateGroup
from .executor import ExecutionResult, ScanObservation

# Actual selectivities are floored so errorfactors stay finite when a
# predicate matched nothing (LEO does the same with a minimum cardinality).
MIN_ACTUAL_ROWS = 0.5


@dataclass
class FeedbackRecord:
    """One (table, predicate-group) estimate/actual comparison."""

    table: str
    group: PredicateGroup
    statlist: Tuple[Tuple[str, ...], ...]
    source: str
    estimated_selectivity: float
    actual_selectivity: float

    @property
    def errorfactor(self) -> float:
        actual = max(self.actual_selectivity, 1e-12)
        return self.estimated_selectivity / actual

    @property
    def symmetric_accuracy(self) -> float:
        """min(ef, 1/ef): 1 when exact, → 0 as the error grows."""
        ef = self.errorfactor
        if ef <= 0.0:
            return 0.0
        return min(ef, 1.0 / ef)


def collect_feedback(
    optimized: OptimizedQuery,
    result: ExecutionResult,
    observations: Optional[Dict[str, ScanObservation]] = None,
) -> List[FeedbackRecord]:
    """Match scan estimates with scan observations, per quantifier.

    ``observations`` overrides the result's own observation map; the
    engine passes the union across plan segments after a mid-query plan
    switch. The map is keyed by alias, so each quantifier contributes
    exactly one record no matter how many plan segments touched it.
    """
    records: List[FeedbackRecord] = []
    if observations is None:
        observations = result.scan_observations
    for estimate in optimized.all_scan_estimates():
        if estimate.group is None or estimate.estimate is None:
            continue
        observation = observations.get(estimate.alias)
        if observation is None or observation.matched_rows < 0:
            # Accesses folded into an index nested-loop probe have no
            # independently observable local-predicate cardinality.
            continue
        base = max(observation.base_rows, 1)
        actual = max(float(observation.matched_rows), MIN_ACTUAL_ROWS) / base
        records.append(
            FeedbackRecord(
                table=observation.table_name.lower(),
                group=estimate.group,
                statlist=estimate.estimate.statlist,
                source=estimate.estimate.source,
                estimated_selectivity=max(estimate.estimate.clamped(), 1e-12),
                actual_selectivity=actual,
            )
        )
    return records
