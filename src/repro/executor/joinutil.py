"""Vectorized equi-join index matching.

Integer keys (row ids, dictionary codes — every join key in this engine)
with a compact value range take a dense O(n) counting path; anything else
falls back to sort + binary search.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)
# Dense path allowed while the key span stays within this factor of the
# build size (memory for the counting arrays stays proportional).
_DENSE_SPAN_FACTOR = 8
_DENSE_SPAN_MIN = 1 << 16


def equi_join_indices(
    left: np.ndarray, right: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """All (i, j) with ``left[i] == right[j]`` as two index arrays."""
    left = np.asarray(left)
    right = np.asarray(right)
    if len(left) == 0 or len(right) == 0:
        return _EMPTY, _EMPTY
    if (
        np.issubdtype(left.dtype, np.integer)
        and np.issubdtype(right.dtype, np.integer)
    ):
        rmin = int(right.min())
        rmax = int(right.max())
        span = rmax - rmin + 1
        if span <= max(_DENSE_SPAN_FACTOR * len(right), _DENSE_SPAN_MIN):
            return _dense_join(left, right, rmin, span)
    return _sorted_join(left, right)


def _dense_join(
    left: np.ndarray, right: np.ndarray, rmin: int, span: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Counting-sort join: O(n + m + span + output)."""
    rkeys = right.astype(np.int64) - rmin
    counts = np.bincount(rkeys, minlength=span)
    starts = np.zeros(span + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    # Positions of right rows grouped by key, in row order within a key.
    order = np.argsort(rkeys, kind="stable")

    lkeys = left.astype(np.int64) - rmin
    valid = (lkeys >= 0) & (lkeys < span)
    lkeys_valid = lkeys[valid]
    left_rows = np.flatnonzero(valid).astype(np.int64)
    match_counts = counts[lkeys_valid]
    total = int(match_counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    left_idx = np.repeat(left_rows, match_counts)
    run_starts = np.cumsum(match_counts) - match_counts
    within = np.arange(total, dtype=np.int64) - np.repeat(
        run_starts, match_counts
    )
    right_sorted_pos = np.repeat(starts[lkeys_valid], match_counts) + within
    return left_idx, order[right_sorted_pos]


def _sorted_join(
    left: np.ndarray, right: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort + binary-search join (general keys, duplicate-safe)."""
    order = np.argsort(right, kind="stable")
    sorted_right = right[order]
    lo = np.searchsorted(sorted_right, left, side="left")
    hi = np.searchsorted(sorted_right, left, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    left_idx = np.repeat(np.arange(len(left), dtype=np.int64), counts)
    run_starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(run_starts, counts)
    right_sorted_pos = np.repeat(lo, counts) + within
    return left_idx, order[right_sorted_pos]
