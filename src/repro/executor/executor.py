"""Plan execution.

A :class:`PlanExecutor` walks a physical plan bottom-up, producing
:class:`~repro.executor.vector.Batch` objects. Every node's *actual* output
cardinality is written back onto the plan (``node.actual_rows``) — those
numbers feed the LEO-style feedback module.

Cost realism notes:

* the index nested-loop join probes the hash index **once per outer row**
  (a Python-level loop), which is the in-memory analogue of per-probe
  random I/O — exactly the cost a misestimated outer cardinality blows up;
* the fallback nested-loop join materializes the cross product in bounded
  chunks, so catastrophic plans are slow but never exhaust memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..cancel import check_cancelled
from ..errors import ExecutionError
from ..optimizer.optimizer import OptimizedQuery
from ..optimizer.plans import (
    Aggregate,
    DerivedScan,
    Distinct,
    Filter,
    HashJoin,
    IndexNLJoin,
    IndexScan,
    Limit,
    MaterializedScan,
    NestedLoopJoin,
    PlanNode,
    Project,
    SeqScan,
    Sort,
)
from ..predicates import LocalPredicate, PredOp, group_mask, predicate_mask
from ..sql import ast
from ..sql.qgm import QueryBlock
from ..storage import Database
from ..types import DataType, Value
from .aggregate import aggregate_batch
from .expr import eval_bool, eval_expr
from .joinutil import equi_join_indices
from .vector import Batch, ColumnVector, batch_from_table, translate_codes

_NLJ_CHUNK_CELLS = 1 << 22  # bound cross-product memory, not time


@dataclass
class ScanObservation:
    """Actual behaviour of one base-table access (feedback input)."""

    alias: str
    table_name: str
    base_rows: int
    matched_rows: int


@dataclass
class ExecutionResult:
    batch: Batch
    output_names: List[str]
    output_dtypes: List[DataType]
    scan_observations: Dict[str, ScanObservation] = field(default_factory=dict)

    @property
    def row_count(self) -> int:
        return len(self.batch)

    def rows(self) -> List[Tuple[Value, ...]]:
        """Decode the result batch into Python tuples (the fetch step)."""
        decoded = [
            self.batch.column("", name).decode() for name in self.output_names
        ]
        if not decoded:
            return []
        return list(zip(*decoded))


class PlanExecutor:
    """Executes one optimized query (including derived-table children)."""

    def __init__(self, database: Database, parallel=None, reopt=None):
        self.database = database
        # Optional ParallelScanManager: when set, predicate SeqScans that
        # clear its row threshold shard across worker processes.
        self.parallel = parallel
        # Optional ReoptState: when set, pipeline breakers become
        # checkpoints that may raise CheckpointHit to suspend this plan
        # and hand the materialized intermediate back to the engine.
        self.reopt = reopt
        self._observations: Dict[str, ScanObservation] = {}

    def execute(self, optimized: OptimizedQuery) -> ExecutionResult:
        block = optimized.block
        self._required = _required_columns(block)
        batch = self._exec(optimized.root, block)
        names = block.output_names()
        dtypes = [o.dtype for o in block.outputs]
        return ExecutionResult(
            batch=batch,
            output_names=names,
            output_dtypes=dtypes,
            scan_observations=dict(self._observations),
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _exec(self, node: PlanNode, block: QueryBlock) -> Batch:
        # Operator boundaries are the executor's checkpoints: a cancelled
        # statement stops before the next operator (or fragment) starts.
        check_cancelled()
        if self.parallel is not None and isinstance(
            node, (Aggregate, HashJoin, Sort, Distinct)
        ):
            # Whole-fragment offload: fused aggregate / partitioned join /
            # shard-sorted output over the worker pool. None means the
            # fragment planner declined; fall through to the operators.
            batch = self.parallel.fragment_batch(
                node, block, self.database, self._required, self._observations
            )
            if batch is not None:
                node.actual_rows = len(batch)
                if isinstance(node, HashJoin):
                    # A fragment root is a pipeline breaker too: the
                    # merged join output is fully materialized in the
                    # parent, so a misestimate here can suspend the plan
                    # and re-dispatch the remainder.
                    self._checkpoint("join-output", node, batch, block)
                return batch
        if isinstance(node, MaterializedScan):
            batch = self.reopt.intermediates[node.intermediate_id].batch
        elif isinstance(node, SeqScan):
            batch = self._exec_seq_scan(node, block)
        elif isinstance(node, IndexScan):
            batch = self._exec_index_scan(node, block)
        elif isinstance(node, DerivedScan):
            batch = self._exec_derived(node, block)
        elif isinstance(node, HashJoin):
            batch = self._exec_hash_join(node, block)
        elif isinstance(node, IndexNLJoin):
            batch = self._exec_index_nl_join(node, block)
        elif isinstance(node, NestedLoopJoin):
            batch = self._exec_nested_loop(node, block)
        elif isinstance(node, Filter):
            child = self._exec(node.child, block)
            mask = np.ones(len(child), dtype=bool)
            for residual in node.residuals:
                mask &= eval_bool(residual, child)
            batch = child.mask(mask)
        elif isinstance(node, Aggregate):
            child = self._exec(node.child, block)
            self._checkpoint(
                "aggregate-input", node.child, child, block, eager_only=True
            )
            batch = aggregate_batch(
                child, node.group_keys, node.items, node.output_names, node.having
            )
        elif isinstance(node, Project):
            child = self._exec(node.child, block)
            out = {
                ("", name.lower()): eval_expr(item.expr, child)
                for item, name in zip(node.items, node.output_names)
            }
            batch = Batch(out, len(child))
        elif isinstance(node, Distinct):
            batch = self._exec_distinct(node, block)
        elif isinstance(node, Sort):
            batch = self._exec_sort(node, block)
        elif isinstance(node, Limit):
            child = self._exec(node.child, block)
            if len(child) > node.count:
                batch = child.take(np.arange(node.count, dtype=np.int64))
            else:
                batch = child
        else:
            raise ExecutionError(f"unknown plan node {type(node).__name__}")
        node.actual_rows = len(batch)
        return batch

    # ------------------------------------------------------------------
    # Re-optimization checkpoints
    # ------------------------------------------------------------------
    def _checkpoint(
        self,
        kind: str,
        node: PlanNode,
        batch: Batch,
        block: QueryBlock,
        eager_only: bool = False,
    ) -> None:
        """Pipeline-breaker checkpoint; may raise CheckpointHit."""
        if self.reopt is None:
            return
        if eager_only and self.reopt.mode != "eager":
            return
        self.reopt.consider(
            kind,
            node,
            batch,
            covered_aliases(node),
            len(block.quantifiers),
            self._observations,
        )

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def _scan_output(
        self,
        node,
        block: QueryBlock,
        table,
        rows: np.ndarray,
    ) -> Batch:
        needed = sorted(self._required.get(node.alias, set()))
        batch = batch_from_table(table, node.alias, rows, needed)
        for residual in node.scan_residuals:
            batch = batch.mask(eval_bool(residual, batch))
        self._observations[node.alias] = ScanObservation(
            alias=node.alias,
            table_name=table.name,
            base_rows=table.row_count,
            matched_rows=len(batch),
        )
        return batch

    def _exec_seq_scan(self, node: SeqScan, block: QueryBlock) -> Batch:
        table = self.database.table(node.table_name)
        node.actual_base_rows = table.row_count
        if node.predicates:
            rows = None
            if self.parallel is not None:
                rows = self.parallel.scan_rows(table, node.predicates)
            if rows is None:
                mask = group_mask(table, node.predicates)
                rows = np.flatnonzero(mask).astype(np.int64)
        else:
            rows = np.arange(table.row_count, dtype=np.int64)
        return self._scan_output(node, block, table, rows)

    def _exec_index_scan(self, node: IndexScan, block: QueryBlock) -> Batch:
        table = self.database.table(node.table_name)
        indexes = self.database.indexes(node.table_name)
        predicate = node.index_predicate
        if node.index_kind == "hash":
            index = indexes.hash_on(node.index_column)
            if index is None:
                raise ExecutionError(f"missing hash index for {node.label()}")
            phys = table.column(node.index_column).lookup_value(predicate.value)
            rows = (
                np.empty(0, dtype=np.int64)
                if phys is None
                else index.lookup(phys)
            )
        else:
            index = indexes.sorted_on(node.index_column)
            if index is None:
                raise ExecutionError(f"missing sorted index for {node.label()}")
            rows = self._sorted_index_rows(table, index, predicate)
        node.actual_base_rows = len(rows)
        if node.remaining:
            mask = group_mask(table, node.remaining, rows)
            rows = rows[mask]
        return self._scan_output(node, block, table, rows)

    @staticmethod
    def _sorted_index_rows(table, index, predicate: LocalPredicate) -> np.ndarray:
        def phys(value) -> float:
            encoded = table.column(predicate.column).lookup_value(value)
            if encoded is None:
                raise ExecutionError(
                    f"range predicate value {value!r} not comparable"
                )
            return float(encoded)

        op = predicate.op
        if op is PredOp.BETWEEN:
            return index.range_lookup(phys(predicate.values[0]), phys(predicate.values[1]))
        value = phys(predicate.value)
        if op is PredOp.LT:
            return index.range_lookup(None, value, high_inclusive=False)
        if op is PredOp.LE:
            return index.range_lookup(None, value, high_inclusive=True)
        if op is PredOp.GT:
            return index.range_lookup(value, None, low_inclusive=False)
        if op is PredOp.GE:
            return index.range_lookup(value, None, low_inclusive=True)
        raise ExecutionError(f"sorted index cannot serve {op}")

    def _exec_derived(self, node: DerivedScan, block: QueryBlock) -> Batch:
        child_block: QueryBlock = node.child_block
        # Derived children never carry reopt state: only the outer block's
        # join graph is re-planned, and a checkpoint escaping from a
        # half-built derived table would not splice cleanly.
        child_executor = PlanExecutor(self.database, parallel=self.parallel)
        child_executor._required = _required_columns(child_block)
        child_batch = child_executor._exec(node.child_plan, child_block)
        self._observations.update(child_executor._observations)
        # Re-key child outputs under this quantifier's alias.
        columns = {}
        for name in child_block.output_names():
            columns[(node.alias.lower(), name.lower())] = child_batch.column("", name)
        batch = Batch(columns, len(child_batch))
        for predicate in node.predicates:
            batch = batch.mask(_batch_predicate_mask(predicate, batch))
        for residual in node.scan_residuals:
            batch = batch.mask(eval_bool(residual, batch))
        return batch

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _join_key_vectors(
        self, predicate, left: Batch, right: Batch
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Key arrays (left_values, right_values) in a shared code space."""
        if left.has_column(predicate.left_alias, predicate.left_column):
            lkey = left.column(predicate.left_alias, predicate.left_column)
            rkey = right.column(predicate.right_alias, predicate.right_column)
        else:
            lkey = left.column(predicate.right_alias, predicate.right_column)
            rkey = right.column(predicate.left_alias, predicate.left_column)
        lv, rv = lkey.values, rkey.values
        if lkey.dictionary is not None or rkey.dictionary is not None:
            if lkey.dictionary is None or rkey.dictionary is None:
                raise ExecutionError("join between string and numeric column")
            lv = translate_codes(lkey.dictionary, rkey.dictionary, lv)
        return lv, rv

    def _exec_hash_join(self, node: HashJoin, block: QueryBlock) -> Batch:
        # Build side first: "hash-join build complete" is the classic
        # pipeline breaker — its exact cardinality is known before a
        # single probe row is computed, so a misestimated build can
        # re-plan the whole remaining join graph at zero sunk probe cost.
        build = self._exec(node.build, block)
        self._checkpoint("hash-build", node.build, build, block)
        probe = self._exec(node.probe, block)
        first, *rest = node.join_predicates
        lv, rv = self._join_key_vectors(first, probe, build)
        l_idx, r_idx = equi_join_indices(lv, rv)
        if rest:
            mask = np.ones(len(l_idx), dtype=bool)
            for predicate in rest:
                plv, prv = self._join_key_vectors(predicate, probe, build)
                mask &= plv[l_idx] == prv[r_idx]
            l_idx, r_idx = l_idx[mask], r_idx[mask]
        result = Batch.merge(probe.take(l_idx), build.take(r_idx))
        self._checkpoint("join-output", node, result, block)
        return result

    def _exec_index_nl_join(self, node: IndexNLJoin, block: QueryBlock) -> Batch:
        outer = self._exec(node.outer, block)
        inner_table = self.database.table(node.inner_table)
        index = self.database.indexes(node.inner_table).hash_on(
            node.inner_index_column
        )
        if index is None:
            raise ExecutionError(f"missing index for {node.label()}")
        probe_pred = next(
            p
            for p in node.join_predicates
            if node.inner_alias in p.aliases()
            and p.column_for(node.inner_alias) == node.inner_index_column
        )
        _, outer_alias = probe_pred.side_for(node.inner_alias)
        outer_column = probe_pred.column_for(outer_alias)
        key_vector = outer.column(outer_alias, outer_column)
        keys = key_vector.values
        inner_column = inner_table.column(node.inner_index_column)
        if key_vector.dictionary is not None:
            if inner_column.dictionary is None:
                raise ExecutionError("join between string and numeric column")
            keys = translate_codes(
                key_vector.dictionary, inner_column.dictionary, keys
            )
        node.actual_probes = len(keys)
        # One probe per outer row — deliberately not batched (see module
        # docstring): this is where a bad outer-cardinality estimate hurts.
        matches: List[np.ndarray] = []
        counts = np.empty(len(keys), dtype=np.int64)
        for i, key in enumerate(keys.tolist()):
            if (i & 0x0FFF) == 0:
                check_cancelled()  # probe loop: poll every 4096 probes
            rows = index.lookup(key)
            counts[i] = len(rows)
            if len(rows):
                matches.append(rows)
        inner_rows = (
            np.concatenate(matches) if matches else np.empty(0, dtype=np.int64)
        )
        outer_idx = np.repeat(np.arange(len(keys), dtype=np.int64), counts)

        if node.inner_predicates:
            mask = group_mask(inner_table, node.inner_predicates, inner_rows)
            inner_rows, outer_idx = inner_rows[mask], outer_idx[mask]
        needed = sorted(self._required.get(node.inner_alias, set()))
        inner_batch = batch_from_table(
            inner_table, node.inner_alias, inner_rows, needed
        )
        result = Batch.merge(outer.take(outer_idx), inner_batch)
        for predicate in node.join_predicates:
            if predicate is probe_pred:
                continue
            lv = result.column(
                predicate.left_alias, predicate.left_column
            )
            rv = result.column(predicate.right_alias, predicate.right_column)
            left_values, right_values = lv.values, rv.values
            if lv.dictionary is not None and rv.dictionary is not None:
                left_values = translate_codes(
                    lv.dictionary, rv.dictionary, left_values
                )
            result = result.mask(left_values == right_values)
        for residual in node.inner_scan_residuals:
            result = result.mask(eval_bool(residual, result))
        self._observations.setdefault(
            node.inner_alias,
            ScanObservation(
                alias=node.inner_alias,
                table_name=inner_table.name,
                base_rows=inner_table.row_count,
                matched_rows=-1,  # not independently observable in an INL
            ),
        )
        return result

    def _exec_nested_loop(self, node: NestedLoopJoin, block: QueryBlock) -> Batch:
        outer = self._exec(node.outer, block)
        inner = self._exec(node.inner, block)
        n_out, n_in = len(outer), len(inner)
        if n_out == 0 or n_in == 0:
            return Batch.merge(
                outer.take(np.empty(0, dtype=np.int64)),
                inner.take(np.empty(0, dtype=np.int64)),
            )
        chunk = max(1, _NLJ_CHUNK_CELLS // n_in)
        out_parts: List[np.ndarray] = []
        in_parts: List[np.ndarray] = []
        inner_range = np.arange(n_in, dtype=np.int64)
        key_pairs = [
            self._join_key_vectors(p, outer, inner) for p in node.join_predicates
        ]
        for start in range(0, n_out, chunk):
            check_cancelled()  # one poll per cross-product chunk
            stop = min(start + chunk, n_out)
            o_idx = np.repeat(np.arange(start, stop, dtype=np.int64), n_in)
            i_idx = np.tile(inner_range, stop - start)
            mask = np.ones(len(o_idx), dtype=bool)
            for lv, rv in key_pairs:
                mask &= lv[o_idx] == rv[i_idx]
            out_parts.append(o_idx[mask])
            in_parts.append(i_idx[mask])
        o_all = np.concatenate(out_parts)
        i_all = np.concatenate(in_parts)
        return Batch.merge(outer.take(o_all), inner.take(i_all))

    # ------------------------------------------------------------------
    # Output shaping
    # ------------------------------------------------------------------
    def _exec_distinct(self, node: Distinct, block: QueryBlock) -> Batch:
        child = self._exec(node.child, block)
        if len(child) == 0 or not child.columns:
            return child
        codes = []
        for vector in child.columns.values():
            _, inverse = np.unique(vector.values, return_inverse=True)
            codes.append(inverse.astype(np.int64))
        stacked = np.stack(codes, axis=1)
        _, first_idx = np.unique(stacked, axis=0, return_index=True)
        return child.take(np.sort(first_idx))

    def _exec_sort(self, node: Sort, block: QueryBlock) -> Batch:
        child = self._exec(node.child, block)
        self._checkpoint("sort-input", node.child, child, block, eager_only=True)
        if len(child) <= 1:
            return child
        keys = []
        for order in reversed(node.order_by):  # lexsort: last key is primary
            vector = eval_expr(order.expr, child)
            ranks = vector.sort_ranks()
            keys.append(-ranks if order.descending else ranks)
        order_idx = np.lexsort(keys)
        return child.take(order_idx)


def covered_aliases(node: PlanNode) -> Tuple[str, ...]:
    """Quantifier aliases a plan subtree's output covers (dedup, in order)."""
    aliases: List[str] = []
    for n in node.walk():
        if isinstance(n, (SeqScan, IndexScan, DerivedScan)):
            aliases.append(n.alias)
        elif isinstance(n, IndexNLJoin):
            aliases.append(n.inner_alias)
        elif isinstance(n, MaterializedScan):
            aliases.extend(n.covered_aliases)
    return tuple(dict.fromkeys(aliases))


def _batch_predicate_mask(predicate: LocalPredicate, batch: Batch) -> np.ndarray:
    """Evaluate a local predicate against a batch (derived quantifiers)."""
    vector = batch.column(predicate.alias, predicate.column)

    def encode(value) -> Optional[float]:
        if vector.dictionary is not None:
            if not isinstance(value, str):
                raise ExecutionError(f"comparing string column with {value!r}")
            code = vector.dictionary.find_code(value)
            return None if code is None else float(code)
        if isinstance(value, str):
            raise ExecutionError(f"comparing numeric column with {value!r}")
        return float(value)

    data = vector.values
    op = predicate.op
    if op in (PredOp.EQ, PredOp.NE):
        phys = encode(predicate.value)
        mask = (
            np.zeros(len(data), dtype=bool) if phys is None else data == phys
        )
        return ~mask if op is PredOp.NE else mask
    if op is PredOp.IN:
        if vector.dictionary is not None:
            for value in predicate.values:
                if not isinstance(value, str):
                    raise ExecutionError(
                        f"comparing string column with {value!r}"
                    )
            codes = vector.dictionary.find_codes(predicate.values)
            codes = codes[codes >= 0]  # drop values absent from the dict
            if len(codes) == 0:
                return np.zeros(len(data), dtype=bool)
            return np.isin(data, codes.astype(data.dtype))
        for value in predicate.values:
            if isinstance(value, str):
                raise ExecutionError(f"comparing numeric column with {value!r}")
        wanted = np.asarray(
            [float(value) for value in predicate.values], dtype=data.dtype
        )
        if len(wanted) == 0:
            return np.zeros(len(data), dtype=bool)
        return np.isin(data, wanted)
    if vector.dictionary is not None:
        raise ExecutionError("range predicate on string output column")
    low = encode(predicate.values[0])
    if op is PredOp.BETWEEN:
        high = encode(predicate.values[1])
        return (data >= low) & (data <= high)
    if op is PredOp.LT:
        return data < low
    if op is PredOp.LE:
        return data <= low
    if op is PredOp.GT:
        return data > low
    if op is PredOp.GE:
        return data >= low
    raise AssertionError(f"unhandled predicate op {op}")


def _required_columns(block: QueryBlock) -> Dict[str, Set[str]]:
    """Columns each quantifier must materialize into scan batches."""
    required: Dict[str, Set[str]] = {alias: set() for alias in block.quantifiers}

    def add_expr(expr) -> None:
        for ref in ast.column_refs(expr):
            if ref.qualifier and ref.qualifier in required:
                required[ref.qualifier].add(ref.name.lower())

    for item in block.select_items:
        add_expr(item.expr)
    for key in block.group_by:
        add_expr(key)
    if block.having is not None:
        add_expr(block.having)
    for order in block.order_by:
        add_expr(order.expr)
    for residual in block.residuals:
        add_expr(residual)
    for residuals in block.scan_residuals.values():
        for residual in residuals:
            add_expr(residual)
    for predicate in block.join_predicates:
        if predicate.left_alias in required:
            required[predicate.left_alias].add(predicate.left_column)
        if predicate.right_alias in required:
            required[predicate.right_alias].add(predicate.right_column)
    return required
