"""Vectorized evaluation of scalar and boolean expressions over batches.

Handles the residual predicates the classifier could not turn into local or
join predicates, projection expressions, UPDATE assignments and HAVING.
String comparisons across different dictionaries are translated first.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from ..errors import ExecutionError
from ..sql import ast
from ..types import DataType
from .vector import Batch, ColumnVector, translate_codes

AggResolver = Callable[[ast.Aggregate], ColumnVector]


def eval_expr(
    expr: ast.Expr,
    batch: Batch,
    agg_resolver: Optional[AggResolver] = None,
) -> ColumnVector:
    """Evaluate a scalar expression to a vector of ``len(batch)``."""
    if isinstance(expr, ast.Literal):
        return _literal_vector(expr, len(batch))
    if isinstance(expr, ast.ColumnRef):
        if expr.qualifier is None:
            return batch.column("", expr.name)
        return batch.column(expr.qualifier, expr.name)
    if isinstance(expr, ast.UnaryArith):
        operand = eval_expr(expr.operand, batch, agg_resolver)
        _require_numeric(operand, "unary minus")
        return ColumnVector(-operand.values, operand.dtype)
    if isinstance(expr, ast.BinaryArith):
        left = eval_expr(expr.left, batch, agg_resolver)
        right = eval_expr(expr.right, batch, agg_resolver)
        return _arith(expr.op, left, right)
    if isinstance(expr, ast.Aggregate):
        if agg_resolver is None:
            raise ExecutionError(f"aggregate {expr} outside an aggregation")
        return agg_resolver(expr)
    raise ExecutionError(f"cannot evaluate expression {expr!r}")


def _literal_vector(literal: ast.Literal, length: int) -> ColumnVector:
    value = literal.value
    if isinstance(value, str):
        # A one-value private dictionary; comparisons translate as needed.
        from ..storage import StringDictionary

        dictionary = StringDictionary([value])
        return ColumnVector(
            np.zeros(length, dtype=np.int64), DataType.STRING, dictionary
        )
    if isinstance(value, float):
        return ColumnVector(np.full(length, value, dtype=np.float64), DataType.FLOAT)
    return ColumnVector(np.full(length, value, dtype=np.int64), DataType.INT)


def _require_numeric(vector: ColumnVector, what: str) -> None:
    if vector.dtype is DataType.STRING:
        raise ExecutionError(f"{what} needs numeric operands")


def _arith(op: str, left: ColumnVector, right: ColumnVector) -> ColumnVector:
    _require_numeric(left, f"'{op}'")
    _require_numeric(right, f"'{op}'")
    lv, rv = left.values, right.values
    if op == "+":
        out = lv + rv
    elif op == "-":
        out = lv - rv
    elif op == "*":
        out = lv * rv
    elif op == "/":
        out = lv / np.where(rv == 0, np.nan, rv).astype(np.float64)
        return ColumnVector(out, DataType.FLOAT)
    else:
        raise ExecutionError(f"unknown arithmetic operator {op!r}")
    if left.dtype is DataType.FLOAT or right.dtype is DataType.FLOAT:
        return ColumnVector(out.astype(np.float64), DataType.FLOAT)
    return ColumnVector(out, DataType.INT)


def _comparable_pair(left: ColumnVector, right: ColumnVector):
    """Align two vectors for comparison; returns (lv, rv, ordered)."""
    if (left.dtype is DataType.STRING) != (right.dtype is DataType.STRING):
        raise ExecutionError("cannot compare string with numeric value")
    if left.dtype is DataType.STRING:
        rv = translate_codes(right.dictionary, left.dictionary, right.values)
        return left.values, rv, False
    return left.values, right.values, True


def eval_bool(
    expr: ast.BoolExpr,
    batch: Batch,
    agg_resolver: Optional[AggResolver] = None,
) -> np.ndarray:
    """Evaluate a boolean expression to a mask of ``len(batch)``."""
    if isinstance(expr, ast.Comparison):
        left = eval_expr(expr.left, batch, agg_resolver)
        right = eval_expr(expr.right, batch, agg_resolver)
        lv, rv, ordered = _comparable_pair(left, right)
        op = expr.op
        if op is ast.CompareOp.EQ:
            mask = lv == rv
            if not ordered:
                mask &= rv >= 0  # untranslatable strings match nothing
            return mask
        if op is ast.CompareOp.NE:
            mask = lv != rv
            return mask
        if not ordered:
            raise ExecutionError("ordered comparison on string values")
        if op is ast.CompareOp.LT:
            return lv < rv
        if op is ast.CompareOp.LE:
            return lv <= rv
        if op is ast.CompareOp.GT:
            return lv > rv
        if op is ast.CompareOp.GE:
            return lv >= rv
    if isinstance(expr, ast.BetweenExpr):
        operand = eval_expr(expr.operand, batch, agg_resolver)
        low = eval_expr(expr.low, batch, agg_resolver)
        high = eval_expr(expr.high, batch, agg_resolver)
        _require_numeric(operand, "BETWEEN")
        mask = (operand.values >= low.values) & (operand.values <= high.values)
        return ~mask if expr.negated else mask
    if isinstance(expr, ast.InListExpr):
        operand = eval_expr(expr.operand, batch, agg_resolver)
        mask = np.zeros(len(batch), dtype=bool)
        for item in expr.items:
            rhs = _literal_vector(item, len(batch))
            lv, rv, ordered = _comparable_pair(operand, rhs)
            part = lv == rv
            if not ordered:
                part &= rv >= 0
            mask |= part
        return ~mask if expr.negated else mask
    if isinstance(expr, ast.AndExpr):
        mask = np.ones(len(batch), dtype=bool)
        for operand in expr.operands:
            mask &= eval_bool(operand, batch, agg_resolver)
        return mask
    if isinstance(expr, ast.OrExpr):
        mask = np.zeros(len(batch), dtype=bool)
        for operand in expr.operands:
            mask |= eval_bool(operand, batch, agg_resolver)
        return mask
    if isinstance(expr, ast.NotExpr):
        return ~eval_bool(expr.operand, batch, agg_resolver)
    raise ExecutionError(f"cannot evaluate boolean expression {expr!r}")
