"""Vectorized plan execution and runtime feedback."""

from .aggregate import aggregate_batch, collect_aggregates
from .executor import ExecutionResult, PlanExecutor, ScanObservation
from .expr import eval_bool, eval_expr
from .feedback import FeedbackRecord, collect_feedback
from .joinutil import equi_join_indices
from .reference import run_reference
from .reopt import (
    CheckpointHit,
    MaterializedIntermediate,
    ReoptEvent,
    ReoptState,
    ReoptTelemetry,
)
from .vector import Batch, ColumnVector, batch_from_table, translate_codes

__all__ = [
    "PlanExecutor",
    "ExecutionResult",
    "ScanObservation",
    "Batch",
    "ColumnVector",
    "batch_from_table",
    "translate_codes",
    "eval_expr",
    "eval_bool",
    "equi_join_indices",
    "aggregate_batch",
    "collect_aggregates",
    "FeedbackRecord",
    "collect_feedback",
    "run_reference",
    "CheckpointHit",
    "MaterializedIntermediate",
    "ReoptEvent",
    "ReoptState",
    "ReoptTelemetry",
]
