"""Sharded scan / aggregate / sample-selectivity kernels.

A kernel is a module-level function taking ``(arrays, **kwargs)`` where
``arrays`` maps lower-case column names to physical numpy arrays — either
zero-copy shared-memory views inside a worker process or the live column
views when the manager runs the same kernels in-process. Tasks name
kernels via the :data:`KERNELS` registry (no function pickling), and all
other arguments are plain picklable values.

Predicates cross the process boundary as :class:`PhysPredicate`: the
parent lowers each ``LocalPredicate`` to already-encoded physical values
(:func:`encode_predicates`), so workers never touch string dictionaries
and the shard masks are byte-identical to what
``repro.predicates.evaluate`` computes in-process.

``cost_per_row`` is the modeled per-row scan cost (seconds) from
``EngineConfig.scan_cost_per_row`` — the scan-path analogue of
``commit_latency``: both the sequential baseline and the worker shards
pay it, so benchmark speedups measure genuine overlap on few-core hosts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...cancel import cancellable_sleep
from ...predicates.predicate import LocalPredicate, PredOp
from ...types import DataType
from ..floatsum import sum_pairs_shard
from ..joinutil import equi_join_indices
from ..vector import apply_code_lookup


@dataclass(frozen=True)
class PhysPredicate:
    """A local predicate lowered to physical form.

    ``op`` is the :class:`PredOp` name; ``values`` are the encoded
    physical values (floats, exactly what ``evaluate._encode`` produces).
    ``empty`` marks an EQ/NE/IN predicate whose string value is missing
    from the dictionary: unsatisfiable for EQ/IN, tautological for NE.
    """

    column: str
    op: str
    values: Tuple[float, ...] = ()
    empty: bool = False


def encode_predicate(table, predicate: LocalPredicate) -> Optional[PhysPredicate]:
    """Lower one predicate, or None when it is not shardable (range
    comparison on a string column — the sequential path owns that error)."""
    column = predicate.column.lower()
    col = table.column(column)
    dtype = table.schema.column(column).dtype
    op = predicate.op
    if op in (PredOp.EQ, PredOp.NE):
        phys = col.lookup_value(predicate.value)
        if phys is None:
            return PhysPredicate(column, op.name, empty=True)
        return PhysPredicate(column, op.name, (float(phys),))
    if op is PredOp.IN:
        wanted = []
        for value in predicate.values:
            phys = col.lookup_value(value)
            if phys is not None:
                wanted.append(float(phys))
        if not wanted:
            return PhysPredicate(column, op.name, empty=True)
        return PhysPredicate(column, op.name, tuple(wanted))
    if dtype is DataType.STRING:
        return None  # dictionary codes do not follow string order
    lo = float(col.lookup_value(predicate.values[0]))
    if op is PredOp.BETWEEN:
        hi = float(col.lookup_value(predicate.values[1]))
        return PhysPredicate(column, op.name, (lo, hi))
    return PhysPredicate(column, op.name, (lo,))


def encode_predicates(
    table, predicates: Sequence[LocalPredicate]
) -> Optional[Tuple[PhysPredicate, ...]]:
    """Lower a predicate list; None if any member is not shardable."""
    out = []
    for predicate in predicates:
        phys = encode_predicate(table, predicate)
        if phys is None:
            return None
        out.append(phys)
    return tuple(out)


def predicate_mask(data: np.ndarray, pred: PhysPredicate) -> np.ndarray:
    """Boolean mask over ``data``; mirrors ``evaluate.predicate_mask``."""
    op = pred.op
    if op == "EQ" or op == "NE":
        if pred.empty:
            base = np.zeros(len(data), dtype=bool)
            return ~base if op == "NE" else base
        mask = data == pred.values[0]
        return ~mask if op == "NE" else mask
    if op == "IN":
        if pred.empty:
            return np.zeros(len(data), dtype=bool)
        return np.isin(data, np.asarray(pred.values, dtype=data.dtype))
    lo = pred.values[0]
    if op == "BETWEEN":
        return (data >= lo) & (data <= pred.values[1])
    if op == "LT":
        return data < lo
    if op == "LE":
        return data <= lo
    if op == "GT":
        return data > lo
    if op == "GE":
        return data >= lo
    raise AssertionError(f"unhandled physical predicate op {op}")


def _pay(cost_per_row: float, n_rows: int) -> None:
    if cost_per_row > 0.0 and n_rows > 0:
        # Sliced sleep: inside the parent process (inline fallback or
        # workers == 0) the modeled cost polls the statement's cancel
        # token; inside worker processes no token exists and this is a
        # plain sleep.
        cancellable_sleep(cost_per_row * n_rows)


def scan_shard(
    arrays: Dict[str, np.ndarray],
    preds: Tuple[PhysPredicate, ...],
    start: int,
    stop: int,
    cost_per_row: float = 0.0,
) -> np.ndarray:
    """Global row positions in ``[start, stop)`` matching every predicate.

    Shards partition ``[0, n_rows)``, so concatenating shard results in
    order reproduces ``np.flatnonzero(group_mask(...))`` exactly.
    """
    _pay(cost_per_row, stop - start)
    mask: Optional[np.ndarray] = None
    for pred in preds:
        m = predicate_mask(arrays[pred.column][start:stop], pred)
        mask = m if mask is None else (mask & m)
    if mask is None:
        return np.arange(start, stop, dtype=np.int64)
    return (np.flatnonzero(mask) + start).astype(np.int64)


def masks_shard(
    arrays: Dict[str, np.ndarray],
    preds: Tuple[PhysPredicate, ...],
    rows: np.ndarray,
    cost_per_row: float = 0.0,
) -> List[np.ndarray]:
    """One boolean mask per predicate over the given row positions (the
    QSS sample-selectivity kernel; shards split the sample rows)."""
    rows = np.asarray(rows, dtype=np.int64)
    _pay(cost_per_row, len(rows) * max(1, len(preds)))
    out = []
    for pred in preds:
        out.append(predicate_mask(arrays[pred.column][rows], pred))
    return out


def aggregate_shard(
    arrays: Dict[str, np.ndarray],
    preds: Tuple[PhysPredicate, ...],
    start: int,
    stop: int,
    specs: Tuple[Tuple[str, str], ...],
    cost_per_row: float = 0.0,
) -> List[Tuple[float, Optional[float]]]:
    """Partial aggregates over the shard's matching rows.

    ``specs`` is ``((func, column), ...)`` with func in count/sum/min/max;
    each partial is ``(matching_row_count, value)`` (value None when the
    shard matched nothing), merged by :func:`merge_aggregates`.
    """
    idx = scan_shard(arrays, preds, start, stop, cost_per_row)
    partials: List[Tuple[float, Optional[float]]] = []
    n = float(len(idx))
    for func, column in specs:
        if func == "count":
            partials.append((n, n))
            continue
        data = arrays[column][idx]
        if len(data) == 0:
            partials.append((n, None))
        elif func == "sum":
            partials.append((n, float(data.sum())))
        elif func == "min":
            partials.append((n, float(data.min())))
        elif func == "max":
            partials.append((n, float(data.max())))
        else:
            raise AssertionError(f"unhandled aggregate {func}")
    return partials


def combine_partials(
    specs: Tuple[Tuple[str, str], ...],
    partials_list: Sequence[List[Tuple[float, Optional[float]]]],
) -> List[Tuple[float, Optional[float]]]:
    """Combine shard partials into one partial of the same shape.

    Closed under composition, so merging is associative: combining in
    any grouping (or any shard layout) yields the same partial — the
    property the kernel suite asserts.
    """
    combined: List[Tuple[float, Optional[float]]] = []
    for i, (func, _) in enumerate(specs):
        counts = [p[i][0] for p in partials_list]
        values = [p[i][1] for p in partials_list if p[i][1] is not None]
        n = float(sum(counts))
        if func == "count":
            combined.append((n, float(sum(values))))
        elif not values:
            combined.append((n, None))
        elif func == "sum":
            combined.append((n, float(sum(values))))
        elif func == "min":
            combined.append((n, min(values)))
        elif func == "max":
            combined.append((n, max(values)))
        else:
            raise AssertionError(f"unhandled aggregate {func}")
    return combined


def merge_aggregates(
    specs: Tuple[Tuple[str, str], ...],
    partials_list: Sequence[List[Tuple[float, Optional[float]]]],
) -> List[Optional[float]]:
    """Parent-side merge of :func:`aggregate_shard` partials."""
    return [value for _, value in combine_partials(specs, partials_list)]


def column_stats_shard(
    arrays: Dict[str, np.ndarray],
    column: str,
    rows: Optional[np.ndarray],
    integral: bool,
    scale: float,
    n_buckets: int,
    n_frequent: int,
    cost_per_row: float = 0.0,
) -> dict:
    """One column's RUNSTATS distribution pass (the per-column task unit).

    Delegates to ``catalog.runstats.column_stats_raw`` so the sequential
    and parallel paths compute identical statistics.
    """
    from ...catalog.runstats import column_stats_raw

    data = arrays[column]
    if rows is not None:
        data = data[np.asarray(rows, dtype=np.int64)]
    _pay(cost_per_row, len(data))
    return column_stats_raw(
        data,
        integral=integral,
        scale=scale,
        n_buckets=n_buckets,
        n_frequent=n_frequent,
    )


def group_aggregate_shard(
    arrays: Dict[str, np.ndarray],
    preds: Tuple[PhysPredicate, ...],
    start: int,
    stop: int,
    keys: Tuple[str, ...],
    specs: Tuple[Tuple[str, str], ...],
    cost_per_row: float = 0.0,
    ranks: Optional[Dict[str, np.ndarray]] = None,
) -> Tuple[Tuple[np.ndarray, ...], Tuple[np.ndarray, ...], int]:
    """Fused scan → filter → grouped partial aggregate over one shard.

    ``keys`` are group-key column names (empty for a global aggregate);
    ``specs`` are primitive partials ``(func, column)`` with func in
    count/sum/fsum/min/max/min_rank/max_rank (``column`` ignored for
    count). Returns ``(key_value_arrays, partial_arrays, matched_rows)``
    where each partial array has one slot per shard-local group, groups
    ordered by their key values — :func:`merge_group_partials` in the
    fragments module re-groups across shards. count/sum partials are
    float64; fsum partials are exact ``(mantissa, exp2)`` pairs (object
    dtype, see ``executor.floatsum``); min/max keep the column's physical
    dtype so the merged extreme is exactly the sequential one.
    min_rank/max_rank reduce string columns over ``ranks[column]`` —
    parent-precomputed lexicographic rank per dictionary code — since
    codes themselves do not follow string order and workers never see
    dictionaries.
    """
    idx = scan_shard(arrays, preds, start, stop, cost_per_row)
    n = len(idx)
    if keys:
        key_data = [arrays[k][idx] for k in keys]
        if n:
            code_columns = [
                np.unique(kd, return_inverse=True)[1].astype(np.int64)
                for kd in key_data
            ]
            stacked = np.stack(code_columns, axis=1)
            _, first_idx, gids = np.unique(
                stacked, axis=0, return_index=True, return_inverse=True
            )
            gids = gids.astype(np.int64)
            n_groups = len(first_idx)
            group_keys = tuple(kd[first_idx] for kd in key_data)
        else:
            gids = np.zeros(0, dtype=np.int64)
            n_groups = 0
            group_keys = tuple(key_data)
    else:
        gids = np.zeros(n, dtype=np.int64)
        n_groups = 1 if n else 0
        group_keys = ()
    partials: List[np.ndarray] = []
    for func, column in specs:
        if func == "count":
            partials.append(
                np.bincount(gids, minlength=n_groups).astype(np.float64)
            )
            continue
        values = arrays[column][idx]
        if func == "sum":
            partials.append(
                np.bincount(
                    gids,
                    weights=values.astype(np.float64),
                    minlength=n_groups,
                )
            )
            continue
        if func == "fsum":
            partials.append(
                sum_pairs_shard(values.astype(np.float64), gids, n_groups)
            )
            continue
        if func in ("min_rank", "max_rank"):
            values = (
                ranks[column][values.astype(np.int64)]
                if len(values)
                else values.astype(np.int64)
            )
        # min/max: group-contiguous reduceat (every group is non-empty
        # by construction, so the segment reduction is well-defined).
        order = np.argsort(gids, kind="stable")
        starts = np.searchsorted(gids[order], np.arange(n_groups))
        reducer = np.minimum if func.startswith("min") else np.maximum
        if n_groups:
            partials.append(reducer.reduceat(values[order], starts))
        else:
            partials.append(values[:0])
    return group_keys, tuple(partials), int(n)


def partition_codes(values: np.ndarray, n_parts: int) -> np.ndarray:
    """Deterministic partition id per key value.

    Keys are canonicalized to their float64 bit pattern (+0.0 normalizes
    the signed zero), so equal keys — including an int64 5 meeting a
    float64 5.0 across differently-typed join columns — always land in
    the same partition. The bits then go through a splitmix-style mixer:
    integral keys leave the low mantissa bits all zero, and without
    mixing ``% n_parts`` would dump every such key into partition 0,
    serializing the probe stage. Collisions only affect balance, never
    correctness: the probe stage re-checks equality on original values.
    """
    if n_parts <= 1:
        return np.zeros(len(values), dtype=np.int64)
    as_float = np.asarray(values).astype(np.float64) + 0.0
    bits = as_float.view(np.uint64).copy()
    bits ^= bits >> np.uint64(33)
    bits *= np.uint64(0xFF51AFD7ED558CCD)  # wraps mod 2**64 by design
    bits ^= bits >> np.uint64(33)
    return (bits % np.uint64(n_parts)).astype(np.int64)


def join_partition_shard(
    arrays: Dict[str, np.ndarray],
    preds: Tuple[PhysPredicate, ...],
    start: int,
    stop: int,
    key_column: str,
    n_parts: int,
    lookup: Optional[np.ndarray] = None,
    cost_per_row: float = 0.0,
) -> Tuple[List[np.ndarray], int]:
    """Stage A of the partitioned hash join: scan one shard of one input
    and split its matching global row ids by join-key partition.

    ``lookup`` translates dictionary codes into the other side's code
    space (see ``vector.code_lookup``) so both inputs partition over the
    same value domain.
    """
    idx = scan_shard(arrays, preds, start, stop, cost_per_row)
    keys = arrays[key_column][idx]
    if lookup is not None:
        keys = apply_code_lookup(lookup, keys)
    parts = partition_codes(keys, n_parts)
    return [idx[parts == p] for p in range(n_parts)], int(len(idx))


def join_probe_partition(
    tables: Dict[str, Dict[str, np.ndarray]],
    probe_table: str,
    build_table: str,
    probe_rows: np.ndarray,
    build_rows: np.ndarray,
    keys: Tuple[Tuple[str, str, Optional[np.ndarray]], ...],
    cost_per_row: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stage B: build + probe one partition, both inputs attached.

    ``keys`` is ``((probe_column, build_column, lookup|None), ...)`` with
    the first entry as the hash key and the rest re-checked as masks —
    exactly ``PlanExecutor._exec_hash_join``'s shape. Returns matching
    (probe, build) global row-id pairs; pair order within a partition is
    (probe_row, build_row)-ascending because the inputs are row-ordered
    and ``equi_join_indices`` is stable.
    """
    probe_rows = np.asarray(probe_rows, dtype=np.int64)
    build_rows = np.asarray(build_rows, dtype=np.int64)
    _pay(cost_per_row, len(probe_rows) + len(build_rows))
    probe_arrays = tables[probe_table]
    build_arrays = tables[build_table]
    probe_col, build_col, lookup = keys[0]
    lv = probe_arrays[probe_col][probe_rows]
    if lookup is not None:
        lv = apply_code_lookup(lookup, lv)
    rv = build_arrays[build_col][build_rows]
    l_idx, r_idx = equi_join_indices(lv, rv)
    if len(keys) > 1:
        mask = np.ones(len(l_idx), dtype=bool)
        for probe_col, build_col, lookup in keys[1:]:
            plv = probe_arrays[probe_col][probe_rows]
            if lookup is not None:
                plv = apply_code_lookup(lookup, plv)
            prv = build_arrays[build_col][build_rows]
            mask &= plv[l_idx] == prv[r_idx]
        l_idx, r_idx = l_idx[mask], r_idx[mask]
    return probe_rows[l_idx], build_rows[r_idx]


def sort_shard(
    arrays: Dict[str, np.ndarray],
    preds: Tuple[PhysPredicate, ...],
    start: int,
    stop: int,
    keys: Tuple[Tuple[str, bool, Optional[np.ndarray]], ...],
    cost_per_row: float = 0.0,
) -> Tuple[np.ndarray, Tuple[np.ndarray, ...], int]:
    """Shard-local sort: scan, then order the shard's matching rows.

    ``keys`` is ``((column, descending, ranks|None), ...)`` in ORDER BY
    order; ``ranks`` carries lexicographic ranks for string columns
    (``ColumnVector.sort_ranks`` precomputed parent-side). Returns the
    shard's sorted global row ids plus the sort-key arrays in sorted
    order — the parent's stable run-merge consumes both. Ties keep
    original row order (np.lexsort is stable), matching the sequential
    sort exactly.
    """
    idx = scan_shard(arrays, preds, start, stop, cost_per_row)
    key_arrays = []
    for column, descending, ranks in keys:
        values = arrays[column][idx]
        if ranks is not None:
            values = (
                ranks[values.astype(np.int64)]
                if len(values)
                else values.astype(np.int64)
            )
        key_arrays.append(-values if descending else values)
    order = np.lexsort(tuple(reversed(key_arrays)))  # first key is primary
    return (
        idx[order],
        tuple(k[order] for k in key_arrays),
        int(len(idx)),
    )


def distinct_shard(
    arrays: Dict[str, np.ndarray],
    preds: Tuple[PhysPredicate, ...],
    start: int,
    stop: int,
    columns: Tuple[str, ...],
    cost_per_row: float = 0.0,
) -> Tuple[np.ndarray, Tuple[np.ndarray, ...], int]:
    """Shard-local duplicate elimination over the projected columns.

    Keeps each distinct tuple's first occurrence in row order (the
    sequential ``Distinct`` contract); the parent re-deduplicates across
    shards, where shard order preserves global row order.
    """
    idx = scan_shard(arrays, preds, start, stop, cost_per_row)
    matched = int(len(idx))
    values = [arrays[c][idx] for c in columns]
    if len(idx):
        code_columns = [
            np.unique(v, return_inverse=True)[1].astype(np.int64)
            for v in values
        ]
        stacked = np.stack(code_columns, axis=1)
        _, first_idx = np.unique(stacked, axis=0, return_index=True)
        keep = np.sort(first_idx)
        idx = idx[keep]
        values = [v[keep] for v in values]
    return idx, tuple(values), matched


def zone_stats_shard(
    arrays: Dict[str, np.ndarray],
    columns: Tuple[str, ...],
    start: int,
    stop: int,
    zone_rows: int,
) -> Dict[str, tuple]:
    """Zone-map synopsis build for one zone-aligned row range: per-zone
    min/max plus the linear-counting ndv bitmap, per column. ``start``
    must sit on a zone boundary so the parent can concatenate shard
    results along the zone axis."""
    from ...observe.zonemap import build_column_zones

    return {
        column: build_column_zones(arrays[column][start:stop], zone_rows)
        for column in columns
    }


def timed_shard(arrays: Dict[str, np.ndarray], kernel: str, kwargs: dict):
    """Wrapper measuring a kernel's worker-side wall-clock.

    The manager wraps row-ranged shard tasks in this to feed adaptive
    shard sizing; ``(elapsed_seconds, result)`` comes back per shard.
    """
    t0 = time.perf_counter()
    result = KERNELS[kernel](arrays, **kwargs)
    return time.perf_counter() - t0, result


def skew_shard(
    arrays: Dict[str, np.ndarray],
    column: str,
    start: int,
    stop: int,
    unit: float,
) -> int:
    """Test-support kernel with data-dependent cost: sleeps ``unit``
    seconds per unit of column mass in the shard, so skewed data makes
    genuinely skewed shard latencies (drives the rebalancing tests)."""
    data = arrays[column][start:stop]
    mass = float(data.sum()) if len(data) else 0.0
    if unit > 0.0 and mass > 0.0:
        time.sleep(unit * mass)
    return stop - start


def sleep_shard(arrays: Dict[str, np.ndarray], duration: float) -> float:
    """Test-support kernel: hold a worker busy (fault-injection tests)."""
    time.sleep(duration)
    return duration


KERNELS = {
    "scan": scan_shard,
    "masks": masks_shard,
    "aggregate": aggregate_shard,
    "group_aggregate": group_aggregate_shard,
    "join_partition": join_partition_shard,
    "join_probe": join_probe_partition,
    "sort": sort_shard,
    "distinct": distinct_shard,
    "column_stats": column_stats_shard,
    "zone_stats": zone_stats_shard,
    "timed": timed_shard,
    "skew": skew_shard,
    "sleep": sleep_shard,
}
