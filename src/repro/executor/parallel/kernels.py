"""Sharded scan / aggregate / sample-selectivity kernels.

A kernel is a module-level function taking ``(arrays, **kwargs)`` where
``arrays`` maps lower-case column names to physical numpy arrays — either
zero-copy shared-memory views inside a worker process or the live column
views when the manager runs the same kernels in-process. Tasks name
kernels via the :data:`KERNELS` registry (no function pickling), and all
other arguments are plain picklable values.

Predicates cross the process boundary as :class:`PhysPredicate`: the
parent lowers each ``LocalPredicate`` to already-encoded physical values
(:func:`encode_predicates`), so workers never touch string dictionaries
and the shard masks are byte-identical to what
``repro.predicates.evaluate`` computes in-process.

``cost_per_row`` is the modeled per-row scan cost (seconds) from
``EngineConfig.scan_cost_per_row`` — the scan-path analogue of
``commit_latency``: both the sequential baseline and the worker shards
pay it, so benchmark speedups measure genuine overlap on few-core hosts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...predicates.predicate import LocalPredicate, PredOp
from ...types import DataType


@dataclass(frozen=True)
class PhysPredicate:
    """A local predicate lowered to physical form.

    ``op`` is the :class:`PredOp` name; ``values`` are the encoded
    physical values (floats, exactly what ``evaluate._encode`` produces).
    ``empty`` marks an EQ/NE/IN predicate whose string value is missing
    from the dictionary: unsatisfiable for EQ/IN, tautological for NE.
    """

    column: str
    op: str
    values: Tuple[float, ...] = ()
    empty: bool = False


def encode_predicate(table, predicate: LocalPredicate) -> Optional[PhysPredicate]:
    """Lower one predicate, or None when it is not shardable (range
    comparison on a string column — the sequential path owns that error)."""
    column = predicate.column.lower()
    col = table.column(column)
    dtype = table.schema.column(column).dtype
    op = predicate.op
    if op in (PredOp.EQ, PredOp.NE):
        phys = col.lookup_value(predicate.value)
        if phys is None:
            return PhysPredicate(column, op.name, empty=True)
        return PhysPredicate(column, op.name, (float(phys),))
    if op is PredOp.IN:
        wanted = []
        for value in predicate.values:
            phys = col.lookup_value(value)
            if phys is not None:
                wanted.append(float(phys))
        if not wanted:
            return PhysPredicate(column, op.name, empty=True)
        return PhysPredicate(column, op.name, tuple(wanted))
    if dtype is DataType.STRING:
        return None  # dictionary codes do not follow string order
    lo = float(col.lookup_value(predicate.values[0]))
    if op is PredOp.BETWEEN:
        hi = float(col.lookup_value(predicate.values[1]))
        return PhysPredicate(column, op.name, (lo, hi))
    return PhysPredicate(column, op.name, (lo,))


def encode_predicates(
    table, predicates: Sequence[LocalPredicate]
) -> Optional[Tuple[PhysPredicate, ...]]:
    """Lower a predicate list; None if any member is not shardable."""
    out = []
    for predicate in predicates:
        phys = encode_predicate(table, predicate)
        if phys is None:
            return None
        out.append(phys)
    return tuple(out)


def predicate_mask(data: np.ndarray, pred: PhysPredicate) -> np.ndarray:
    """Boolean mask over ``data``; mirrors ``evaluate.predicate_mask``."""
    op = pred.op
    if op == "EQ" or op == "NE":
        if pred.empty:
            base = np.zeros(len(data), dtype=bool)
            return ~base if op == "NE" else base
        mask = data == pred.values[0]
        return ~mask if op == "NE" else mask
    if op == "IN":
        if pred.empty:
            return np.zeros(len(data), dtype=bool)
        return np.isin(data, np.asarray(pred.values, dtype=data.dtype))
    lo = pred.values[0]
    if op == "BETWEEN":
        return (data >= lo) & (data <= pred.values[1])
    if op == "LT":
        return data < lo
    if op == "LE":
        return data <= lo
    if op == "GT":
        return data > lo
    if op == "GE":
        return data >= lo
    raise AssertionError(f"unhandled physical predicate op {op}")


def _pay(cost_per_row: float, n_rows: int) -> None:
    if cost_per_row > 0.0 and n_rows > 0:
        time.sleep(cost_per_row * n_rows)


def scan_shard(
    arrays: Dict[str, np.ndarray],
    preds: Tuple[PhysPredicate, ...],
    start: int,
    stop: int,
    cost_per_row: float = 0.0,
) -> np.ndarray:
    """Global row positions in ``[start, stop)`` matching every predicate.

    Shards partition ``[0, n_rows)``, so concatenating shard results in
    order reproduces ``np.flatnonzero(group_mask(...))`` exactly.
    """
    _pay(cost_per_row, stop - start)
    mask: Optional[np.ndarray] = None
    for pred in preds:
        m = predicate_mask(arrays[pred.column][start:stop], pred)
        mask = m if mask is None else (mask & m)
    if mask is None:
        return np.arange(start, stop, dtype=np.int64)
    return (np.flatnonzero(mask) + start).astype(np.int64)


def masks_shard(
    arrays: Dict[str, np.ndarray],
    preds: Tuple[PhysPredicate, ...],
    rows: np.ndarray,
    cost_per_row: float = 0.0,
) -> List[np.ndarray]:
    """One boolean mask per predicate over the given row positions (the
    QSS sample-selectivity kernel; shards split the sample rows)."""
    rows = np.asarray(rows, dtype=np.int64)
    _pay(cost_per_row, len(rows) * max(1, len(preds)))
    out = []
    for pred in preds:
        out.append(predicate_mask(arrays[pred.column][rows], pred))
    return out


def aggregate_shard(
    arrays: Dict[str, np.ndarray],
    preds: Tuple[PhysPredicate, ...],
    start: int,
    stop: int,
    specs: Tuple[Tuple[str, str], ...],
    cost_per_row: float = 0.0,
) -> List[Tuple[float, Optional[float]]]:
    """Partial aggregates over the shard's matching rows.

    ``specs`` is ``((func, column), ...)`` with func in count/sum/min/max;
    each partial is ``(matching_row_count, value)`` (value None when the
    shard matched nothing), merged by :func:`merge_aggregates`.
    """
    idx = scan_shard(arrays, preds, start, stop, cost_per_row)
    partials: List[Tuple[float, Optional[float]]] = []
    n = float(len(idx))
    for func, column in specs:
        if func == "count":
            partials.append((n, n))
            continue
        data = arrays[column][idx]
        if len(data) == 0:
            partials.append((n, None))
        elif func == "sum":
            partials.append((n, float(data.sum())))
        elif func == "min":
            partials.append((n, float(data.min())))
        elif func == "max":
            partials.append((n, float(data.max())))
        else:
            raise AssertionError(f"unhandled aggregate {func}")
    return partials


def merge_aggregates(
    specs: Tuple[Tuple[str, str], ...],
    partials_list: Sequence[List[Tuple[float, Optional[float]]]],
) -> List[Optional[float]]:
    """Parent-side merge of :func:`aggregate_shard` partials."""
    merged: List[Optional[float]] = []
    for i, (func, _) in enumerate(specs):
        values = [p[i][1] for p in partials_list if p[i][1] is not None]
        if func == "count":
            merged.append(float(sum(values)))
        elif not values:
            merged.append(None)
        elif func == "sum":
            merged.append(float(sum(values)))
        elif func == "min":
            merged.append(min(values))
        elif func == "max":
            merged.append(max(values))
    return merged


def column_stats_shard(
    arrays: Dict[str, np.ndarray],
    column: str,
    rows: Optional[np.ndarray],
    integral: bool,
    scale: float,
    n_buckets: int,
    n_frequent: int,
    cost_per_row: float = 0.0,
) -> dict:
    """One column's RUNSTATS distribution pass (the per-column task unit).

    Delegates to ``catalog.runstats.column_stats_raw`` so the sequential
    and parallel paths compute identical statistics.
    """
    from ...catalog.runstats import column_stats_raw

    data = arrays[column]
    if rows is not None:
        data = data[np.asarray(rows, dtype=np.int64)]
    _pay(cost_per_row, len(data))
    return column_stats_raw(
        data,
        integral=integral,
        scale=scale,
        n_buckets=n_buckets,
        n_frequent=n_frequent,
    )


def sleep_shard(arrays: Dict[str, np.ndarray], duration: float) -> float:
    """Test-support kernel: hold a worker busy (fault-injection tests)."""
    time.sleep(duration)
    return duration


KERNELS = {
    "scan": scan_shard,
    "masks": masks_shard,
    "aggregate": aggregate_shard,
    "column_stats": column_stats_shard,
    "sleep": sleep_shard,
}
