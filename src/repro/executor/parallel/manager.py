"""ParallelScanManager: the engine-facing facade over shm + pool + kernels.

One manager per engine shards three hot paths across worker processes:

* table scans (``SeqScan`` with predicates, DML WHERE targeting),
* QSS sample-selectivity evaluation (the JITS collection hot path),
* RUNSTATS per-column distribution passes.

Contracts:

* **Pinned epochs, never live stores.** Workers only ever see a table
  through an epoch-stamped shared-memory export; the calling statement's
  table lock keeps the epoch stable while shards are in flight, and RCU
  statistics snapshots are untouched (workers compute raw masks/stats,
  the parent does every store write).
* **Transparent fallback.** Any pool, worker or shared-memory failure
  falls back to running the identical kernels in-process — a warning,
  never a wrong answer. A dead pool (spawn failure / repeated crashes)
  disables the process path for the rest of the engine's life.
* **workers == 0** runs the kernels in-process over a single shard.
  With ``cost_per_row`` set this is the modeled sequential baseline the
  parallel-scan benchmark compares against; shard layout never changes
  results (property-tested), only overlap.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...cancel import check_cancelled
from ...storage.shm import ShmError, ShmRegistry
from .kernels import KERNELS, encode_predicates
from .pool import PoolUnavailable, WorkerError, WorkerPool

DEFAULT_PARALLEL_THRESHOLD = 32768

#: Ring-buffer size for per-shard latency samples (stats p50/p95).
_LATENCY_SAMPLES = 512

#: A shard-time profile: (total_rows, shard_bounds, shard_seconds).
_Profile = Tuple[int, List[Tuple[int, int]], List[float]]


def equal_latency_bounds(
    profile: _Profile, n: int, shards: int
) -> Optional[List[Tuple[int, int]]]:
    """Re-split ``[0, n)`` so each shard gets equal *predicted* latency.

    The profile's observed per-shard times induce a piecewise-constant
    latency density over the table (positions normalized, so the profile
    survives moderate growth/shrink between dispatches); the new cut
    points invert its cumulative to equal fractions. Returns None when
    the profile carries no signal (zero time, empty table).
    """
    n_old, bounds_old, times_old = profile
    if n <= 0 or n_old <= 0 or shards < 2:
        return None
    segments = [
        (start / n_old, stop / n_old, max(0.0, elapsed))
        for (start, stop), elapsed in zip(bounds_old, times_old)
        if stop > start
    ]
    total = sum(weight for _, _, weight in segments)
    if not segments or total <= 0.0:
        return None
    lo = np.array([s for s, _, _ in segments])
    width = np.array([t - s for s, t, _ in segments])
    weight = np.array([w for _, _, w in segments])
    cum = np.cumsum(weight)
    prev = cum - weight
    edges = [0]
    for j in range(1, shards):
        target = total * j / shards
        i = min(int(np.searchsorted(cum, target)), len(segments) - 1)
        frac = lo[i] + (
            (target - prev[i]) / weight[i] * width[i] if weight[i] > 0 else 0.0
        )
        cut = int(round(frac * n))
        edges.append(min(max(cut, edges[-1]), n))
    edges.append(n)
    return list(zip(edges[:-1], edges[1:]))


class ParallelScanManager:
    def __init__(
        self,
        workers: int = 0,
        threshold_rows: int = DEFAULT_PARALLEL_THRESHOLD,
        cost_per_row: float = 0.0,
        start_method: str = "forkserver",
        task_timeout: float = 120.0,
        zone_maps=None,
    ):
        self.workers = max(0, workers)
        self.threshold_rows = max(1, threshold_rows)
        self.cost_per_row = cost_per_row
        # Optional ZoneMapStore (observe plane): ranged dispatches consult
        # it to skip row ranges every predicate provably refutes, and its
        # builds shard across the pool via the zone_stats kernel.
        self.zone_maps = zone_maps
        if zone_maps is not None and zone_maps.builder is None:
            zone_maps.builder = self.build_zone_stats
        self.registry = ShmRegistry()
        self.pool: Optional[WorkerPool] = (
            WorkerPool(self.workers, start_method, task_timeout)
            if self.workers > 0
            else None
        )
        # Two locks with disjoint jobs: _lock guards registry mutations
        # (export / release) and is only ever held for the copy-out, so
        # DROP TABLE never waits out a stalled pool; _pool_lock
        # serializes run_tasks, whose queue bookkeeping assumes one
        # in-flight batch at a time.
        self._lock = threading.Lock()
        self._pool_lock = threading.Lock()
        # Adaptive shard sizing state: per-table latency profiles from
        # the last timed dispatch, plus a sample ring for stats().
        self._profile_lock = threading.Lock()
        self._profiles: Dict[str, _Profile] = {}
        self._shard_times: deque = deque(maxlen=_LATENCY_SAMPLES)
        self.rebalances = 0
        self.fragment_counts: Dict[str, int] = {}
        self._disabled = False
        self.parallel_calls = 0
        self.inline_calls = 0
        self.fallbacks = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Core dispatch
    # ------------------------------------------------------------------
    def _shard_bounds(
        self, n: int, key: Optional[str] = None
    ) -> List[Tuple[int, int]]:
        shards = max(1, self.workers)
        if n > 0:
            shards = min(shards, n)
        else:
            shards = 1
        uniform = [
            (i * n // shards, (i + 1) * n // shards) for i in range(shards)
        ]
        if key is None or shards < 2:
            return uniform
        with self._profile_lock:
            profile = self._profiles.get(key)
        if profile is None:
            return uniform
        bounds = equal_latency_bounds(profile, n, shards)
        if bounds is None or bounds == uniform:
            return uniform
        self.rebalances += 1
        return bounds

    def _note_shard_times(
        self,
        key: Optional[str],
        bounds: Optional[List[Tuple[int, int]]],
        times: List[float],
    ) -> None:
        with self._profile_lock:
            self._shard_times.extend(times)
            if key is not None and bounds and len(bounds) >= 2:
                self._profiles[key] = (bounds[-1][1], list(bounds), times)

    def _run(
        self,
        tables,
        kernel: str,
        kwargs_list: List[dict],
        label: str,
        timing_key: Optional[str] = None,
        bounds: Optional[List[Tuple[int, int]]] = None,
    ):
        """Run one kernel over shards: worker pool when healthy, else the
        same kernels in-process (identical results either way).

        ``tables`` is one table or a sequence (multi-table kernels see a
        per-table arrays dict). ``timing_key`` wraps each task in the
        ``timed`` kernel and records per-shard wall-clock against that
        key for adaptive shard sizing.
        """
        if not isinstance(tables, (list, tuple)):
            tables = [tables]
        multi = len(tables) > 1
        # Shard batches are the manager's morsels: poll the statement's
        # cancel token before dispatching one (workers never see the
        # token, so a pooled batch is interrupted at its boundary).
        check_cancelled()
        if self.pool is not None and not self._disabled:
            try:
                with self._lock:
                    payloads = tuple(
                        self.registry.export(t) for t in tables
                    )
                payload = payloads if multi else payloads[0]
                if timing_key is not None:
                    tasks = [
                        ("timed", payload, dict(kernel=kernel, kwargs=kw))
                        for kw in kwargs_list
                    ]
                else:
                    tasks = [(kernel, payload, kw) for kw in kwargs_list]
                with self._pool_lock:
                    out = self.pool.run_tasks(tasks)
                    self.parallel_calls += 1
                if timing_key is not None:
                    self._note_shard_times(
                        timing_key, bounds, [t for t, _ in out]
                    )
                    out = [result for _, result in out]
                return out
            except (PoolUnavailable, WorkerError, ShmError, OSError) as exc:
                self.fallbacks += 1
                if isinstance(exc, PoolUnavailable):
                    self._disabled = True
                warnings.warn(
                    f"parallel {label} fell back to in-process execution: "
                    f"{exc}",
                    RuntimeWarning,
                    stacklevel=4,
                )
        self.inline_calls += 1

        def live_arrays(table):
            return {
                name.lower(): table.column_data(name)
                for name in table.schema.column_names()
            }

        if multi:
            arrays = {t.name.lower(): live_arrays(t) for t in tables}
        else:
            arrays = live_arrays(tables[0])
        fn = KERNELS[kernel]
        if timing_key is not None:
            out, times = [], []
            for kw in kwargs_list:
                check_cancelled()
                t0 = time.perf_counter()
                out.append(fn(arrays, **kw))
                times.append(time.perf_counter() - t0)
            self._note_shard_times(timing_key, bounds, times)
            return out
        results = []
        for kw in kwargs_list:
            check_cancelled()
            results.append(fn(arrays, **kw))
        return results

    def _pruned_bounds(
        self, ranges: List[Tuple[int, int]]
    ) -> List[Tuple[int, int]]:
        """Shard the surviving row ranges into roughly ``workers`` chunks
        (ascending, never spanning a skipped gap)."""
        total = sum(stop - start for start, stop in ranges)
        shards = min(max(1, self.workers), max(1, total))
        chunk = max(1, -(-total // shards))
        bounds: List[Tuple[int, int]] = []
        for start, stop in ranges:
            pos = start
            while pos < stop:
                end = min(pos + chunk, stop)
                bounds.append((pos, end))
                pos = end
        return bounds

    def run_ranged(
        self,
        table,
        kernel: str,
        common_kwargs: dict,
        label: str,
        preds=None,
    ) -> List:
        """Shard ``[0, table.row_count)`` (adaptively, when a latency
        profile exists for the table) and run one row-ranged kernel task
        per shard; per-shard wall-clock feeds the table's profile.

        With ``preds`` (encoded physical predicates) and a zone-map store
        attached, row ranges every predicate refutes are skipped: every
        ranged kernel applies ``scan_shard`` semantics over its [start,
        stop) slice, and refuted zones contribute no matching rows, so
        the concatenated (ascending) results are byte-identical to the
        unpruned dispatch. Pruned dispatches bypass the adaptive-profile
        bookkeeping — their bounds describe a different row universe.
        """
        n = table.row_count
        key = table.name.lower()
        if preds and self.zone_maps is not None:
            ranges = self.zone_maps.allowed_ranges(table, preds)
            if ranges is not None:
                if not ranges:
                    # Every zone refuted: one empty task keeps each
                    # kernel's natural result shape without special
                    # cases in the merge paths.
                    bounds = [(0, 0)]
                else:
                    bounds = self._pruned_bounds(ranges)
                kwargs_list = [
                    dict(common_kwargs, start=start, stop=stop)
                    for start, stop in bounds
                ]
                return self._run(
                    table, kernel, kwargs_list, label, timing_key=key
                )
        bounds = self._shard_bounds(n, key)
        kwargs_list = [
            dict(common_kwargs, start=start, stop=stop)
            for start, stop in bounds
        ]
        return self._run(
            table, kernel, kwargs_list, label, timing_key=key, bounds=bounds
        )

    def run_partitioned(
        self, tables, kernel: str, kwargs_list: List[dict], label: str
    ) -> List:
        """Dispatch pre-built (possibly multi-table) kernel tasks — the
        join probe stage, one task per hash partition."""
        return self._run(tables, kernel, kwargs_list, label)

    # ------------------------------------------------------------------
    # Table scans (SeqScan / DML WHERE)
    # ------------------------------------------------------------------
    def scan_rows(self, table, predicates) -> Optional[np.ndarray]:
        """Row positions matching the predicate conjunction, or None when
        the parallel path does not apply (small table, predicate the
        kernels cannot lower) — the caller then uses ``group_mask``."""
        predicates = list(predicates)
        if not predicates:
            return None
        n = table.row_count
        if n < self.threshold_rows:
            return None
        phys = encode_predicates(table, predicates)
        if phys is None:
            return None
        parts = self.run_ranged(
            table,
            "scan",
            dict(preds=phys, cost_per_row=self.cost_per_row),
            "scan",
            preds=phys,
        )
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # ------------------------------------------------------------------
    # Plan fragments (aggregate / join / sort / distinct)
    # ------------------------------------------------------------------
    def fragment_batch(
        self, node, block, database, required, observations
    ):
        """Execute a plan fragment rooted at ``node`` over the pool, or
        return None when the fragment planner declines (the sequential
        operator path then runs; see :mod:`.fragments`)."""
        from .fragments import execute_fragment

        return execute_fragment(
            self, node, block, database, required, observations
        )

    def note_fragment(self, kind: str) -> None:
        self.fragment_counts[kind] = self.fragment_counts.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # QSS sample-selectivity evaluation (JITS collection)
    # ------------------------------------------------------------------
    def masks_for_predicates(
        self, table, predicates, rows, cache_get=None, cache_put=None
    ):
        """Drop-in parallel analogue of ``evaluate.masks_for_predicates``
        (same ``(masks, hits, misses)`` contract, including the external
        mask cache); None when ineligible."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) < self.threshold_rows:
            return None
        distinct = []
        seen = set()
        for predicate in predicates:
            if predicate not in seen:
                seen.add(predicate)
                distinct.append(predicate)
        masks: Dict = {}
        hits = misses = 0
        missing = []
        for predicate in distinct:
            mask = cache_get(predicate) if cache_get is not None else None
            if mask is None:
                missing.append(predicate)
            else:
                hits += 1
                masks[predicate] = mask
        if missing:
            phys = encode_predicates(table, missing)
            if phys is None:
                return None  # sequential path owns the error semantics
            kwargs = [
                dict(
                    preds=phys,
                    rows=rows[s:t],
                    cost_per_row=self.cost_per_row,
                )
                for s, t in self._shard_bounds(len(rows))
            ]
            parts = self._run(table, "masks", kwargs, "selectivity evaluation")
            for i, predicate in enumerate(missing):
                if len(parts) == 1:
                    mask = parts[0][i]
                else:
                    mask = np.concatenate([part[i] for part in parts])
                masks[predicate] = mask
                if cache_put is not None:
                    cache_put(predicate, mask)
                    misses += 1
        return masks, hits, misses

    # ------------------------------------------------------------------
    # RUNSTATS per-column distribution passes
    # ------------------------------------------------------------------
    def column_statistics(
        self,
        table,
        names: Sequence[str],
        rows: Optional[np.ndarray],
        scale: float,
        n_buckets: int,
        n_frequent: int,
        integral_by_name: Dict[str, bool],
    ) -> Optional[Dict[str, dict]]:
        """Raw per-column statistics dicts (one worker task per column),
        or None when the table is below the parallel threshold."""
        if table.row_count < self.threshold_rows or not names:
            return None
        rows_arr = None if rows is None else np.asarray(rows, dtype=np.int64)
        kwargs = [
            dict(
                column=name.lower(),
                rows=rows_arr,
                integral=integral_by_name[name],
                scale=scale,
                n_buckets=n_buckets,
                n_frequent=n_frequent,
                cost_per_row=self.cost_per_row,
            )
            for name in names
        ]
        out = self._run(table, "column_stats", kwargs, "runstats")
        return dict(zip(names, out))

    # ------------------------------------------------------------------
    # Zone-map synopsis builds (observe plane)
    # ------------------------------------------------------------------
    def build_zone_stats(self, table, columns, zone_rows: int):
        """Sharded zone-map build over the pool: zone-aligned row ranges,
        one ``zone_stats`` task per shard, per-column concat in the
        parent. None declines (small table / no pool) and the store
        builds in-process."""
        n = table.row_count
        if n < self.threshold_rows or self.pool is None or self._disabled:
            return None
        columns = [c.lower() for c in columns]
        n_zones = -(-n // zone_rows)
        shards = min(max(1, self.workers), n_zones)
        bounds = []
        for i in range(shards):
            z0 = i * n_zones // shards
            z1 = (i + 1) * n_zones // shards
            if z1 > z0:
                bounds.append((z0 * zone_rows, min(z1 * zone_rows, n)))
        kwargs_list = [
            dict(columns=columns, start=start, stop=stop, zone_rows=zone_rows)
            for start, stop in bounds
        ]
        parts = self._run(table, "zone_stats", kwargs_list, "zone map build")
        out = {}
        for column in columns:
            out[column] = tuple(
                np.concatenate([part[column][i] for part in parts])
                for i in range(3)
            )
        return out

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def release_table(self, table_name: str) -> None:
        """Unlink a dropped table's segments."""
        with self._lock:
            self.registry.release(table_name)
        if self.zone_maps is not None:
            self.zone_maps.release(table_name)

    def stats(self) -> Dict[str, object]:
        with self._profile_lock:
            samples = list(self._shard_times)
        if samples:
            latency = {
                "samples": len(samples),
                "p50_ms": round(
                    float(np.percentile(samples, 50)) * 1000.0, 3
                ),
                "p95_ms": round(
                    float(np.percentile(samples, 95)) * 1000.0, 3
                ),
            }
        else:
            latency = {"samples": 0, "p50_ms": 0.0, "p95_ms": 0.0}
        out = {
            "workers": self.workers,
            "threshold_rows": self.threshold_rows,
            "parallel_calls": self.parallel_calls,
            "inline_calls": self.inline_calls,
            "fallbacks": self.fallbacks,
            "worker_respawns": self.pool.respawns if self.pool else 0,
            "tables_exported": self.registry.exports,
            "shard_latency": latency,
            "rebalances": self.rebalances,
            "fragments": dict(sorted(self.fragment_counts.items())),
            "process_path": (
                "disabled"
                if (self.pool is None or self._disabled)
                else "enabled"
            ),
        }
        if self.zone_maps is not None:
            out["zone_maps"] = self.zone_maps.stats()
        return out

    def close(self) -> None:
        """Stop workers and unlink every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        if self.pool is not None:
            self.pool.close()
        self.registry.close()
