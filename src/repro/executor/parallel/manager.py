"""ParallelScanManager: the engine-facing facade over shm + pool + kernels.

One manager per engine shards three hot paths across worker processes:

* table scans (``SeqScan`` with predicates, DML WHERE targeting),
* QSS sample-selectivity evaluation (the JITS collection hot path),
* RUNSTATS per-column distribution passes.

Contracts:

* **Pinned epochs, never live stores.** Workers only ever see a table
  through an epoch-stamped shared-memory export; the calling statement's
  table lock keeps the epoch stable while shards are in flight, and RCU
  statistics snapshots are untouched (workers compute raw masks/stats,
  the parent does every store write).
* **Transparent fallback.** Any pool, worker or shared-memory failure
  falls back to running the identical kernels in-process — a warning,
  never a wrong answer. A dead pool (spawn failure / repeated crashes)
  disables the process path for the rest of the engine's life.
* **workers == 0** runs the kernels in-process over a single shard.
  With ``cost_per_row`` set this is the modeled sequential baseline the
  parallel-scan benchmark compares against; shard layout never changes
  results (property-tested), only overlap.
"""

from __future__ import annotations

import threading
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...storage.shm import ShmError, ShmRegistry
from .kernels import KERNELS, encode_predicates
from .pool import PoolUnavailable, WorkerError, WorkerPool

DEFAULT_PARALLEL_THRESHOLD = 32768


class ParallelScanManager:
    def __init__(
        self,
        workers: int = 0,
        threshold_rows: int = DEFAULT_PARALLEL_THRESHOLD,
        cost_per_row: float = 0.0,
        start_method: str = "forkserver",
        task_timeout: float = 120.0,
    ):
        self.workers = max(0, workers)
        self.threshold_rows = max(1, threshold_rows)
        self.cost_per_row = cost_per_row
        self.registry = ShmRegistry()
        self.pool: Optional[WorkerPool] = (
            WorkerPool(self.workers, start_method, task_timeout)
            if self.workers > 0
            else None
        )
        # Two locks with disjoint jobs: _lock guards registry mutations
        # (export / release) and is only ever held for the copy-out, so
        # DROP TABLE never waits out a stalled pool; _pool_lock
        # serializes run_tasks, whose queue bookkeeping assumes one
        # in-flight batch at a time.
        self._lock = threading.Lock()
        self._pool_lock = threading.Lock()
        self._disabled = False
        self.parallel_calls = 0
        self.inline_calls = 0
        self.fallbacks = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Core dispatch
    # ------------------------------------------------------------------
    def _shard_bounds(self, n: int) -> List[Tuple[int, int]]:
        shards = max(1, self.workers)
        if n > 0:
            shards = min(shards, n)
        else:
            shards = 1
        return [
            (i * n // shards, (i + 1) * n // shards) for i in range(shards)
        ]

    def _run(self, table, kernel: str, kwargs_list: List[dict], label: str):
        """Run one kernel over shards: worker pool when healthy, else the
        same kernels in-process (identical results either way)."""
        if self.pool is not None and not self._disabled:
            try:
                with self._lock:
                    payload = self.registry.export(table)
                tasks = [(kernel, payload, kw) for kw in kwargs_list]
                with self._pool_lock:
                    out = self.pool.run_tasks(tasks)
                    self.parallel_calls += 1
                return out
            except (PoolUnavailable, WorkerError, ShmError, OSError) as exc:
                self.fallbacks += 1
                if isinstance(exc, PoolUnavailable):
                    self._disabled = True
                warnings.warn(
                    f"parallel {label} fell back to in-process execution: "
                    f"{exc}",
                    RuntimeWarning,
                    stacklevel=4,
                )
        self.inline_calls += 1
        arrays = {
            name.lower(): table.column_data(name)
            for name in table.schema.column_names()
        }
        fn = KERNELS[kernel]
        return [fn(arrays, **kw) for kw in kwargs_list]

    # ------------------------------------------------------------------
    # Table scans (SeqScan / DML WHERE)
    # ------------------------------------------------------------------
    def scan_rows(self, table, predicates) -> Optional[np.ndarray]:
        """Row positions matching the predicate conjunction, or None when
        the parallel path does not apply (small table, predicate the
        kernels cannot lower) — the caller then uses ``group_mask``."""
        predicates = list(predicates)
        if not predicates:
            return None
        n = table.row_count
        if n < self.threshold_rows:
            return None
        phys = encode_predicates(table, predicates)
        if phys is None:
            return None
        kwargs = [
            dict(preds=phys, start=s, stop=t, cost_per_row=self.cost_per_row)
            for s, t in self._shard_bounds(n)
        ]
        parts = self._run(table, "scan", kwargs, "scan")
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # ------------------------------------------------------------------
    # QSS sample-selectivity evaluation (JITS collection)
    # ------------------------------------------------------------------
    def masks_for_predicates(
        self, table, predicates, rows, cache_get=None, cache_put=None
    ):
        """Drop-in parallel analogue of ``evaluate.masks_for_predicates``
        (same ``(masks, hits, misses)`` contract, including the external
        mask cache); None when ineligible."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) < self.threshold_rows:
            return None
        distinct = []
        seen = set()
        for predicate in predicates:
            if predicate not in seen:
                seen.add(predicate)
                distinct.append(predicate)
        masks: Dict = {}
        hits = misses = 0
        missing = []
        for predicate in distinct:
            mask = cache_get(predicate) if cache_get is not None else None
            if mask is None:
                missing.append(predicate)
            else:
                hits += 1
                masks[predicate] = mask
        if missing:
            phys = encode_predicates(table, missing)
            if phys is None:
                return None  # sequential path owns the error semantics
            kwargs = [
                dict(
                    preds=phys,
                    rows=rows[s:t],
                    cost_per_row=self.cost_per_row,
                )
                for s, t in self._shard_bounds(len(rows))
            ]
            parts = self._run(table, "masks", kwargs, "selectivity evaluation")
            for i, predicate in enumerate(missing):
                if len(parts) == 1:
                    mask = parts[0][i]
                else:
                    mask = np.concatenate([part[i] for part in parts])
                masks[predicate] = mask
                if cache_put is not None:
                    cache_put(predicate, mask)
                    misses += 1
        return masks, hits, misses

    # ------------------------------------------------------------------
    # RUNSTATS per-column distribution passes
    # ------------------------------------------------------------------
    def column_statistics(
        self,
        table,
        names: Sequence[str],
        rows: Optional[np.ndarray],
        scale: float,
        n_buckets: int,
        n_frequent: int,
        integral_by_name: Dict[str, bool],
    ) -> Optional[Dict[str, dict]]:
        """Raw per-column statistics dicts (one worker task per column),
        or None when the table is below the parallel threshold."""
        if table.row_count < self.threshold_rows or not names:
            return None
        rows_arr = None if rows is None else np.asarray(rows, dtype=np.int64)
        kwargs = [
            dict(
                column=name.lower(),
                rows=rows_arr,
                integral=integral_by_name[name],
                scale=scale,
                n_buckets=n_buckets,
                n_frequent=n_frequent,
                cost_per_row=self.cost_per_row,
            )
            for name in names
        ]
        out = self._run(table, "column_stats", kwargs, "runstats")
        return dict(zip(names, out))

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def release_table(self, table_name: str) -> None:
        """Unlink a dropped table's segments."""
        with self._lock:
            self.registry.release(table_name)

    def stats(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "threshold_rows": self.threshold_rows,
            "parallel_calls": self.parallel_calls,
            "inline_calls": self.inline_calls,
            "fallbacks": self.fallbacks,
            "worker_respawns": self.pool.respawns if self.pool else 0,
            "tables_exported": self.registry.exports,
            "process_path": (
                "disabled"
                if (self.pool is None or self._disabled)
                else "enabled"
            ),
        }

    def close(self) -> None:
        """Stop workers and unlink every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        if self.pool is not None:
            self.pool.close()
        self.registry.close()
