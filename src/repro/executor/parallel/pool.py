"""Persistent forkserver worker pool for sharded scan kernels.

Design notes:

* Workers are spawned from a ``forkserver`` context (falling back to
  ``spawn`` where forkserver is unavailable): children never inherit the
  engine's threads, locks or live stores — a task carries a kernel name
  from :data:`~repro.executor.parallel.kernels.KERNELS`, a pinned-epoch
  :class:`~repro.storage.shm.TablePayload` and plain kwargs.
* Each worker owns a private task queue and result queue. A SIGKILLed
  worker can therefore corrupt at most its own channels: the parent
  detects the death via ``Process.is_alive()`` while collecting results
  — or via a torn message (deserialization error) left mid-``put`` on
  the result queue — respawns the worker with fresh queues, and resends
  exactly the tasks that were assigned to it (bounded by
  ``max_attempts`` per task).
* Task ids are globally unique, so results that straggle in from an
  abandoned run (after a :class:`WorkerError`) are recognized and
  dropped instead of being matched to a later run's tasks.
"""

from __future__ import annotations

import atexit
import contextlib
import importlib.machinery
import multiprocessing as mp
import queue as queue_mod
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ...errors import ExecutionError
from ...storage.shm import TablePayload, WorkerAttachments
from .kernels import KERNELS


class WorkerError(ExecutionError):
    """A kernel raised inside a worker (the caller falls back in-process)."""


class PoolUnavailable(ExecutionError):
    """The pool cannot make progress (spawn failure, repeated deaths)."""


#: (task_id, kernel_name, payload, kwargs) on the task queue; payload is
#: one TablePayload, a tuple of them (multi-table kernels receive a
#: per-table arrays dict) or None; (task_id, ok, result | error_text)
#: comes back on the result queue.
Task = Tuple[str, Union[TablePayload, Tuple[TablePayload, ...], None], dict]


def _worker_main(task_q, result_q) -> None:
    attachments = WorkerAttachments()
    while True:
        item = task_q.get()
        if item is None:
            return
        task_id, kernel, payload, kwargs = item
        try:
            if payload is None:
                arrays = {}
            elif isinstance(payload, tuple):
                # Multi-table task (join probe): kernels see one arrays
                # dict per table, keyed by table name — a self-join's
                # two identical payloads collapse to one entry.
                arrays = {p.table: attachments.arrays(p) for p in payload}
            else:
                arrays = attachments.arrays(payload)
            result = KERNELS[kernel](arrays, **kwargs)
            result_q.put((task_id, True, result))
        except BaseException as exc:  # report, keep serving
            try:
                result_q.put(
                    (task_id, False, f"{type(exc).__name__}: {exc}")
                )
            except Exception:
                return


@contextlib.contextmanager
def _suppress_main_reimport():
    """Keep spawn preparation from re-running the parent's ``__main__``.

    forkserver/spawn children re-execute the parent's main module when it
    has a file path but no import spec — which crashes on phantom paths
    (``python - <<EOF`` heredocs) and re-runs top-level code in scripts
    without a ``__main__`` guard. Workers never need anything from the
    main module (kernels live in :mod:`repro`), so a dummy spec is set
    while the child's preparation data is captured, making the fixup a
    no-op, then restored.
    """
    main = sys.modules.get("__main__")
    if main is None or getattr(main, "__spec__", None) is not None:
        yield
        return
    main.__spec__ = importlib.machinery.ModuleSpec("__main__", None)
    try:
        yield
    finally:
        main.__spec__ = None


class WorkerPool:
    """A fixed-width pool with crash detection and automatic respawn."""

    def __init__(
        self,
        workers: int,
        start_method: str = "forkserver",
        task_timeout: float = 120.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.task_timeout = task_timeout
        try:
            self._ctx = mp.get_context(start_method)
        except ValueError:
            self._ctx = mp.get_context("spawn")
        self._procs: List[Optional[mp.process.BaseProcess]] = [None] * workers
        self._task_qs: List[Any] = [None] * workers
        self._result_qs: List[Any] = [None] * workers
        self._started = False
        self._closed = False
        self._task_seq = 0
        self.respawns = 0  # workers respawned after a crash
        self.tasks_run = 0
        atexit.register(self.close)

    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> None:
        """Spawn the workers (lazy; run_tasks calls this on first use)."""
        if self._started or self._closed:
            return
        for i in range(self.workers):
            self._spawn(i)
        self._started = True

    def _spawn(self, i: int) -> None:
        task_q = self._ctx.Queue()
        result_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(task_q, result_q),
            daemon=True,
            name=f"repro-scan-worker-{i}",
        )
        with _suppress_main_reimport():
            proc.start()
        self._procs[i] = proc
        self._task_qs[i] = task_q
        self._result_qs[i] = result_q

    def _discard_worker(self, i: int) -> None:
        """Tear down worker ``i`` and its channels (before a respawn)."""
        proc = self._procs[i]
        if proc is not None and proc.is_alive():
            try:
                proc.terminate()
                proc.join(timeout=1.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=1.0)
            except Exception:
                pass
        for q in (self._task_qs[i], self._result_qs[i]):
            if q is None:
                continue
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass

    def pids(self) -> List[int]:
        return [p.pid for p in self._procs if p is not None and p.pid]

    def run_tasks(
        self, tasks: Sequence[Task], max_attempts: int = 3
    ) -> List[Any]:
        """Run tasks across the pool; results align with the input order.

        Raises :class:`WorkerError` when a kernel fails inside a worker
        and :class:`PoolUnavailable` when the pool itself cannot make
        progress; both leave the pool serviceable for the next call.
        """
        if self._closed:
            raise PoolUnavailable("worker pool is closed")
        try:
            self.start()
        except Exception as exc:
            raise PoolUnavailable(f"cannot start workers: {exc}") from exc
        n = len(tasks)
        if n == 0:
            return []
        base = self._task_seq
        self._task_seq += n
        index_of = {base + i: i for i in range(n)}
        results: Dict[int, Any] = {}
        assigned: List[Set[int]] = [set() for _ in range(self.workers)]
        attempts = [0] * n

        def dispatch(task_id: int, worker: int) -> None:
            index = index_of[task_id]
            attempts[index] += 1
            if attempts[index] > max_attempts:
                raise PoolUnavailable(
                    f"task retried {max_attempts} times across worker crashes"
                )
            kernel, payload, kwargs = tasks[index]
            assigned[worker].add(task_id)
            self._task_qs[worker].put((task_id, kernel, payload, kwargs))

        def recycle(w: int) -> None:
            # Crash (or torn channel): fresh worker + fresh queues,
            # resend this worker's unfinished tasks.
            self.respawns += 1
            pending = sorted(assigned[w])
            assigned[w] = set()
            self._discard_worker(w)
            self._spawn(w)
            for tid in pending:
                if tid not in results:
                    dispatch(tid, w)

        for i in range(n):
            dispatch(base + i, i % self.workers)

        deadline = time.monotonic() + self.task_timeout
        while len(results) < n:
            progressed = False
            for w in range(self.workers):
                if not assigned[w]:
                    continue
                try:
                    task_id, ok, value = self._result_qs[w].get(timeout=0.02)
                except queue_mod.Empty:
                    proc = self._procs[w]
                    if proc is not None and not proc.is_alive():
                        recycle(w)
                        progressed = True
                    continue
                except Exception:
                    # A worker killed mid-put leaves a torn message that
                    # fails to deserialize (EOFError/UnpicklingError);
                    # the channel is unusable either way.
                    recycle(w)
                    progressed = True
                    continue
                assigned[w].discard(task_id)
                if task_id not in index_of:
                    continue  # straggler from an abandoned run
                if not ok:
                    raise WorkerError(value)
                if task_id not in results:
                    results[task_id] = value
                progressed = True
            if progressed:
                deadline = time.monotonic() + self.task_timeout
            elif time.monotonic() > deadline:
                raise PoolUnavailable(
                    f"pool made no progress for {self.task_timeout:.0f}s"
                )
        self.tasks_run += n
        return [results[base + i] for i in range(n)]

    def close(self) -> None:
        """Stop the workers; idempotent, also runs at interpreter exit."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        for q in self._task_qs:
            try:
                q.put_nowait(None)
            except Exception:
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        for q in list(self._task_qs) + list(self._result_qs):
            if q is None:
                continue
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
