"""Process-parallel scan execution over shared-memory columns.

Layers: :mod:`~repro.storage.shm` exports epoch-stamped column segments,
:mod:`.kernels` holds the sharded scan/aggregate/selectivity kernels,
:mod:`.pool` runs them in a persistent forkserver worker pool with crash
detection, and :mod:`.manager` wires the three into the engine with
transparent in-process fallback.
"""

from .kernels import (
    KERNELS,
    PhysPredicate,
    encode_predicate,
    encode_predicates,
    merge_aggregates,
)
from .manager import DEFAULT_PARALLEL_THRESHOLD, ParallelScanManager
from .pool import PoolUnavailable, WorkerError, WorkerPool

__all__ = [
    "KERNELS",
    "PhysPredicate",
    "encode_predicate",
    "encode_predicates",
    "merge_aggregates",
    "DEFAULT_PARALLEL_THRESHOLD",
    "ParallelScanManager",
    "PoolUnavailable",
    "WorkerError",
    "WorkerPool",
]
