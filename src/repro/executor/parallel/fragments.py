"""Morsel-driven plan fragments over the worker pool.

A *fragment* is a maximal plan subtree the manager can run as sharded
kernels over /dev/shm column exports instead of the sequential operator
path: fused scan→filter→partial-aggregate, partitioned hash join,
shard-local sort and shard-local distinct. The planner here decides
eligibility (fragment boundaries) from the manager's row threshold and
what the kernels can express; anything it declines falls through to
``PlanExecutor``'s sequential operators, so fragments are purely an
execution strategy.

Byte-identity contract (checked by ``tests/harness/differential.py``):

* **Aggregates** fuse only where partial merge is exact in any shard
  order: COUNT; MIN/MAX over numeric columns, and over string columns
  by reducing parent-precomputed dictionary rank arrays (codes do not
  follow string order, ranks do); SUM/AVG over INT columns whose total
  magnitude stays inside float64's exact-integer range, and over finite
  FLOAT columns via exact ``(mantissa, exp2)`` shard partials merged in
  fixed shard order (``executor.floatsum`` — exactly rounded, hence
  order-independent). DISTINCT aggregates stay sequential, as do float
  columns containing non-finite values.
* **Joins** re-order the concatenated partition outputs by global
  (probe_row, build_row) — exactly the sequential
  ``equi_join_indices`` pair order, because scan batches are row-ordered
  and the sequential join emits probe-ascending, build-ascending pairs.
* **Sort/Distinct** rely on stable merges: shard order preserves global
  row order, so ties and first-occurrences land exactly where the
  sequential ``np.lexsort`` / ``np.unique`` paths put them.

Fragments dispatch even with ``workers == 0`` (single inline shard):
that is the modeled-cost sequential baseline the plan benchmark compares
against, identical kernels and results, no overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...errors import ReproError
from ...optimizer.plans import (
    Aggregate,
    Distinct,
    HashJoin,
    PlanNode,
    Project,
    SeqScan,
    Sort,
)
from ...sql import ast
from ...types import DataType
from ..aggregate import collect_aggregates, finalize_aggregate
from ..executor import ScanObservation
from ..floatsum import ZERO_PAIR, add_pairs, merge_pair_arrays, pairs_to_floats
from ..vector import Batch, ColumnVector, batch_from_table, code_lookup
from .kernels import PhysPredicate, encode_predicates

#: Largest |value| * row_count for which float64 partial sums are exact
#: integers regardless of addition order (the int SUM/AVG fusion gate).
_EXACT_INT_SUM = float(1 << 53)


# ----------------------------------------------------------------------
# Scan lowering shared by every fragment kind
# ----------------------------------------------------------------------
@dataclass
class _Scan:
    node: SeqScan
    table: object
    preds: Tuple[PhysPredicate, ...]

    @property
    def alias(self) -> str:
        return self.node.alias

    def column_names(self) -> set:
        return {c.lower() for c in self.table.schema.column_names()}


def _lower_scan(node: PlanNode, database) -> Optional[_Scan]:
    """Lower a leaf to kernel form; None when it is not a plain SeqScan
    with fully encodable predicates (residuals need expression eval)."""
    if not isinstance(node, SeqScan) or node.scan_residuals:
        return None
    table = database.table(node.table_name)
    preds: Tuple[PhysPredicate, ...] = ()
    if node.predicates:
        encoded = encode_predicates(table, node.predicates)
        if encoded is None:
            return None
        preds = encoded
    return _Scan(node, table, preds)


def _observe(scan: _Scan, matched: int, observations: Dict) -> None:
    """Write the same actuals/observation the sequential scan would."""
    scan.node.actual_base_rows = scan.table.row_count
    scan.node.actual_rows = matched
    observations[scan.alias] = ScanObservation(
        alias=scan.alias,
        table_name=scan.table.name,
        base_rows=scan.table.row_count,
        matched_rows=matched,
    )


def _column_of(expr, alias: str, columns: set) -> Optional[str]:
    """The table column a plain qualified ColumnRef resolves to."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    if (expr.qualifier or "").lower() != alias:
        return None
    name = expr.name.lower()
    return name if name in columns else None


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def execute_fragment(
    manager, node: PlanNode, block, database, required, observations
) -> Optional[Batch]:
    """Run ``node`` as a pool fragment, or None to decline."""
    if isinstance(node, Aggregate):
        return _aggregate_fragment(
            manager, node, database, observations
        )
    if isinstance(node, HashJoin):
        return _join_fragment(
            manager, node, database, required, observations
        )
    if isinstance(node, Sort):
        return _sort_fragment(manager, node, database, observations)
    if isinstance(node, Distinct):
        return _distinct_fragment(manager, node, database, observations)
    return None


# ----------------------------------------------------------------------
# Fused scan → filter → partial aggregate
# ----------------------------------------------------------------------
def _int_sum_exact(table, column: str) -> bool:
    data = table.column_data(column)
    if len(data) == 0:
        return True
    bound = float(np.abs(data.astype(np.float64)).max()) * len(data)
    return bound < _EXACT_INT_SUM


def _float_sum_finite(table, column: str) -> bool:
    """Exact float summation needs finite inputs; a column holding any
    inf/nan keeps SUM/AVG on the sequential bincount path (which matches
    IEEE propagation semantics)."""
    data = table.column_data(column)
    return len(data) == 0 or bool(np.isfinite(data).all())


def _plan_aggregates(node: Aggregate, scan: _Scan):
    """Lower every aggregate to primitive partials, or None.

    Returns ``(prim_specs, plans)`` where ``plans`` maps each distinct
    ast.Aggregate to ``(kind, prim_ref, column)`` and ``prim_specs`` is
    the deduplicated ``(func, column)`` list the shard kernel computes.
    """
    columns = scan.column_names()
    schema = scan.table.schema
    aggs = collect_aggregates(
        [item.expr for item in node.items]
        + ([node.having] if node.having is not None else [])
    )
    prim_specs: List[Tuple[str, str]] = []
    prim_index: Dict[Tuple[str, str], int] = {}

    def prim(func: str, column: str) -> int:
        key = (func, column)
        if key not in prim_index:
            prim_index[key] = len(prim_specs)
            prim_specs.append(key)
        return prim_index[key]

    plans: Dict[ast.Aggregate, Tuple] = {}
    for agg in aggs:
        if agg.distinct:
            return None
        if agg.func is ast.AggFunc.COUNT:
            if agg.argument is not None:
                if _column_of(agg.argument, scan.alias, columns) is None:
                    return None
            plans[agg] = ("count", prim("count", ""), None)
            continue
        column = _column_of(agg.argument, scan.alias, columns)
        if column is None:
            return None
        dtype = schema.column(column).dtype
        if agg.func in (ast.AggFunc.SUM, ast.AggFunc.AVG):
            if dtype is DataType.INT:
                if not _int_sum_exact(scan.table, column):
                    return None
                if agg.func is ast.AggFunc.SUM:
                    plans[agg] = ("sum_int", prim("sum", column), column)
                else:
                    plans[agg] = (
                        "avg_int",
                        (prim("sum", column), prim("count", "")),
                        column,
                    )
            elif dtype is DataType.FLOAT:
                # Exact (mantissa, exp2) shard partials make float sums
                # shard-order independent; a non-finite value anywhere in
                # the column defers to the sequential path instead.
                if not _float_sum_finite(scan.table, column):
                    return None
                if agg.func is ast.AggFunc.SUM:
                    plans[agg] = ("sum_float", prim("fsum", column), column)
                else:
                    plans[agg] = (
                        "avg_float",
                        (prim("fsum", column), prim("count", "")),
                        column,
                    )
            else:
                return None  # SUM over strings: sequential path owns the error
        elif agg.func in (ast.AggFunc.MIN, ast.AggFunc.MAX):
            if dtype is DataType.STRING:
                # Codes do not follow string order; reduce over the
                # dictionary's lexicographic rank array instead.
                func = "min_rank" if agg.func is ast.AggFunc.MIN else "max_rank"
                kind = "min_str" if agg.func is ast.AggFunc.MIN else "max_str"
                plans[agg] = (kind, prim(func, column), column)
            else:
                func = "min" if agg.func is ast.AggFunc.MIN else "max"
                plans[agg] = (func, prim(func, column), column)
        else:
            return None
    return tuple(prim_specs), plans


def merge_group_partials(
    parts, n_keys: int, specs: Tuple[Tuple[str, str], ...]
):
    """Re-group ``group_aggregate_shard`` partials across shards.

    Returns ``(key_arrays, partial_arrays, n_groups, matched_rows)``.
    Merged group order is ascending by key values — the same order
    ``aggregate.group_ids`` produces over the whole batch, since
    np.unique codes are value-ascending in both places.
    """
    matched = int(sum(p[2] for p in parts))

    def shard_groups(part) -> int:
        if n_keys:
            return len(part[0][0]) if part[0] else 0
        return len(part[1][0]) if part[1] else 0

    if not any(shard_groups(p) for p in parts):
        head = parts[0]
        empty_keys = tuple(head[0][j][:0] for j in range(n_keys))
        empty_prims = tuple(head[1][i][:0] for i in range(len(specs)))
        return empty_keys, empty_prims, 0, matched

    if n_keys == 0:
        live = [p for p in parts if shard_groups(p)]
        merged = []
        for i, (func, _) in enumerate(specs):
            values = [p[1][i][0] for p in live]
            if func in ("count", "sum"):
                merged.append(np.array([float(sum(values))]))
            elif func == "fsum":
                pair = ZERO_PAIR
                for value in values:  # fixed shard order (exact anyway)
                    pair = add_pairs(pair, value)
                cell = np.empty(1, dtype=object)
                cell[0] = pair
                merged.append(cell)
            elif func.startswith("min"):
                merged.append(np.array([min(values)]))
            else:
                merged.append(np.array([max(values)]))
        return (), tuple(merged), 1, matched

    cat_keys = [
        np.concatenate([p[0][j] for p in parts]) for j in range(n_keys)
    ]
    cat_prims = [
        np.concatenate([p[1][i] for p in parts]) for i in range(len(specs))
    ]
    code_columns = [
        np.unique(k, return_inverse=True)[1].astype(np.int64)
        for k in cat_keys
    ]
    stacked = np.stack(code_columns, axis=1)
    _, first_idx, gids = np.unique(
        stacked, axis=0, return_index=True, return_inverse=True
    )
    gids = gids.astype(np.int64)
    n_groups = len(first_idx)
    merged_keys = tuple(k[first_idx] for k in cat_keys)
    merged_prims = []
    for i, (func, _) in enumerate(specs):
        data = cat_prims[i]
        if func in ("count", "sum"):
            merged_prims.append(
                np.bincount(gids, weights=data, minlength=n_groups)
            )
        elif func == "fsum":
            merged_prims.append(merge_pair_arrays(data, gids, n_groups))
        else:
            order = np.argsort(gids, kind="stable")
            starts = np.searchsorted(gids[order], np.arange(n_groups))
            reducer = np.minimum if func.startswith("min") else np.maximum
            merged_prims.append(reducer.reduceat(data[order], starts))
    return merged_keys, tuple(merged_prims), n_groups, matched


def _aggregate_fragment(
    manager, node: Aggregate, database, observations
) -> Optional[Batch]:
    scan = _lower_scan(node.child, database)
    if scan is None or scan.table.row_count < manager.threshold_rows:
        return None
    columns = scan.column_names()
    key_columns: List[str] = []
    for key in node.group_keys:
        column = _column_of(key, scan.alias, columns)
        if column is None:
            return None
        key_columns.append(column)
    lowered = _plan_aggregates(node, scan)
    if lowered is None:
        return None
    prim_specs, plans = lowered

    # Workers never see dictionaries, so string MIN/MAX ships the
    # lexicographic rank per code along with the task.
    rank_arrays = {
        column: _rank_array(scan.table.column(column).dictionary)
        for func, column in prim_specs
        if func in ("min_rank", "max_rank")
    }
    parts = manager.run_ranged(
        scan.table,
        "group_aggregate",
        dict(
            preds=scan.preds,
            keys=tuple(key_columns),
            specs=prim_specs,
            cost_per_row=manager.cost_per_row,
            ranks=rank_arrays or None,
        ),
        "aggregate fragment",
        preds=scan.preds,
    )
    merged_keys, prims, n_groups, matched = merge_group_partials(
        parts, len(key_columns), prim_specs
    )

    computed: Dict[ast.Aggregate, ColumnVector] = {}
    if not key_columns and n_groups == 0:
        # Global aggregate over zero matching rows: one group with the
        # sequential empty-input semantics (no NULLs in this engine).
        n_groups = 1
        for agg, (kind, _, column) in plans.items():
            if kind == "count" or kind == "sum_int":
                computed[agg] = ColumnVector(
                    np.zeros(1, dtype=np.int64), DataType.INT
                )
            elif kind in ("avg_int", "sum_float", "avg_float"):
                computed[agg] = ColumnVector(
                    np.zeros(1, dtype=np.float64), DataType.FLOAT
                )
            else:
                col = scan.table.column(column)
                computed[agg] = ColumnVector(
                    np.zeros(1, dtype=col.data.dtype), col.dtype, col.dictionary
                )
    else:
        for agg, (kind, ref, column) in plans.items():
            if kind == "count":
                computed[agg] = ColumnVector(
                    prims[ref].astype(np.int64), DataType.INT
                )
            elif kind == "sum_int":
                computed[agg] = ColumnVector(
                    np.round(prims[ref]).astype(np.int64), DataType.INT
                )
            elif kind == "avg_int":
                sums, counts = prims[ref[0]], prims[ref[1]]
                averages = np.divide(
                    sums, counts, out=np.zeros_like(sums), where=counts > 0
                )
                computed[agg] = ColumnVector(averages, DataType.FLOAT)
            elif kind == "sum_float":
                computed[agg] = ColumnVector(
                    pairs_to_floats(prims[ref]), DataType.FLOAT
                )
            elif kind == "avg_float":
                sums = pairs_to_floats(prims[ref[0]])
                counts = prims[ref[1]]
                averages = np.divide(
                    sums, counts, out=np.zeros_like(sums), where=counts > 0
                )
                computed[agg] = ColumnVector(averages, DataType.FLOAT)
            elif kind in ("min_str", "max_str"):
                # Merged partials are lexicographic ranks; invert the
                # rank permutation to recover dictionary codes.
                col = scan.table.column(column)
                perm = col.dictionary.sort_permutation()
                codes = np.asarray(perm)[prims[ref].astype(np.int64)]
                computed[agg] = ColumnVector(
                    codes.astype(col.data.dtype), col.dtype, col.dictionary
                )
            else:
                col = scan.table.column(column)
                computed[agg] = ColumnVector(
                    prims[ref], col.dtype, col.dictionary
                )

    group_columns: Dict[Tuple[str, str], ColumnVector] = {}
    for key_ref, column, values in zip(
        node.group_keys, key_columns, merged_keys
    ):
        col = scan.table.column(column)
        group_columns[
            ((key_ref.qualifier or "").lower(), key_ref.name.lower())
        ] = ColumnVector(values, col.dtype, col.dictionary)
    group_batch = Batch(group_columns, n_groups)

    batch = finalize_aggregate(
        group_batch, computed, node.items, node.output_names, node.having
    )
    _observe(scan, matched, observations)
    manager.note_fragment("aggregate")
    return batch


# ----------------------------------------------------------------------
# Partitioned hash join
# ----------------------------------------------------------------------
def _join_fragment(
    manager, node: HashJoin, database, required, observations
) -> Optional[Batch]:
    probe = _lower_scan(node.probe, database)
    build = _lower_scan(node.build, database)
    if probe is None or build is None or not node.join_predicates:
        return None
    if (
        max(probe.table.row_count, build.table.row_count)
        < manager.threshold_rows
    ):
        return None
    keys: List[Tuple[str, str, Optional[np.ndarray]]] = []
    for predicate in node.join_predicates:
        try:
            probe_column = predicate.column_for(probe.alias)
            build_column = predicate.column_for(build.alias)
        except ReproError:
            return None
        probe_dict = probe.table.column(probe_column).dictionary
        build_dict = build.table.column(build_column).dictionary
        if (probe_dict is None) != (build_dict is None):
            return None  # sequential path owns the type error
        lookup = None
        if probe_dict is not None and probe_dict is not build_dict:
            lookup = code_lookup(probe_dict, build_dict)
        keys.append((probe_column, build_column, lookup))

    n_parts = max(1, manager.workers)
    cost = manager.cost_per_row
    hash_key = keys[0]
    probe_parts = manager.run_ranged(
        probe.table,
        "join_partition",
        dict(
            preds=probe.preds,
            key_column=hash_key[0],
            n_parts=n_parts,
            lookup=hash_key[2],
            cost_per_row=cost,
        ),
        "join fragment",
        preds=probe.preds,
    )
    build_parts = manager.run_ranged(
        build.table,
        "join_partition",
        dict(
            preds=build.preds,
            key_column=hash_key[1],
            n_parts=n_parts,
            lookup=None,
            cost_per_row=cost,
        ),
        "join fragment",
        preds=build.preds,
    )
    probe_matched = int(sum(p[1] for p in probe_parts))
    build_matched = int(sum(p[1] for p in build_parts))
    # Shards come back in row order, so per-partition concatenation keeps
    # each partition's rows globally ascending.
    probe_by_part = [
        np.concatenate([shard[0][p] for shard in probe_parts])
        for p in range(n_parts)
    ]
    build_by_part = [
        np.concatenate([shard[0][p] for shard in build_parts])
        for p in range(n_parts)
    ]
    kwargs_list = [
        dict(
            probe_table=probe.table.name.lower(),
            build_table=build.table.name.lower(),
            probe_rows=probe_by_part[p],
            build_rows=build_by_part[p],
            keys=tuple(keys),
            cost_per_row=cost,
        )
        for p in range(n_parts)
        if len(probe_by_part[p]) and len(build_by_part[p])
    ]
    if kwargs_list:
        pairs = manager.run_partitioned(
            [probe.table, build.table],
            "join_probe",
            kwargs_list,
            "join fragment",
        )
        l_rows = np.concatenate([pair[0] for pair in pairs])
        r_rows = np.concatenate([pair[1] for pair in pairs])
        # Restore the sequential pair order: ascending (probe, build).
        order = np.lexsort((r_rows, l_rows))
        l_rows, r_rows = l_rows[order], r_rows[order]
    else:
        l_rows = np.empty(0, dtype=np.int64)
        r_rows = np.empty(0, dtype=np.int64)

    probe_batch = batch_from_table(
        probe.table,
        probe.alias,
        l_rows,
        sorted(required.get(probe.alias, set())),
    )
    build_batch = batch_from_table(
        build.table,
        build.alias,
        r_rows,
        sorted(required.get(build.alias, set())),
    )
    _observe(probe, probe_matched, observations)
    _observe(build, build_matched, observations)
    manager.note_fragment("join")
    return Batch.merge(probe_batch, build_batch)


# ----------------------------------------------------------------------
# Shard-local sort / distinct with parent merge
# ----------------------------------------------------------------------
def _project_columns(project: Project, scan: _Scan) -> Optional[Dict[str, str]]:
    """Output-name → table-column map when every item is a plain column.

    Built with dict semantics (first position, last value per name) to
    mirror how the sequential Project materializes its batch."""
    columns = scan.column_names()
    out: Dict[str, str] = {}
    for item, name in zip(project.items, project.output_names):
        column = _column_of(item.expr, scan.alias, columns)
        if column is None:
            return None
        out[name.lower()] = column
    return out or None


def _project_batch(table, out_columns: Dict[str, str], rows) -> Batch:
    out: Dict[Tuple[str, str], ColumnVector] = {}
    for name, column_name in out_columns.items():
        column = table.column(column_name)
        out[("", name)] = ColumnVector(
            column.data[rows], column.dtype, column.dictionary
        )
    return Batch(out, len(rows))


def _rank_array(dictionary) -> np.ndarray:
    """Lexicographic rank per code (``ColumnVector.sort_ranks`` shape)."""
    perm = dictionary.sort_permutation()
    ranks = np.empty(len(perm), dtype=np.int64)
    ranks[perm] = np.arange(len(perm))
    return ranks


def merge_sorted_runs(key_arrays: List[np.ndarray]) -> np.ndarray:
    """Merge permutation over concatenated shard-sorted runs.

    Factorizes each key column and stable-argsorts one composite code —
    timsort's run detection makes this a k-way merge over the presorted
    runs. Falls back to a full lexsort when the composite would overflow
    int64. Either way ties keep appearance order, which (runs being in
    shard order) is exactly the sequential sort's tie order.
    """
    codes: List[np.ndarray] = []
    span = 1
    for key in key_arrays:
        inverse = np.unique(key, return_inverse=True)[1].astype(np.int64)
        reach = int(inverse.max()) + 1 if len(inverse) else 1
        if span > (1 << 62) // max(reach, 1):
            return np.lexsort(tuple(reversed(key_arrays)))
        span *= reach
        codes.append(inverse)
    composite = codes[0]
    for inverse in codes[1:]:
        reach = int(inverse.max()) + 1 if len(inverse) else 1
        composite = composite * reach + inverse
    return np.argsort(composite, kind="stable")


def _sort_fragment(
    manager, node: Sort, database, observations
) -> Optional[Batch]:
    project = node.child
    if not isinstance(project, Project):
        return None
    scan = _lower_scan(project.child, database)
    if scan is None or scan.table.row_count < manager.threshold_rows:
        return None
    out_columns = _project_columns(project, scan)
    if out_columns is None:
        return None
    sort_keys: List[Tuple[str, bool, Optional[np.ndarray]]] = []
    for order in node.order_by:
        # Order keys were rewritten to unqualified output references.
        if not isinstance(order.expr, ast.ColumnRef) or order.expr.qualifier:
            return None
        name = order.expr.name.lower()
        if name not in out_columns:
            return None
        column_name = out_columns[name]
        column = scan.table.column(column_name)
        ranks = (
            _rank_array(column.dictionary)
            if column.dictionary is not None
            else None
        )
        sort_keys.append((column_name, bool(order.descending), ranks))
    if not sort_keys:
        return None

    runs = manager.run_ranged(
        scan.table,
        "sort",
        dict(
            preds=scan.preds,
            keys=tuple(sort_keys),
            cost_per_row=manager.cost_per_row,
        ),
        "sort fragment",
        preds=scan.preds,
    )
    rows = np.concatenate([run[0] for run in runs])
    matched = int(sum(run[2] for run in runs))
    if len(runs) > 1 and len(rows) > 1:
        key_arrays = [
            np.concatenate([run[1][j] for run in runs])
            for j in range(len(sort_keys))
        ]
        rows = rows[merge_sorted_runs(key_arrays)]
    batch = _project_batch(scan.table, out_columns, rows)
    project.actual_rows = matched
    _observe(scan, matched, observations)
    manager.note_fragment("sort")
    return batch


def _distinct_fragment(
    manager, node: Distinct, database, observations
) -> Optional[Batch]:
    project = node.child
    if not isinstance(project, Project):
        return None
    scan = _lower_scan(project.child, database)
    if scan is None or scan.table.row_count < manager.threshold_rows:
        return None
    out_columns = _project_columns(project, scan)
    if out_columns is None:
        return None
    kernel_columns = tuple(out_columns.values())

    runs = manager.run_ranged(
        scan.table,
        "distinct",
        dict(
            preds=scan.preds,
            columns=kernel_columns,
            cost_per_row=manager.cost_per_row,
        ),
        "distinct fragment",
        preds=scan.preds,
    )
    matched = int(sum(run[2] for run in runs))
    rows = np.concatenate([run[0] for run in runs])
    if len(runs) > 1 and len(rows):
        values = [
            np.concatenate([run[1][j] for run in runs])
            for j in range(len(kernel_columns))
        ]
        code_columns = [
            np.unique(v, return_inverse=True)[1].astype(np.int64)
            for v in values
        ]
        stacked = np.stack(code_columns, axis=1)
        _, first_idx = np.unique(stacked, axis=0, return_index=True)
        # Shard-local firsts are globally ordered, so the earliest
        # surviving position is the true global first occurrence.
        rows = rows[np.sort(first_idx)]
    batch = _project_batch(scan.table, out_columns, rows)
    project.actual_rows = matched
    _observe(scan, matched, observations)
    manager.note_fragment("distinct")
    return batch
