"""Mid-query adaptive re-optimization state.

The paper's bet — exact, just-in-time statistics beat stale catalog
guesses — applies even more strongly *inside* a running query: at a
pipeline breaker the intermediate's cardinality is not sampled, it is
known exactly. This module holds the machinery the executor and engine
share to close that loop within one statement (in the spirit of
*Sampling-Based Query Re-Optimization*, arXiv 1601.05748, and
*Revisiting Runtime Dynamic Optimization for Join Queries*,
arXiv 2010.00728):

* :class:`CheckpointHit` — the control-flow signal a checkpoint raises
  when observed cardinality diverges from the estimate past the
  configured threshold. It carries the materialized batch out of the
  executor so no work is repeated.
* :class:`MaterializedIntermediate` — an ephemeral "base table" wrapping
  a checkpoint batch with *exact* per-column statistics (cardinality,
  min/max/ndv via the shared ``column_stats_raw`` kernel).
* :class:`ReoptState` — per-statement controller: decides at each
  checkpoint whether to trigger (or records why it was skipped), owns the
  registered intermediates, accumulates scan observations across plan
  segments so feedback entries are emitted exactly once.
* :class:`ReoptTelemetry` — engine-level thread-safe counters surfaced
  through ``stats_snapshot()`` / the server stats frame / the CLI.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..catalog.runstats import column_stats_raw
from .executor import ScanObservation
from .vector import Batch


@dataclass
class ColumnSummary:
    """Exact statistics for one column of a materialized intermediate."""

    n_distinct: float
    min_value: float
    max_value: float


class MaterializedIntermediate:
    """A checkpoint batch registered as an ephemeral base table.

    Column statistics are exact (the data is fully materialized) and
    computed lazily per column — re-optimization usually only needs the
    ndv of the surviving join columns.
    """

    def __init__(
        self,
        intermediate_id: int,
        covered_aliases: Tuple[str, ...],
        batch: Batch,
        reopt_round: int,
    ):
        self.intermediate_id = intermediate_id
        self.covered_aliases = tuple(covered_aliases)
        self.batch = batch
        self.reopt_round = reopt_round
        self._column_stats: Dict[Tuple[str, str], ColumnSummary] = {}

    @property
    def rows(self) -> int:
        return len(self.batch)

    def covers(self, alias: str) -> bool:
        return alias in self.covered_aliases

    def column_summary(self, alias: str, column: str) -> Optional[ColumnSummary]:
        """Exact ndv/min/max of one materialized column (None if absent)."""
        key = (alias.lower(), column.lower())
        cached = self._column_stats.get(key)
        if cached is not None:
            return cached
        if not self.batch.has_column(key[0], key[1]):
            return None
        vector = self.batch.column(key[0], key[1])
        raw = column_stats_raw(
            vector.values.astype(np.float64),
            integral=vector.dictionary is not None,
            scale=1.0,
            n_buckets=1,
            n_frequent=0,
        )
        summary = ColumnSummary(
            n_distinct=raw["n_distinct"],
            min_value=raw["min_value"],
            max_value=raw["max_value"],
        )
        self._column_stats[key] = summary
        return summary


class CheckpointHit(Exception):
    """Raised inside the executor when a checkpoint triggers re-planning.

    Unwinds the in-flight plan back to the engine's execute loop carrying
    the materialized batch (work already done), the aliases it covers and
    the observations gathered so far by this plan segment.
    """

    def __init__(
        self,
        kind: str,
        node_label: str,
        batch: Batch,
        covered_aliases: Tuple[str, ...],
        observations: Dict[str, ScanObservation],
        est_rows: float,
        actual_rows: int,
    ):
        super().__init__(
            f"reopt checkpoint at {kind}: est={est_rows:.1f} "
            f"actual={actual_rows}"
        )
        self.kind = kind
        self.node_label = node_label
        self.batch = batch
        self.covered_aliases = tuple(covered_aliases)
        self.observations = dict(observations)
        self.est_rows = est_rows
        self.actual_rows = actual_rows


@dataclass
class ReoptEvent:
    """One mid-query plan switch (observable per query)."""

    round: int
    kind: str  # checkpoint kind that fired
    operator: str  # plan-node label at the checkpoint
    est_rows: float
    actual_rows: int
    ratio: float  # max(actual/est, est/actual)
    switch_seconds: float = 0.0  # re-planning wall-clock
    covered_aliases: Tuple[str, ...] = ()


@dataclass
class ReoptSkip:
    """A checkpoint that was evaluated but did not trigger, and why."""

    kind: str
    operator: str
    reason: str  # "below-threshold" | "round-cap" | "non-splicable"
    est_rows: float = 0.0
    actual_rows: int = 0


# Skip reasons (shared with telemetry keys).
BELOW_THRESHOLD = "below-threshold"
ROUND_CAP = "round-cap"
NON_SPLICABLE = "non-splicable"


class ReoptState:
    """Per-statement adaptive re-optimization controller."""

    def __init__(self, mode: str, threshold: float, max_rounds: int):
        self.mode = mode
        self.threshold = threshold
        self.max_rounds = max_rounds
        self.rounds_used = 0
        self.intermediates: Dict[int, MaterializedIntermediate] = {}
        self.events: List[ReoptEvent] = []
        self.skips: List[ReoptSkip] = []
        # Scan observations merged across plan segments, keyed by alias:
        # each quantifier contributes feedback exactly once even when a
        # plan switch re-executes part of the tree.
        self.observations: Dict[str, ScanObservation] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Checkpoint decision
    # ------------------------------------------------------------------
    def error_ratio(self, est_rows: float, actual_rows: int) -> float:
        est = max(float(est_rows), 1.0)
        actual = max(float(actual_rows), 1.0)
        under = actual / est  # underestimate: more rows than planned
        if self.mode == "eager":
            return max(under, est / actual)
        # Conservative mode only reacts to underestimates — the direction
        # that turns per-probe joins into disasters. Overestimates merely
        # leave a too-defensive plan in place.
        return under

    def consider(
        self,
        kind: str,
        node,
        batch: Batch,
        covered_aliases: Tuple[str, ...],
        n_quantifiers: int,
        observations: Dict[str, ScanObservation],
        est_rows: Optional[float] = None,
    ) -> None:
        """Evaluate a checkpoint; raises :class:`CheckpointHit` on trigger.

        Records a :class:`ReoptSkip` (with reason) when it does not.
        """
        est = float(node.est_rows if est_rows is None else est_rows)
        actual = len(batch)
        ratio = self.error_ratio(est, actual)
        if ratio < self.threshold:
            self.skips.append(
                ReoptSkip(kind, node.label(), BELOW_THRESHOLD, est, actual)
            )
            return
        if len(set(covered_aliases)) >= n_quantifiers:
            # The checkpoint already covers the whole join graph — there
            # is nothing left to re-plan around it.
            self.skips.append(
                ReoptSkip(kind, node.label(), NON_SPLICABLE, est, actual)
            )
            return
        if self.rounds_used >= self.max_rounds:
            self.skips.append(
                ReoptSkip(kind, node.label(), ROUND_CAP, est, actual)
            )
            return
        raise CheckpointHit(
            kind=kind,
            node_label=node.label(),
            batch=batch,
            covered_aliases=covered_aliases,
            observations=observations,
            est_rows=est,
            actual_rows=actual,
        )

    # ------------------------------------------------------------------
    # Intermediate registry
    # ------------------------------------------------------------------
    def register(self, hit: CheckpointHit) -> MaterializedIntermediate:
        """Absorb a checkpoint: store its batch and observations."""
        self.rounds_used += 1
        self.observations.update(hit.observations)
        intermediate = MaterializedIntermediate(
            intermediate_id=self._next_id,
            covered_aliases=hit.covered_aliases,
            batch=hit.batch,
            reopt_round=self.rounds_used,
        )
        self._next_id += 1
        covered = set(intermediate.covered_aliases)
        # A new intermediate supersedes earlier ones it subsumes (round 2
        # checkpoints sit above round 1's splice point).
        for key in [
            k
            for k, v in self.intermediates.items()
            if set(v.covered_aliases) <= covered
        ]:
            del self.intermediates[key]
        self.intermediates[intermediate.intermediate_id] = intermediate
        return intermediate

    def live_intermediates(self) -> List[MaterializedIntermediate]:
        return sorted(
            self.intermediates.values(), key=lambda m: m.intermediate_id
        )

    def record_event(self, event: ReoptEvent) -> None:
        self.events.append(event)

    def merged_observations(
        self, final: Dict[str, ScanObservation]
    ) -> Dict[str, ScanObservation]:
        """Observations across all plan segments, one entry per alias."""
        merged = dict(self.observations)
        merged.update(final)
        return merged


class ReoptTelemetry:
    """Engine-wide reopt counters (thread-safe, surfaced in snapshots)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events = 0
        self.queries_reoptimized = 0
        self.checkpoints_evaluated = 0
        self.triggers_by_kind: Dict[str, int] = {}
        self.skips_by_reason: Dict[str, int] = {}
        self.switch_seconds_total = 0.0
        self.max_ratio = 0.0
        self.ratio_sum = 0.0

    def record_statement(self, state: ReoptState) -> None:
        with self._lock:
            self.checkpoints_evaluated += len(state.skips) + len(state.events)
            for skip in state.skips:
                self.skips_by_reason[skip.reason] = (
                    self.skips_by_reason.get(skip.reason, 0) + 1
                )
            if state.events:
                self.queries_reoptimized += 1
            for event in state.events:
                self.events += 1
                self.triggers_by_kind[event.kind] = (
                    self.triggers_by_kind.get(event.kind, 0) + 1
                )
                self.switch_seconds_total += event.switch_seconds
                self.ratio_sum += event.ratio
                self.max_ratio = max(self.max_ratio, event.ratio)

    def snapshot(self) -> dict:
        with self._lock:
            mean_ratio = self.ratio_sum / self.events if self.events else 0.0
            return {
                "events": self.events,
                "queries_reoptimized": self.queries_reoptimized,
                "checkpoints_evaluated": self.checkpoints_evaluated,
                "triggers_by_kind": dict(self.triggers_by_kind),
                "skips_by_reason": dict(self.skips_by_reason),
                "switch_ms_total": round(self.switch_seconds_total * 1e3, 3),
                "est_actual_ratio_mean": round(mean_ratio, 2),
                "est_actual_ratio_max": round(self.max_ratio, 2),
            }
