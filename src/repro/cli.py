"""Command-line interface: a small SQL shell over the car database.

Usage::

    python -m repro                       # interactive shell, JITS on
    python -m repro --no-jits             # traditional optimizer
    python -m repro --scale 0.01          # bigger data
    python -m repro -e "SELECT COUNT(*) FROM car"   # one-shot
    python -m repro --explain -e "SELECT ..."       # plan only

Shell commands: ``\\q`` quit, ``\\explain <sql>`` plan without executing,
``\\stats`` JITS state summary, ``\\tables`` table sizes, ``\\help``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import Engine, EngineConfig, ReproError
from .workload import build_car_database

PROMPT = "repro> "


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JITS reproduction SQL shell (car-insurance database)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.002,
        help="fraction of the paper's Table 2 row counts (default 0.002)",
    )
    parser.add_argument("--seed", type=int, default=0, help="data seed")
    parser.add_argument(
        "--no-jits", action="store_true", help="disable JITS (traditional)"
    )
    parser.add_argument(
        "--smax", type=float, default=0.5,
        help="sensitivity threshold s_max (default 0.5)",
    )
    parser.add_argument(
        "--fastpath", action="store_true",
        help="enable the full compilation fast path (adds the plan cache)",
    )
    parser.add_argument(
        "--no-caches", action="store_true",
        help="disable the sample/mask caches and deferred calibration",
    )
    parser.add_argument(
        "-e", "--execute", metavar="SQL", action="append",
        help="execute one statement and exit (repeatable)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="with -e: print the plan instead of executing",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run multiple -e statements across N concurrent client "
        "sessions (results print in statement order)",
    )
    return parser


def make_engine(args: argparse.Namespace) -> Engine:
    db, _ = build_car_database(scale=args.scale, seed=args.seed)
    if args.no_jits:
        config = EngineConfig.traditional()
    else:
        config = EngineConfig.with_jits(
            s_max=args.smax,
            plan_cache_enabled=getattr(args, "fastpath", False),
        )
        if getattr(args, "no_caches", False):
            config.jits.sample_cache_enabled = False
            config.jits.mask_cache_enabled = False
            config.jits.deferred_calibration = False
    return Engine(db, config)


def format_rows(columns: List[str], rows, limit: int = 25) -> str:
    if not rows:
        return "(no rows)"
    shown = rows[:limit]
    text = [[_cell(v) for v in row] for row in shown]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in text))
        for i in range(len(columns))
    ]
    lines = [
        " | ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines += [" | ".join(v.ljust(w) for v, w in zip(r, widths)) for r in text]
    if len(rows) > limit:
        lines.append(f"... ({len(rows) - limit} more rows)")
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def run_statement(
    engine: Engine, sql: str, explain: bool, out, result=None
) -> None:
    try:
        if explain:
            out.write(engine.explain(sql) + "\n")
            return
        if result is None:
            result = engine.execute(sql)
        if result.statement_type == "select":
            out.write(format_rows(result.columns, result.rows) + "\n")
            out.write(
                f"{result.row_count} row(s); compile "
                f"{result.compile_time * 1000:.2f} ms, execute "
                f"{result.execution_time * 1000:.2f} ms\n"
            )
            report = result.jits_report
            if report is not None and report.plan_cache_hit:
                out.write("[plan cache] hit — compilation skipped\n")
            if report is not None and report.tables_collected:
                out.write(
                    f"[jits] sampled {', '.join(report.tables_collected)}; "
                    f"{report.collection.groups_computed} group(s), "
                    f"{report.collection.groups_materialized} materialized\n"
                )
        else:
            out.write(
                f"{result.statement_type}: {result.affected_rows} row(s)\n"
            )
    except ReproError as exc:
        out.write(f"error: {exc}\n")


def print_stats(engine: Engine, out) -> None:
    jits = engine.jits
    out.write(
        f"jits enabled={jits.config.enabled} s_max={jits.config.s_max}\n"
        f"collections={jits.total_collections} "
        f"archive={len(jits.archive)} histogram(s), "
        f"{jits.archive.total_cells} cell(s)\n"
        f"history={len(jits.history)} entry(ies), "
        f"residual stats={len(jits.residual_store)}\n"
        f"migrations={jits.total_migrations}\n"
    )
    if jits.sample_cache is not None:
        sc = jits.sample_cache
        out.write(
            f"sample cache: {sc.hits} hit(s), {sc.misses} miss(es), "
            f"{sc.invalidations} invalidation(s)\n"
        )
    if jits.mask_cache is not None:
        mc = jits.mask_cache
        out.write(
            f"mask cache: {mc.hits} hit(s), {mc.misses} miss(es), "
            f"{len(mc)} entry(ies)\n"
        )
    out.write(
        f"deferred recalibrations={jits.archive.deferred_recalibrations}\n"
    )
    if engine.plan_cache is not None:
        pc = engine.plan_cache
        out.write(
            f"plan cache: {pc.hits} hit(s), {pc.misses} miss(es), "
            f"{pc.invalidations} invalidation(s), {len(pc)} plan(s)\n"
        )


def print_tables(engine: Engine, out) -> None:
    for table in engine.database.tables():
        columns = ", ".join(
            f"{c.name}:{c.dtype.value}" for c in table.schema.columns
        )
        out.write(f"{table.name} ({table.row_count} rows): {columns}\n")


def repl(engine: Engine, stdin, out) -> None:
    out.write(
        "repro SQL shell — \\help for commands, \\q to quit.\n"
    )
    buffer: List[str] = []
    while True:
        out.write(PROMPT if not buffer else "  ...> ")
        out.flush()
        line = stdin.readline()
        if not line:
            break
        line = line.strip()
        if not buffer and line.startswith("\\"):
            command, _, rest = line.partition(" ")
            if command in ("\\q", "\\quit"):
                break
            if command == "\\help":
                out.write(
                    "\\q quit | \\explain <sql> | \\stats | \\tables | "
                    "end statements with ';'\n"
                )
            elif command == "\\stats":
                print_stats(engine, out)
            elif command == "\\tables":
                print_tables(engine, out)
            elif command == "\\explain":
                run_statement(engine, rest.rstrip(";"), explain=True, out=out)
            else:
                out.write(f"unknown command {command}\n")
            continue
        if line:
            buffer.append(line)
        if line.endswith(";"):
            sql = " ".join(buffer).rstrip(";")
            buffer = []
            if sql.strip():
                run_statement(engine, sql, explain=False, out=out)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout
    out.write(f"building car database (scale={args.scale}) ...\n")
    try:
        engine = make_engine(args)
    except ReproError as exc:
        out.write(f"error: {exc}\n")
        return 1
    sizes = ", ".join(
        f"{t.name}={t.row_count}" for t in engine.database.tables()
    )
    out.write(f"ready: {sizes}\n")
    if args.execute:
        if args.workers > 1 and not args.explain and len(args.execute) > 1:
            try:
                results = engine.execute_many(
                    args.execute, workers=args.workers
                )
            except ReproError as exc:
                out.write(f"error: {exc}\n")
                return 1
            for sql, result in zip(args.execute, results):
                run_statement(
                    engine, sql, explain=False, out=out, result=result
                )
        else:
            for sql in args.execute:
                run_statement(engine, sql, explain=args.explain, out=out)
        return 0
    repl(engine, sys.stdin, out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
