"""Command-line interface: a small SQL shell over the car database.

Usage::

    python -m repro                       # interactive shell, JITS on
    python -m repro --no-jits             # traditional optimizer
    python -m repro --scale 0.01          # bigger data
    python -m repro -e "SELECT COUNT(*) FROM car"   # one-shot
    python -m repro --explain -e "SELECT ..."       # plan only
    python -m repro serve --port 7433     # network server
    python -m repro connect --port 7433   # shell against a server

Shell commands: ``\\q`` quit, ``\\explain <sql>`` plan without executing,
``\\stats`` JITS state summary, ``\\tables`` table sizes,
``\\fingerprints [sort [limit]]`` top statement fingerprints (needs
``--observe`` or ``--auto-index``), ``\\help``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from . import Engine, EngineConfig, ReproError, SqlSyntaxError
from .workload import build_car_database

PROMPT = "repro> "


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JITS reproduction SQL shell (car-insurance database)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.002,
        help="fraction of the paper's Table 2 row counts (default 0.002)",
    )
    parser.add_argument("--seed", type=int, default=0, help="data seed")
    parser.add_argument(
        "--no-jits", action="store_true", help="disable JITS (traditional)"
    )
    parser.add_argument(
        "--smax", type=float, default=0.5,
        help="sensitivity threshold s_max (default 0.5)",
    )
    parser.add_argument(
        "--fastpath", action="store_true",
        help="enable the full compilation fast path (adds the plan cache)",
    )
    parser.add_argument(
        "--no-caches", action="store_true",
        help="disable the sample/mask caches and deferred calibration",
    )
    parser.add_argument(
        "-e", "--execute", metavar="SQL", action="append",
        help="execute one statement and exit (repeatable)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="with -e: print the plan instead of executing",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run multiple -e statements across N concurrent client "
        "sessions (results print in statement order)",
    )
    parser.add_argument(
        "--scan-workers", type=int, default=0, metavar="N",
        help="process-parallel scan worker pool size (0 disables; scans "
        "shard across N forkserver workers over shared-memory columns)",
    )
    parser.add_argument(
        "--parallel-threshold", type=int, default=None, metavar="ROWS",
        help="minimum scanned row count before scans go parallel "
        "(default 32768)",
    )
    _add_reopt_arguments(parser)
    _add_observe_arguments(parser)
    _add_mvcc_arguments(parser)
    return parser


def _add_mvcc_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-mvcc", action="store_true",
        help="disable MVCC snapshot reads (SELECTs take blocking per-table "
        "read locks and AS OF time travel is unavailable)",
    )
    parser.add_argument(
        "--snapshot-chunk-rows", type=int, default=None, metavar="ROWS",
        help="copy-on-write snapshot chunk size in rows (default 65536)",
    )
    parser.add_argument(
        "--snapshot-retention", type=int, default=None, metavar="N",
        help="snapshot generations retained per table for AS OF "
        "time travel (default 8)",
    )


def _add_observe_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--observe", action="store_true",
        help="enable the observation plane: statement fingerprints, "
        "zone-map scan skipping, and workload heat tracking",
    )
    parser.add_argument(
        "--auto-index", choices=("off", "advise", "auto"), default="off",
        help="JIT index advisor: advise only records recommendations, "
        "auto creates/drops indexes under budget (implies --observe)",
    )
    parser.add_argument(
        "--auto-index-budget", type=int, default=None, metavar="N",
        help="max live advisor-created indexes (default 3)",
    )
    parser.add_argument(
        "--zone-map-rows", type=int, default=None, metavar="ROWS",
        help="rows per zone-map zone (default 4096)",
    )


def _add_reopt_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--reopt", choices=("off", "conservative", "eager"), default="off",
        help="mid-query re-optimization at pipeline breakers: conservative "
        "reacts to underestimates at join breakers, eager also checks "
        "aggregate/sort inputs and overestimates (default off)",
    )
    parser.add_argument(
        "--reopt-threshold", type=float, default=None, metavar="RATIO",
        help="estimated/actual cardinality error ratio that triggers a "
        "plan switch (default 8.0)",
    )
    parser.add_argument(
        "--reopt-max-rounds", type=int, default=None, metavar="N",
        help="plan switches allowed per statement (default 2)",
    )


def make_engine(args: argparse.Namespace) -> Engine:
    db, _ = build_car_database(scale=args.scale, seed=args.seed)
    return Engine(db, make_config(args))


def make_config(args: argparse.Namespace) -> EngineConfig:
    if args.no_jits:
        config = EngineConfig.traditional()
    else:
        config = EngineConfig.with_jits(
            s_max=args.smax,
            plan_cache_enabled=getattr(args, "fastpath", False),
        )
        if getattr(args, "no_caches", False):
            config.jits.sample_cache_enabled = False
            config.jits.mask_cache_enabled = False
            config.jits.deferred_calibration = False
    config.scan_workers = max(0, getattr(args, "scan_workers", 0) or 0)
    threshold = getattr(args, "parallel_threshold", None)
    if threshold is not None:
        config.parallel_threshold_rows = threshold
    config.reopt = getattr(args, "reopt", "off") or "off"
    reopt_threshold = getattr(args, "reopt_threshold", None)
    if reopt_threshold is not None:
        config.reopt_threshold = reopt_threshold
    reopt_rounds = getattr(args, "reopt_max_rounds", None)
    if reopt_rounds is not None:
        config.reopt_max_rounds = reopt_rounds
    config.observe = bool(getattr(args, "observe", False))
    config.auto_index = getattr(args, "auto_index", "off") or "off"
    budget = getattr(args, "auto_index_budget", None)
    if budget is not None:
        config.auto_index_budget = budget
    zone_rows = getattr(args, "zone_map_rows", None)
    if zone_rows is not None:
        config.zone_map_rows = zone_rows
    config.mvcc = not getattr(args, "no_mvcc", False)
    snap_chunk = getattr(args, "snapshot_chunk_rows", None)
    if snap_chunk is not None:
        config.chunk_rows = snap_chunk
    retention = getattr(args, "snapshot_retention", None)
    if retention is not None:
        config.snapshot_retention = retention
    return config


def format_rows(columns: List[str], rows, limit: int = 25) -> str:
    if not rows:
        return "(no rows)"
    shown = rows[:limit]
    text = [[_cell(v) for v in row] for row in shown]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in text))
        for i in range(len(columns))
    ]
    lines = [
        " | ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines += [" | ".join(v.ljust(w) for v, w in zip(r, widths)) for r in text]
    if len(rows) > limit:
        lines.append(f"... ({len(rows) - limit} more rows)")
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_error_caret(sql: str, exc: SqlSyntaxError) -> str:
    """A caret line pointing at the offending token, or ''."""
    position = getattr(exc, "position", -1)
    if not isinstance(position, int) or not 0 <= position <= len(sql):
        return ""
    return f"  {sql}\n  {' ' * position}^\n"


def run_statement(
    engine, sql: str, explain: bool, out, result=None
) -> None:
    """Run one statement against an Engine or a network Client."""
    try:
        if explain:
            out.write(engine.explain(sql) + "\n")
            return
        if result is None:
            result = engine.execute(sql)
        if result.statement_type == "select":
            out.write(format_rows(result.columns, result.rows) + "\n")
            out.write(
                f"{result.row_count} row(s); compile "
                f"{result.compile_time * 1000:.2f} ms, execute "
                f"{result.execution_time * 1000:.2f} ms\n"
            )
            report = result.jits_report
            if report is not None and report.plan_cache_hit:
                out.write("[plan cache] hit — compilation skipped\n")
            if report is not None and report.tables_collected:
                out.write(
                    f"[jits] sampled {', '.join(report.tables_collected)}; "
                    f"{report.collection.groups_computed} group(s), "
                    f"{report.collection.groups_materialized} materialized\n"
                )
            for event in getattr(result, "reopt_events", ()):
                out.write(
                    f"[reopt] round {event.round}: {event.kind} at "
                    f"{event.operator} — est {event.est_rows:.0f} vs actual "
                    f"{event.actual_rows} (x{event.ratio:.1f}), switched in "
                    f"{event.switch_seconds * 1000:.2f} ms\n"
                )
        else:
            out.write(
                f"{result.statement_type}: {result.affected_rows} row(s)\n"
            )
    except SqlSyntaxError as exc:
        out.write(f"error: {exc}\n")
        out.write(format_error_caret(sql, exc))
    except ReproError as exc:
        out.write(f"error: {exc}\n")


def print_stats(engine: Engine, out) -> None:
    jits = engine.jits
    out.write(
        f"jits enabled={jits.config.enabled} s_max={jits.config.s_max}\n"
        f"collections={jits.total_collections} "
        f"archive={len(jits.archive)} histogram(s), "
        f"{jits.archive.total_cells} cell(s)\n"
        f"history={len(jits.history)} entry(ies), "
        f"residual stats={len(jits.residual_store)}\n"
        f"migrations={jits.total_migrations}\n"
    )
    if jits.sample_cache is not None:
        sc = jits.sample_cache
        out.write(
            f"sample cache: {sc.hits} hit(s), {sc.misses} miss(es), "
            f"{sc.invalidations} invalidation(s)\n"
        )
    if jits.mask_cache is not None:
        mc = jits.mask_cache
        out.write(
            f"mask cache: {mc.hits} hit(s), {mc.misses} miss(es), "
            f"{len(mc)} entry(ies)\n"
        )
    out.write(
        f"deferred recalibrations={jits.archive.deferred_recalibrations}\n"
    )
    if engine.plan_cache is not None:
        pc = engine.plan_cache
        out.write(
            f"plan cache: {pc.hits} hit(s), {pc.misses} miss(es), "
            f"{pc.invalidations} invalidation(s), {len(pc)} plan(s)\n"
        )
    if engine.parallel is not None:
        par = engine.parallel.stats()
        out.write(
            f"parallel scans [{par['process_path']}]: "
            f"{par['parallel_calls']} pooled, {par['inline_calls']} inline, "
            f"{par['fallbacks']} fallback(s), "
            f"{par['tables_exported']} table export(s), "
            f"{par['worker_respawns']} respawn(s)\n"
        )
        fragments = ", ".join(
            f"{kind}={count}" for kind, count in par["fragments"].items()
        )
        latency = par["shard_latency"]
        out.write(
            f"plan fragments: {fragments or 'none'}; "
            f"shard latency p50/p95 "
            f"{latency['p50_ms']}/{latency['p95_ms']} ms "
            f"over {latency['samples']} shard(s), "
            f"{par['rebalances']} rebalance(s)\n"
        )
    if engine.reopt_telemetry is not None:
        reopt = engine.reopt_telemetry.snapshot()
        triggers = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(reopt["triggers_by_kind"].items())
        )
        skips = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(reopt["skips_by_reason"].items())
        )
        out.write(
            f"reopt [{engine.config.reopt}]: {reopt['events']} switch(es) in "
            f"{reopt['queries_reoptimized']} query(ies), "
            f"{reopt['checkpoints_evaluated']} checkpoint(s); "
            f"triggers: {triggers or 'none'}; skips: {skips or 'none'}; "
            f"switch time {reopt['switch_ms_total']} ms, "
            f"est/actual ratio mean/max "
            f"{reopt['est_actual_ratio_mean']}/{reopt['est_actual_ratio_max']}\n"
        )
    if engine.observe is not None:
        obs = engine.observe.snapshot()
        fp = obs["fingerprints"]
        zm = obs["zone_maps"]
        out.write(
            f"fingerprints: {fp['fingerprints']} tracked "
            f"({fp['recorded']} recorded, {fp['evicted']} evicted, "
            f"capacity {fp['capacity']})\n"
            f"zone maps: {zm['tables']} table(s), "
            f"{zm['scans_pruned']}/{zm['scans_considered']} scan(s) pruned, "
            f"{zm['zones_skipped']}/{zm['zones_considered']} zone(s) "
            f"skipped, {zm['rows_skipped']} row(s) skipped\n"
        )
        adv = obs["advisor"]
        if adv["mode"] != "off":
            out.write(
                f"index advisor [{adv['mode']}]: {adv['ticks']} tick(s), "
                f"{adv['created']} created, {adv['dropped']} dropped, "
                f"{adv['advised']} advised, "
                f"{adv['live_auto_indexes']} live auto index(es)\n"
            )


def print_tables(engine: Engine, out) -> None:
    for table in engine.database.tables():
        columns = ", ".join(
            f"{c.name}:{c.dtype.value}" for c in table.schema.columns
        )
        out.write(f"{table.name} ({table.row_count} rows): {columns}\n")


def print_stats_dict(stats: dict, out, indent: str = "") -> None:
    """Render a (possibly nested) stats snapshot, one counter per line.

    Nested dicts become indented sections; lists of dicts (fingerprint
    rows, advisor audit entries) print one numbered sub-section per
    element instead of a raw JSON blob.
    """
    for key, value in stats.items():
        if isinstance(value, dict):
            out.write(f"{indent}{key}:\n")
            print_stats_dict(value, out, indent + "  ")
        elif isinstance(value, list) and any(
            isinstance(item, dict) for item in value
        ):
            out.write(f"{indent}{key}: ({len(value)} entries)\n")
            for position, item in enumerate(value):
                if isinstance(item, dict):
                    out.write(f"{indent}  [{position}]\n")
                    print_stats_dict(item, out, indent + "    ")
                else:
                    out.write(f"{indent}  [{position}] {item}\n")
        else:
            out.write(f"{indent}{key}={value}\n")


def print_fingerprints(snapshot: dict, out) -> None:
    """Render a fingerprint snapshot as an aligned table."""
    if not snapshot.get("enabled", False):
        out.write(
            "observation plane disabled (start with --observe or "
            "--auto-index)\n"
        )
        return
    rows = snapshot.get("fingerprints", [])
    if not rows:
        out.write("no fingerprints recorded yet\n")
        return
    columns = [
        "key", "type", "executions", "total_ms", "p50_ms", "p95_ms",
        "rows_out", "staleness", "statement",
    ]
    table = [
        tuple(str(row.get(column, "")) for column in columns)
        for row in rows
    ]
    out.write(format_rows(columns, table, limit=len(table)) + "\n")
    summary = snapshot.get("summary", {})
    if summary:
        out.write(
            f"{summary.get('fingerprints', len(rows))} fingerprint(s) "
            f"tracked, {summary.get('recorded', '?')} statement(s) "
            f"recorded, {summary.get('evicted', 0)} evicted\n"
        )


def run_network_statement(
    client, sql: str, explain: bool, out, busy_retries: int = 0
) -> None:
    """Run one statement over the wire, painting streamed batches as they
    arrive — the first chunk prints before the server finishes the
    result. Ctrl-C while a statement runs cancels it server-side and
    marks the output ``[cancelled]`` instead of killing the shell."""
    import time as time_module

    if explain:
        try:
            out.write(client.explain(sql, busy_retries=busy_retries) + "\n")
        except SqlSyntaxError as exc:
            out.write(f"error: {exc}\n")
            out.write(format_error_caret(sql, exc))
        except ReproError as exc:
            out.write(f"error: {exc}\n")
        return

    limit = 25
    state = {"widths": None, "shown": 0}

    def paint(columns: List[str], rows) -> None:
        if state["widths"] is None:
            text = [[_cell(v) for v in row] for row in rows[:limit]]
            state["widths"] = [
                max(len(columns[i]), *(len(r[i]) for r in text))
                if text
                else len(columns[i])
                for i in range(len(columns))
            ]
            widths = state["widths"]
            out.write(
                " | ".join(c.ljust(w) for c, w in zip(columns, widths))
                + "\n"
            )
            out.write("-+-".join("-" * w for w in widths) + "\n")
        budget = limit - state["shown"]
        if budget > 0:
            widths = state["widths"]
            for row in rows[:budget]:
                out.write(
                    " | ".join(
                        _cell(v).ljust(w) for v, w in zip(row, widths)
                    )
                    + "\n"
                )
        state["shown"] += len(rows)
        out.flush()

    started = time_module.perf_counter()
    try:
        result = client.execute_streaming(
            sql, paint, busy_retries=busy_retries
        )
    except KeyboardInterrupt:
        try:
            client.cancel(client.last_request_id)
        except ReproError:
            pass
        out.write("\n[cancelled]\n")
        return
    except SqlSyntaxError as exc:
        out.write(f"error: {exc}\n")
        out.write(format_error_caret(sql, exc))
        return
    except ReproError as exc:
        out.write(f"error: {exc}\n")
        return
    elapsed = time_module.perf_counter() - started
    if result.statement_type == "select":
        if not result.rows:
            out.write("(no rows)\n")
        elif state["shown"] > limit:
            out.write(f"... ({state['shown'] - limit} more rows)\n")
        mode = "streamed" if result.streamed else "whole"
        out.write(
            f"{result.row_count} row(s) ({mode}) in {elapsed * 1000:.2f} "
            f"ms; compile {result.compile_time * 1000:.2f} ms, execute "
            f"{result.execution_time * 1000:.2f} ms\n"
        )
    else:
        out.write(
            f"{result.statement_type}: {result.affected_rows} row(s)\n"
        )


def _repl_loop(
    executor, stdin, out, stats, tables, fingerprints, run=run_statement
) -> None:
    out.write(
        "repro SQL shell — \\help for commands, \\q to quit.\n"
    )
    buffer: List[str] = []
    while True:
        out.write(PROMPT if not buffer else "  ...> ")
        out.flush()
        line = stdin.readline()
        if not line:
            break
        line = line.strip()
        if not buffer and line.startswith("\\"):
            command, _, rest = line.partition(" ")
            if command in ("\\q", "\\quit"):
                break
            if command == "\\help":
                out.write(
                    "\\q quit | \\explain <sql> | \\stats | \\tables | "
                    "\\fingerprints [sort [limit]] | "
                    "end statements with ';'\n"
                )
            elif command == "\\stats":
                stats()
            elif command == "\\tables":
                tables()
            elif command == "\\fingerprints":
                words = rest.split()
                sort_by = words[0] if words else "total_ms"
                try:
                    limit = int(words[1]) if len(words) > 1 else 20
                except ValueError:
                    out.write(f"bad limit {words[1]!r}\n")
                    continue
                fingerprints(sort_by, limit)
            elif command == "\\explain":
                run(executor, rest.rstrip(";"), explain=True, out=out)
            else:
                out.write(f"unknown command {command}\n")
            continue
        if line:
            buffer.append(line)
        if line.endswith(";"):
            sql = " ".join(buffer).rstrip(";")
            buffer = []
            if sql.strip():
                run(executor, sql, explain=False, out=out)


def repl(engine: Engine, stdin, out) -> None:
    def fingerprints(sort_by: str, limit: int) -> None:
        try:
            snapshot = engine.fingerprint_snapshot(
                limit=limit, sort_by=sort_by
            )
        except ValueError as exc:
            out.write(f"error: {exc}\n")
            return
        print_fingerprints(snapshot, out)

    _repl_loop(
        engine,
        stdin,
        out,
        stats=lambda: print_stats(engine, out),
        tables=lambda: print_tables(engine, out),
        fingerprints=fingerprints,
    )


def network_repl(client, stdin, out, busy_retries: int = 0) -> None:
    """The same shell, statements shipped to a remote server; results
    render incrementally as v2 chunks arrive and Ctrl-C cancels the
    running statement instead of exiting."""

    def stats() -> None:
        try:
            print_stats_dict(client.stats(), out)
        except ReproError as exc:
            out.write(f"error: {exc}\n")

    def tables() -> None:
        try:
            for name, rows in client.stats().get("tables", {}).items():
                out.write(f"{name} ({rows} rows)\n")
        except ReproError as exc:
            out.write(f"error: {exc}\n")

    def fingerprints(sort_by: str, limit: int) -> None:
        try:
            print_fingerprints(
                client.fingerprints(limit=limit, sort=sort_by), out
            )
        except ReproError as exc:
            out.write(f"error: {exc}\n")

    def run(executor, sql, explain, out):
        run_network_statement(
            executor, sql, explain, out, busy_retries=busy_retries
        )

    _repl_loop(
        client, stdin, out,
        stats=stats, tables=tables, fingerprints=fingerprints,
        run=run,
    )


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve the car database over the repro wire protocol",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None,
        help="listening port (default 7433; 0 picks an ephemeral port)",
    )
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-jits", action="store_true")
    parser.add_argument("--smax", type=float, default=0.5)
    parser.add_argument("--fastpath", action="store_true")
    parser.add_argument("--no-caches", action="store_true")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="executor thread-pool width (default: --max-inflight)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="global admission limit: statements executing at once",
    )
    parser.add_argument(
        "--per-client-inflight", type=int, default=4, metavar="N",
        help="per-connection admission cap before BUSY frames",
    )
    parser.add_argument(
        "--acceptors", type=int, default=1, metavar="N",
        help="acceptor processes sharing the port via SO_REUSEPORT "
        "(each runs its own event loop and engine over copy-on-write "
        "storage; default 1 = single-process server)",
    )
    parser.add_argument(
        "--stream-threshold", type=int, default=256, metavar="ROWS",
        help="v2 connections stream SELECTs with at least this many rows "
        "as binary chunks (default 256)",
    )
    parser.add_argument(
        "--chunk-rows", type=int, default=None, metavar="ROWS",
        help="rows per binary chunk frame (default 65536)",
    )
    _add_reopt_arguments(parser)
    _add_observe_arguments(parser)
    _add_mvcc_arguments(parser)
    return parser


async def _serve_async(server, out) -> None:
    await server.start()
    out.write(f"listening on {server.host}:{server.port}\n")
    out.flush()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
        out.write("server stopped\n")


def _serve_acceptors(args, port: int, out) -> int:
    """Fork an SO_REUSEPORT acceptor fleet and babysit it."""
    import signal as signal_module
    import time as time_module

    from .server import AcceptorGroup

    db, _ = build_car_database(scale=args.scale, seed=args.seed)
    config = make_config(args)
    server_kwargs = dict(
        workers=args.workers,
        max_inflight=args.max_inflight,
        per_client_inflight=args.per_client_inflight,
        stream_threshold_rows=args.stream_threshold,
    )
    if args.chunk_rows is not None:
        server_kwargs["chunk_rows"] = args.chunk_rows
    group = AcceptorGroup(
        lambda: Engine(db, config),
        n_acceptors=args.acceptors,
        host=args.host,
        port=port,
        **server_kwargs,
    ).start()
    out.write(
        f"listening on {args.host}:{group.port} "
        f"with {args.acceptors} acceptor(s)\n"
    )
    out.flush()
    stop = {"flag": False}
    signal_module.signal(
        signal_module.SIGTERM, lambda *_: stop.update(flag=True)
    )
    try:
        while not stop["flag"] and group.alive() == args.acceptors:
            time_module.sleep(0.2)
    except KeyboardInterrupt:
        out.write("interrupted\n")
    finally:
        group.stop()
        out.write("server stopped\n")
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    from .server import DEFAULT_PORT, ReproServer

    args = build_serve_parser().parse_args(argv)
    out = sys.stdout
    out.write(f"building car database (scale={args.scale}) ...\n")
    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        if args.acceptors > 1:
            return _serve_acceptors(args, port, out)
        engine = make_engine(args)
        server = ReproServer(
            engine,
            host=args.host,
            port=port,
            workers=args.workers,
            max_inflight=args.max_inflight,
            per_client_inflight=args.per_client_inflight,
            stream_threshold_rows=args.stream_threshold,
            **(
                {"chunk_rows": args.chunk_rows}
                if args.chunk_rows is not None
                else {}
            ),
        )
        asyncio.run(_serve_async(server, out))
    except ReproError as exc:
        out.write(f"error: {exc}\n")
        return 1
    except KeyboardInterrupt:
        out.write("interrupted\n")
    return 0


def build_connect_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro connect",
        description="Connect the SQL shell to a running repro server",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument(
        "--busy-retries", type=int, default=8, metavar="N",
        help="retries (with backoff) when the server answers BUSY",
    )
    parser.add_argument(
        "-e", "--execute", metavar="SQL", action="append",
        help="execute one statement and exit (repeatable)",
    )
    parser.add_argument("--explain", action="store_true")
    return parser


def connect_main(argv: Optional[List[str]] = None) -> int:
    from .server import DEFAULT_PORT, connect

    args = build_connect_parser().parse_args(argv)
    out = sys.stdout
    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        client = connect(host=args.host, port=port, timeout=args.timeout)
    except ReproError as exc:
        out.write(f"error: {exc}\n")
        return 1
    with client:
        out.write(f"connected to {args.host}:{port} "
                  f"({client.server_info.get('server', '?')}, "
                  f"protocol v{client.protocol_version})\n")
        if args.execute:
            for sql in args.execute:
                run_network_statement(
                    client, sql, explain=args.explain, out=out,
                    busy_retries=args.busy_retries,
                )
            return 0
        network_repl(client, sys.stdin, out, busy_retries=args.busy_retries)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "connect":
        return connect_main(argv[1:])
    args = build_parser().parse_args(argv)
    out = sys.stdout
    out.write(f"building car database (scale={args.scale}) ...\n")
    try:
        engine = make_engine(args)
    except ReproError as exc:
        out.write(f"error: {exc}\n")
        return 1
    sizes = ", ".join(
        f"{t.name}={t.row_count}" for t in engine.database.tables()
    )
    out.write(f"ready: {sizes}\n")
    if args.execute:
        if args.workers > 1 and not args.explain and len(args.execute) > 1:
            try:
                results = engine.execute_many(
                    args.execute, workers=args.workers
                )
            except ReproError as exc:
                out.write(f"error: {exc}\n")
                return 1
            for sql, result in zip(args.execute, results):
                run_statement(
                    engine, sql, explain=False, out=out, result=result
                )
        else:
            for sql in args.execute:
                run_statement(engine, sql, explain=args.explain, out=out)
        return 0
    repl(engine, sys.stdin, out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
