"""Simplified Query Graph Model (QGM): bound query blocks.

After parse + rewrite, :func:`build_query_graph` binds a SELECT against the
database schema and produces a tree of :class:`QueryBlock` objects — the
structure the paper's query analysis walks ("B <- set of query blocks in
Q", Algorithm 1). Each block records:

* its quantifiers (base tables or child blocks for derived tables),
* **local predicates** per quantifier (constant comparisons — the raw
  material for predicate groups),
* **join predicates** (equi-joins between quantifiers),
* residual predicates that fit neither shape (OR trees, non-equi column
  comparisons...) and are evaluated generically by the executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import BindingError
from ..storage import Database
from ..types import DataType
from . import ast
from .rewrite import rewrite_select

_JOINABLE = (ast.CompareOp.EQ,)

_LOCAL_OPS = {
    ast.CompareOp.EQ: "=",
    ast.CompareOp.NE: "<>",
    ast.CompareOp.LT: "<",
    ast.CompareOp.LE: "<=",
    ast.CompareOp.GT: ">",
    ast.CompareOp.GE: ">=",
}


@dataclass
class OutputColumn:
    """One column a block produces."""

    name: str
    dtype: DataType
    expr: ast.Expr


@dataclass
class Quantifier:
    """A range variable of a block: base table or derived child block."""

    alias: str
    table_name: Optional[str] = None
    child: Optional["QueryBlock"] = None

    @property
    def is_base(self) -> bool:
        return self.table_name is not None

    def visible_columns(self) -> List[Tuple[str, DataType]]:
        raise NotImplementedError  # replaced at bind time


@dataclass
class QueryBlock:
    """One bound SELECT block."""

    block_id: int
    quantifiers: Dict[str, Quantifier] = field(default_factory=dict)
    select_items: List[ast.SelectItem] = field(default_factory=list)
    outputs: List[OutputColumn] = field(default_factory=list)
    local_predicates: Dict[str, List] = field(default_factory=dict)
    scan_residuals: Dict[str, List[ast.BoolExpr]] = field(default_factory=dict)
    join_predicates: List = field(default_factory=list)
    residuals: List[ast.BoolExpr] = field(default_factory=list)
    group_by: List[ast.ColumnRef] = field(default_factory=list)
    having: Optional[ast.BoolExpr] = None
    order_by: List[ast.OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
    has_aggregates: bool = False

    def aliases(self) -> List[str]:
        return list(self.quantifiers)

    def base_tables(self) -> Dict[str, str]:
        """alias -> base table name, for base quantifiers only."""
        return {
            alias: q.table_name
            for alias, q in self.quantifiers.items()
            if q.is_base
        }

    def child_blocks(self) -> List["QueryBlock"]:
        return [q.child for q in self.quantifiers.values() if q.child is not None]

    def all_blocks(self) -> List["QueryBlock"]:
        """This block and all descendants, pre-order."""
        blocks = [self]
        for child in self.child_blocks():
            blocks.extend(child.all_blocks())
        return blocks

    def output_names(self) -> List[str]:
        return [o.name for o in self.outputs]

    def local_predicates_for(self, alias: str) -> List:
        return self.local_predicates.get(alias.lower(), [])


class _Binder:
    def __init__(self, database: Database):
        self.database = database
        self._next_block_id = 0

    def bind(self, select: ast.SelectStatement) -> QueryBlock:
        block = QueryBlock(block_id=self._next_block_id)
        self._next_block_id += 1

        # 1. Quantifiers (recursing into derived tables).
        visible: Dict[str, Dict[str, DataType]] = {}
        for item in select.from_items:
            alias = item.binding_name
            if alias in block.quantifiers:
                raise BindingError(f"duplicate table alias {alias!r}")
            if isinstance(item, ast.TableRef):
                if not self.database.has_table(item.name):
                    raise BindingError(f"unknown table {item.name!r}")
                schema = self.database.table(item.name).schema
                block.quantifiers[alias] = Quantifier(
                    alias=alias, table_name=schema.name
                )
                visible[alias] = {
                    c.name.lower(): c.dtype for c in schema.columns
                }
            else:
                child = self.bind(item.select)
                block.quantifiers[alias] = Quantifier(alias=alias, child=child)
                visible[alias] = {
                    o.name.lower(): o.dtype for o in child.outputs
                }
        if not block.quantifiers:
            raise BindingError("query block has no tables")
        self._visible = visible

        # 2. Select list (star expansion, qualification, output schema).
        if select.star:
            for alias, columns in visible.items():
                for name, dtype in columns.items():
                    ref = ast.ColumnRef(name=name, qualifier=alias)
                    block.select_items.append(ast.SelectItem(expr=ref, alias=None))
        else:
            for item in select.items:
                block.select_items.append(
                    ast.SelectItem(expr=self._qualify(item.expr), alias=item.alias)
                )
        for position, item in enumerate(block.select_items):
            block.outputs.append(
                OutputColumn(
                    name=item.output_name(position).lower(),
                    dtype=self._infer_dtype(item.expr),
                    expr=item.expr,
                )
            )
        names = [o.name for o in block.outputs]
        if len(set(names)) != len(names):
            # Disambiguate duplicate output names positionally (SELECT
            # a.id, b.id ... is legal SQL).
            seen: Dict[str, int] = {}
            for output in block.outputs:
                count = seen.get(output.name, 0)
                seen[output.name] = count + 1
                if count:
                    output.name = f"{output.name}_{count}"

        # 3. WHERE classification.
        for conjunct in ast.conjuncts(select.where):
            self._classify(block, conjunct)

        # 4. GROUP BY / HAVING / ORDER BY / LIMIT.
        for expr in select.group_by:
            qualified = self._qualify(expr)
            if not isinstance(qualified, ast.ColumnRef):
                raise BindingError("GROUP BY supports plain columns only")
            block.group_by.append(qualified)
        block.has_aggregates = bool(block.group_by) or any(
            _has_aggregate(i.expr) for i in block.select_items
        )
        if block.has_aggregates:
            self._validate_aggregation(block)
        if select.having is not None:
            block.having = self._qualify_bool(select.having)
            if not block.has_aggregates:
                raise BindingError("HAVING requires aggregation")
        for order in select.order_by:
            block.order_by.append(
                ast.OrderItem(
                    expr=self._qualify_output(order.expr, block),
                    descending=order.descending,
                )
            )
        block.limit = select.limit
        block.distinct = select.distinct
        return block

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _resolve(self, ref: ast.ColumnRef) -> ast.ColumnRef:
        name = ref.name.lower()
        if ref.qualifier is not None:
            alias = ref.qualifier.lower()
            columns = self._visible.get(alias)
            if columns is None:
                raise BindingError(f"unknown table alias {ref.qualifier!r}")
            if name not in columns:
                raise BindingError(f"column {ref.qualifier}.{ref.name} not found")
            return ast.ColumnRef(name=name, qualifier=alias)
        matches = [a for a, cols in self._visible.items() if name in cols]
        if not matches:
            raise BindingError(f"column {ref.name!r} not found")
        if len(matches) > 1:
            raise BindingError(
                f"column {ref.name!r} is ambiguous (in {sorted(matches)})"
            )
        return ast.ColumnRef(name=name, qualifier=matches[0])

    def _qualify(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.ColumnRef):
            return self._resolve(expr)
        if isinstance(expr, ast.BinaryArith):
            return ast.BinaryArith(
                op=expr.op,
                left=self._qualify(expr.left),
                right=self._qualify(expr.right),
            )
        if isinstance(expr, ast.UnaryArith):
            return ast.UnaryArith(op=expr.op, operand=self._qualify(expr.operand))
        if isinstance(expr, ast.Aggregate):
            argument = (
                None if expr.argument is None else self._qualify(expr.argument)
            )
            return ast.Aggregate(
                func=expr.func, argument=argument, distinct=expr.distinct
            )
        return expr

    def _qualify_bool(self, expr: ast.BoolExpr) -> ast.BoolExpr:
        if isinstance(expr, ast.Comparison):
            return ast.Comparison(
                op=expr.op,
                left=self._qualify(expr.left),
                right=self._qualify(expr.right),
            )
        if isinstance(expr, ast.BetweenExpr):
            return ast.BetweenExpr(
                operand=self._qualify(expr.operand),
                low=self._qualify(expr.low),
                high=self._qualify(expr.high),
                negated=expr.negated,
            )
        if isinstance(expr, ast.InListExpr):
            return ast.InListExpr(
                operand=self._qualify(expr.operand),
                items=expr.items,
                negated=expr.negated,
            )
        if isinstance(expr, ast.AndExpr):
            return ast.AndExpr(tuple(self._qualify_bool(o) for o in expr.operands))
        if isinstance(expr, ast.OrExpr):
            return ast.OrExpr(tuple(self._qualify_bool(o) for o in expr.operands))
        if isinstance(expr, ast.NotExpr):
            return ast.NotExpr(self._qualify_bool(expr.operand))
        raise BindingError(f"unsupported boolean expression {expr!r}")

    def _qualify_output(self, expr: ast.Expr, block: QueryBlock) -> ast.Expr:
        """ORDER BY may reference output aliases or input columns."""
        if isinstance(expr, ast.ColumnRef) and expr.qualifier is None:
            name = expr.name.lower()
            for output in block.outputs:
                if output.name == name:
                    return output.expr
        return self._qualify(expr)

    def _infer_dtype(self, expr: ast.Expr) -> DataType:
        if isinstance(expr, ast.Literal):
            if isinstance(expr.value, str):
                return DataType.STRING
            if isinstance(expr.value, float):
                return DataType.FLOAT
            return DataType.INT
        if isinstance(expr, ast.ColumnRef):
            alias = (expr.qualifier or "").lower()
            columns = self._visible.get(alias, {})
            dtype = columns.get(expr.name.lower())
            if dtype is None:
                raise BindingError(f"cannot infer type of {expr}")
            return dtype
        if isinstance(expr, ast.Aggregate):
            if expr.func is ast.AggFunc.COUNT:
                return DataType.INT
            if expr.func is ast.AggFunc.AVG:
                return DataType.FLOAT
            if expr.argument is None:
                return DataType.FLOAT
            return self._infer_dtype(expr.argument)
        if isinstance(expr, ast.UnaryArith):
            return self._infer_dtype(expr.operand)
        if isinstance(expr, ast.BinaryArith):
            left = self._infer_dtype(expr.left)
            right = self._infer_dtype(expr.right)
            if DataType.STRING in (left, right):
                raise BindingError("arithmetic on string values")
            if expr.op == "/" or DataType.FLOAT in (left, right):
                return DataType.FLOAT
            return DataType.INT
        raise BindingError(f"cannot infer type of {expr!r}")

    # ------------------------------------------------------------------
    # Predicate classification
    # ------------------------------------------------------------------
    def _classify(self, block: QueryBlock, conjunct: ast.BoolExpr) -> None:
        from ..predicates import JoinPredicate, LocalPredicate, PredOp

        qualified = self._qualify_bool(conjunct)
        if isinstance(qualified, ast.Comparison):
            left, right = qualified.left, qualified.right
            op = qualified.op
            if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
                left, right = right, left
                op = op.flipped()
            if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
                block.local_predicates.setdefault(left.qualifier, []).append(
                    LocalPredicate(
                        alias=left.qualifier,
                        column=left.name,
                        op=PredOp(_LOCAL_OPS[op]),
                        values=(right.value,),
                    )
                )
                return
            if isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef):
                if left.qualifier != right.qualifier and op in _JOINABLE:
                    block.join_predicates.append(
                        JoinPredicate(
                            left_alias=left.qualifier,
                            left_column=left.name,
                            right_alias=right.qualifier,
                            right_column=right.name,
                        )
                    )
                    return
        elif isinstance(qualified, ast.BetweenExpr) and not qualified.negated:
            if (
                isinstance(qualified.operand, ast.ColumnRef)
                and isinstance(qualified.low, ast.Literal)
                and isinstance(qualified.high, ast.Literal)
            ):
                ref = qualified.operand
                block.local_predicates.setdefault(ref.qualifier, []).append(
                    LocalPredicate(
                        alias=ref.qualifier,
                        column=ref.name,
                        op=PredOp.BETWEEN,
                        values=(qualified.low.value, qualified.high.value),
                    )
                )
                return
        elif isinstance(qualified, ast.InListExpr) and not qualified.negated:
            if isinstance(qualified.operand, ast.ColumnRef):
                ref = qualified.operand
                block.local_predicates.setdefault(ref.qualifier, []).append(
                    LocalPredicate(
                        alias=ref.qualifier,
                        column=ref.name,
                        op=PredOp.IN,
                        values=tuple(i.value for i in qualified.items),
                    )
                )
                return
        # Fallback: residual, pinned to a single quantifier when possible.
        refs = ast.column_refs(qualified)
        aliases = {r.qualifier for r in refs if r.qualifier}
        if len(aliases) == 1:
            block.scan_residuals.setdefault(aliases.pop(), []).append(qualified)
        else:
            block.residuals.append(qualified)

    def _validate_aggregation(self, block: QueryBlock) -> None:
        group_keys = {(g.qualifier, g.name) for g in block.group_by}
        for item in block.select_items:
            if _has_aggregate(item.expr):
                continue
            refs = ast.column_refs(item.expr)
            for ref in refs:
                if (ref.qualifier, ref.name) not in group_keys:
                    raise BindingError(
                        f"column {ref} must appear in GROUP BY or an aggregate"
                    )


def _has_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Aggregate):
        return True
    if isinstance(expr, ast.BinaryArith):
        return _has_aggregate(expr.left) or _has_aggregate(expr.right)
    if isinstance(expr, ast.UnaryArith):
        return _has_aggregate(expr.operand)
    return False


def build_query_graph(
    select: ast.SelectStatement, database: Database, rewrite: bool = True
) -> QueryBlock:
    """Rewrite (optional) and bind a SELECT into a QGM block tree."""
    if rewrite:
        select = rewrite_select(select)
    return _Binder(database).bind(select)
