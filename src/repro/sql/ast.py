"""Abstract syntax tree for the supported SQL dialect.

The dialect covers what the paper's workloads need: SELECT-PROJECT-JOIN
blocks with conjunctive predicates, BETWEEN/IN, aggregates with GROUP BY,
ORDER BY/LIMIT, derived tables (sub-selects in FROM — these become separate
query blocks, matching the paper's per-block analysis), and the DML needed
to simulate an operational database (INSERT/UPDATE/DELETE) plus DDL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..types import DataType, Value


# ----------------------------------------------------------------------
# Scalar expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for scalar expressions."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class BinaryArith(Expr):
    op: str  # + - * /
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryArith(Expr):
    op: str  # -
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


class AggFunc(enum.Enum):
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class Aggregate(Expr):
    func: AggFunc
    argument: Optional[Expr]  # None for COUNT(*)
    distinct: bool = False

    def __str__(self) -> str:
        arg = "*" if self.argument is None else str(self.argument)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func.value.upper()}({prefix}{arg})"


# ----------------------------------------------------------------------
# Boolean expressions
# ----------------------------------------------------------------------
class BoolExpr:
    """Base class for boolean expressions."""


class CompareOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flipped(self) -> "CompareOp":
        flip = {
            CompareOp.LT: CompareOp.GT,
            CompareOp.LE: CompareOp.GE,
            CompareOp.GT: CompareOp.LT,
            CompareOp.GE: CompareOp.LE,
        }
        return flip.get(self, self)


@dataclass(frozen=True)
class Comparison(BoolExpr):
    op: CompareOp
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class BetweenExpr(BoolExpr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def __str__(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"{self.operand} {word} {self.low} AND {self.high}"


@dataclass(frozen=True)
class InListExpr(BoolExpr):
    operand: Expr
    items: Tuple[Literal, ...]
    negated: bool = False

    def __str__(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        inner = ", ".join(str(i) for i in self.items)
        return f"{self.operand} {word} ({inner})"


@dataclass(frozen=True)
class AndExpr(BoolExpr):
    operands: Tuple[BoolExpr, ...]

    def __str__(self) -> str:
        return " AND ".join(f"({o})" for o in self.operands)


@dataclass(frozen=True)
class OrExpr(BoolExpr):
    operands: Tuple[BoolExpr, ...]

    def __str__(self) -> str:
        return " OR ".join(f"({o})" for o in self.operands)


@dataclass(frozen=True)
class NotExpr(BoolExpr):
    operand: BoolExpr

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


# ----------------------------------------------------------------------
# FROM items and statements
# ----------------------------------------------------------------------
@dataclass
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


@dataclass
class DerivedTable:
    select: "SelectStatement"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias.lower()


FromItem = Union[TableRef, DerivedTable]


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    def output_name(self, position: int) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return f"col{position}"


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


class Statement:
    """Base class for all statements."""


@dataclass
class SelectStatement(Statement):
    items: List[SelectItem]
    from_items: List[FromItem]
    star: bool = False
    where: Optional[BoolExpr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[BoolExpr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
    # MVCC time travel: ``SELECT ... AS OF <clock>`` pins, per table, the
    # newest snapshot generation published at or before the given engine
    # statement clock. None = read the current generation.
    as_of: Optional[int] = None


@dataclass
class InsertStatement(Statement):
    table: str
    columns: Optional[List[str]]
    rows: List[List[Literal]]


@dataclass
class UpdateStatement(Statement):
    table: str
    assignments: List[Tuple[str, Expr]]
    where: Optional[BoolExpr] = None


@dataclass
class DeleteStatement(Statement):
    table: str
    where: Optional[BoolExpr] = None


@dataclass
class ColumnSpec:
    name: str
    dtype: DataType


@dataclass
class CreateTableStatement(Statement):
    table: str
    columns: List[ColumnSpec]
    primary_key: Optional[str] = None


@dataclass
class DropTableStatement(Statement):
    table: str


@dataclass
class CreateIndexStatement(Statement):
    table: str
    column: str
    kind: str = "hash"  # "hash" | "sorted"


def conjuncts(expr: Optional[BoolExpr]) -> List[BoolExpr]:
    """Flatten nested ANDs into a list of conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, AndExpr):
        out: List[BoolExpr] = []
        for op in expr.operands:
            out.extend(conjuncts(op))
        return out
    return [expr]


def make_and(parts: Sequence[BoolExpr]) -> Optional[BoolExpr]:
    """Combine conjuncts back into a single expression (None for empty)."""
    parts = list(parts)
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return AndExpr(tuple(parts))


def column_refs(expr: Union[Expr, BoolExpr, None]) -> List[ColumnRef]:
    """All column references appearing anywhere in an expression."""
    refs: List[ColumnRef] = []
    _collect_refs(expr, refs)
    return refs


def _collect_refs(node, refs: List[ColumnRef]) -> None:
    if node is None or isinstance(node, Literal):
        return
    if isinstance(node, ColumnRef):
        refs.append(node)
    elif isinstance(node, BinaryArith):
        _collect_refs(node.left, refs)
        _collect_refs(node.right, refs)
    elif isinstance(node, UnaryArith):
        _collect_refs(node.operand, refs)
    elif isinstance(node, Aggregate):
        _collect_refs(node.argument, refs)
    elif isinstance(node, Comparison):
        _collect_refs(node.left, refs)
        _collect_refs(node.right, refs)
    elif isinstance(node, BetweenExpr):
        _collect_refs(node.operand, refs)
        _collect_refs(node.low, refs)
        _collect_refs(node.high, refs)
    elif isinstance(node, InListExpr):
        _collect_refs(node.operand, refs)
    elif isinstance(node, (AndExpr, OrExpr)):
        for op in node.operands:
            _collect_refs(op, refs)
    elif isinstance(node, NotExpr):
        _collect_refs(node.operand, refs)


def contains_aggregate(expr: Union[Expr, BoolExpr, None]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, Aggregate):
        return True
    if isinstance(expr, BinaryArith):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryArith):
        return contains_aggregate(expr.operand)
    if isinstance(expr, Comparison):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    return False
