"""Query rewrite: constant folding and derived-table (view) merging.

The paper's query analysis runs on "the query after rewrite, so the query
blocks are finalized" (Section 3.2). Our rewrite performs the two
transformations that matter for block structure:

* **constant folding** — literal-only arithmetic becomes a literal, so the
  predicate classifier sees constants;
* **view merging** — a derived table that is a plain select-project (no
  aggregation, DISTINCT, ORDER BY or LIMIT) is merged into its parent
  block, exactly like Starburst/QGM merges SELECT boxes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..errors import BindingError
from . import ast


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------
def fold_expr(expr: ast.Expr) -> ast.Expr:
    """Fold literal-only arithmetic into literals."""
    if isinstance(expr, ast.BinaryArith):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        if isinstance(left, ast.Literal) and isinstance(right, ast.Literal):
            return _apply_arith(expr.op, left, right)
        return ast.BinaryArith(op=expr.op, left=left, right=right)
    if isinstance(expr, ast.UnaryArith):
        operand = fold_expr(expr.operand)
        if isinstance(operand, ast.Literal) and isinstance(
            operand.value, (int, float)
        ):
            return ast.Literal(-operand.value)
        return ast.UnaryArith(op=expr.op, operand=operand)
    if isinstance(expr, ast.Aggregate) and expr.argument is not None:
        return ast.Aggregate(
            func=expr.func, argument=fold_expr(expr.argument), distinct=expr.distinct
        )
    return expr


def _apply_arith(op: str, left: ast.Literal, right: ast.Literal) -> ast.Literal:
    lv, rv = left.value, right.value
    if not isinstance(lv, (int, float)) or not isinstance(rv, (int, float)):
        raise BindingError(f"arithmetic on non-numeric literals: {lv!r} {op} {rv!r}")
    if op == "+":
        return ast.Literal(lv + rv)
    if op == "-":
        return ast.Literal(lv - rv)
    if op == "*":
        return ast.Literal(lv * rv)
    if op == "/":
        if rv == 0:
            raise BindingError("division by zero in constant expression")
        result = lv / rv
        if isinstance(lv, int) and isinstance(rv, int) and lv % rv == 0:
            return ast.Literal(lv // rv)
        return ast.Literal(result)
    raise AssertionError(f"unknown arithmetic op {op}")


def fold_bool(expr: Optional[ast.BoolExpr]) -> Optional[ast.BoolExpr]:
    if expr is None:
        return None
    if isinstance(expr, ast.Comparison):
        return ast.Comparison(
            op=expr.op, left=fold_expr(expr.left), right=fold_expr(expr.right)
        )
    if isinstance(expr, ast.BetweenExpr):
        return ast.BetweenExpr(
            operand=fold_expr(expr.operand),
            low=fold_expr(expr.low),
            high=fold_expr(expr.high),
            negated=expr.negated,
        )
    if isinstance(expr, ast.InListExpr):
        return ast.InListExpr(
            operand=fold_expr(expr.operand), items=expr.items, negated=expr.negated
        )
    if isinstance(expr, ast.AndExpr):
        return ast.AndExpr(tuple(fold_bool(o) for o in expr.operands))
    if isinstance(expr, ast.OrExpr):
        return ast.OrExpr(tuple(fold_bool(o) for o in expr.operands))
    if isinstance(expr, ast.NotExpr):
        return ast.NotExpr(fold_bool(expr.operand))
    return expr


# ----------------------------------------------------------------------
# View merging
# ----------------------------------------------------------------------
def is_mergeable(select: ast.SelectStatement) -> bool:
    """Can this derived table be merged into its parent block?"""
    if select.group_by or select.having or select.order_by:
        return False
    if select.distinct or select.limit is not None:
        return False
    if select.star:
        return True
    for item in select.items:
        if ast.contains_aggregate(item.expr):
            return False
        if not isinstance(item.expr, (ast.ColumnRef, ast.Literal)):
            # Merging computed projections would need expression
            # substitution into parent predicates; stay conservative.
            return False
    return True


def rewrite_select(select: ast.SelectStatement) -> ast.SelectStatement:
    """Fold constants and merge mergeable derived tables, recursively."""
    select.where = fold_bool(select.where)
    select.having = fold_bool(select.having)
    select.items = [
        ast.SelectItem(expr=fold_expr(i.expr), alias=i.alias) for i in select.items
    ]
    new_from: List[ast.FromItem] = []
    extra_conjuncts: List[ast.BoolExpr] = []
    renames: Dict[str, ast.ColumnRef] = {}
    for item in select.from_items:
        if isinstance(item, ast.DerivedTable):
            child = rewrite_select(item.select)
            if is_mergeable(child) and not child.star:
                # Hoist child quantifiers and predicates into this block.
                for sub in child.from_items:
                    new_from.append(sub)
                if child.where is not None:
                    extra_conjuncts.extend(ast.conjuncts(child.where))
                for position, child_item in enumerate(child.items):
                    name = child_item.output_name(position).lower()
                    if isinstance(child_item.expr, ast.ColumnRef):
                        renames[f"{item.alias.lower()}.{name}"] = child_item.expr
                continue
            new_from.append(ast.DerivedTable(select=child, alias=item.alias))
        else:
            new_from.append(item)
    select.from_items = new_from
    if extra_conjuncts:
        existing = ast.conjuncts(select.where)
        select.where = ast.make_and(existing + extra_conjuncts)
    if renames:
        select.where = _rename_bool(select.where, renames)
        select.having = _rename_bool(select.having, renames)
        select.items = [
            ast.SelectItem(expr=_rename_expr(i.expr, renames), alias=i.alias)
            for i in select.items
        ]
        select.group_by = [_rename_expr(g, renames) for g in select.group_by]
        select.order_by = [
            ast.OrderItem(expr=_rename_expr(o.expr, renames), descending=o.descending)
            for o in select.order_by
        ]
    return select


def _rename_expr(
    expr: Optional[ast.Expr], renames: Dict[str, ast.ColumnRef]
) -> Optional[ast.Expr]:
    if expr is None:
        return None
    if isinstance(expr, ast.ColumnRef):
        if expr.qualifier is not None:
            key = f"{expr.qualifier.lower()}.{expr.name.lower()}"
            return renames.get(key, expr)
        return expr
    if isinstance(expr, ast.BinaryArith):
        return ast.BinaryArith(
            op=expr.op,
            left=_rename_expr(expr.left, renames),
            right=_rename_expr(expr.right, renames),
        )
    if isinstance(expr, ast.UnaryArith):
        return ast.UnaryArith(op=expr.op, operand=_rename_expr(expr.operand, renames))
    if isinstance(expr, ast.Aggregate):
        return ast.Aggregate(
            func=expr.func,
            argument=_rename_expr(expr.argument, renames),
            distinct=expr.distinct,
        )
    return expr


def _rename_bool(
    expr: Optional[ast.BoolExpr], renames: Dict[str, ast.ColumnRef]
) -> Optional[ast.BoolExpr]:
    if expr is None:
        return None
    if isinstance(expr, ast.Comparison):
        return ast.Comparison(
            op=expr.op,
            left=_rename_expr(expr.left, renames),
            right=_rename_expr(expr.right, renames),
        )
    if isinstance(expr, ast.BetweenExpr):
        return ast.BetweenExpr(
            operand=_rename_expr(expr.operand, renames),
            low=_rename_expr(expr.low, renames),
            high=_rename_expr(expr.high, renames),
            negated=expr.negated,
        )
    if isinstance(expr, ast.InListExpr):
        return ast.InListExpr(
            operand=_rename_expr(expr.operand, renames),
            items=expr.items,
            negated=expr.negated,
        )
    if isinstance(expr, ast.AndExpr):
        return ast.AndExpr(tuple(_rename_bool(o, renames) for o in expr.operands))
    if isinstance(expr, ast.OrExpr):
        return ast.OrExpr(tuple(_rename_bool(o, renames) for o in expr.operands))
    if isinstance(expr, ast.NotExpr):
        return ast.NotExpr(_rename_bool(expr.operand, renames))
    return expr
