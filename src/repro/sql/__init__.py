"""SQL front end: lexer, parser, rewrite and the simplified QGM."""

from . import ast
from .lexer import Token, TokenType, tokenize
from .parser import parse, parse_select
from .qgm import OutputColumn, Quantifier, QueryBlock, build_query_graph
from .rewrite import fold_bool, fold_expr, is_mergeable, rewrite_select

__all__ = [
    "ast",
    "tokenize",
    "Token",
    "TokenType",
    "parse",
    "parse_select",
    "build_query_graph",
    "QueryBlock",
    "Quantifier",
    "OutputColumn",
    "rewrite_select",
    "fold_expr",
    "fold_bool",
    "is_mergeable",
]
