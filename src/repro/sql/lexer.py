"""Hand-written SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..errors import SqlSyntaxError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "asc", "desc", "and", "or", "not", "between", "in", "as",
    "insert", "into", "values", "update", "set", "delete", "create", "drop",
    "table", "index", "on", "primary", "key", "int", "integer", "float",
    "double", "string", "varchar", "text", "join", "inner", "is", "null",
    "count", "sum", "avg", "min", "max", "hash", "sorted", "using", "of",
}


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.type is TokenType.SYMBOL and self.text == symbol


_TWO_CHAR_SYMBOLS = ("<=", ">=", "<>", "!=")
_ONE_CHAR_SYMBOLS = set("()*,.+-/=<>;")


def tokenize(sql: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            text, i = _read_string(sql, i)
            tokens.append(Token(TokenType.STRING, text, i))
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            start = i
            i += 1
            seen_dot = ch == "."
            seen_exp = False
            while i < n:
                c = sql[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    sql[i + 1].isdigit() or sql[i + 1] in "+-"
                ):
                    seen_exp = True
                    i += 2
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR_SYMBOLS:
            text = "<>" if two == "!=" else two
            tokens.append(Token(TokenType.SYMBOL, text, i))
            i += 2
            continue
        if ch in _ONE_CHAR_SYMBOLS:
            tokens.append(Token(TokenType.SYMBOL, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(sql: str, start: int):
    """Read a single-quoted string with '' as the escape for a quote."""
    i = start + 1
    n = len(sql)
    out = []
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", position=start)
