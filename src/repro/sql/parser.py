"""Recursive-descent parser for the supported SQL dialect."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SqlSyntaxError
from ..types import DataType
from . import ast
from .lexer import Token, TokenType, tokenize

_TYPE_WORDS = {
    "int": DataType.INT,
    "integer": DataType.INT,
    "float": DataType.FLOAT,
    "double": DataType.FLOAT,
    "string": DataType.STRING,
    "varchar": DataType.STRING,
    "text": DataType.STRING,
}

_AGG_WORDS = {
    "count": ast.AggFunc.COUNT,
    "sum": ast.AggFunc.SUM,
    "avg": ast.AggFunc.AVG,
    "min": ast.AggFunc.MIN,
    "max": ast.AggFunc.MAX,
}

_COMPARE_OPS = {
    "=": ast.CompareOp.EQ,
    "<>": ast.CompareOp.NE,
    "<": ast.CompareOp.LT,
    "<=": ast.CompareOp.LE,
    ">": ast.CompareOp.GT,
    ">=": ast.CompareOp.GE,
}


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement."""
    return Parser(sql).parse_statement()


def parse_select(sql: str) -> ast.SelectStatement:
    stmt = parse(sql)
    if not isinstance(stmt, ast.SelectStatement):
        raise SqlSyntaxError("expected a SELECT statement")
    return stmt


class Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._peek()
        where = f" near {token.text!r}" if token.text else " at end of input"
        return SqlSyntaxError(message + where, position=token.position)

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected {word.upper()}")
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().is_symbol(symbol):
            self._advance()
            return True
        return False

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            return self._advance().text
        # Non-reserved keywords may still be identifiers in some contexts
        # (e.g. a column named "key"); keep strict for clarity.
        raise self._error("expected identifier")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("select"):
            stmt: ast.Statement = self._parse_select()
        elif token.is_keyword("insert"):
            stmt = self._parse_insert()
        elif token.is_keyword("update"):
            stmt = self._parse_update()
        elif token.is_keyword("delete"):
            stmt = self._parse_delete()
        elif token.is_keyword("create"):
            stmt = self._parse_create()
        elif token.is_keyword("drop"):
            stmt = self._parse_drop()
        else:
            raise self._error("expected a statement")
        self._accept_symbol(";")
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return stmt

    def _parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        star = False
        items: List[ast.SelectItem] = []
        if self._accept_symbol("*"):
            star = True
        else:
            items.append(self._parse_select_item())
            while self._accept_symbol(","):
                items.append(self._parse_select_item())
        self._expect_keyword("from")
        from_items = [self._parse_from_item()]
        join_conds: List[ast.BoolExpr] = []
        while True:
            if self._accept_symbol(","):
                from_items.append(self._parse_from_item())
                continue
            if self._peek().is_keyword("inner") or self._peek().is_keyword("join"):
                self._accept_keyword("inner")
                self._expect_keyword("join")
                from_items.append(self._parse_from_item())
                self._expect_keyword("on")
                join_conds.append(self._parse_bool_expr())
                continue
            break
        where = None
        if self._accept_keyword("where"):
            where = self._parse_bool_expr()
        # Explicit JOIN ... ON conditions are folded into WHERE; the
        # rewrite stage classifies them as join predicates.
        all_conds = join_conds + ([where] if where is not None else [])
        where = ast.make_and(all_conds) if all_conds else None
        group_by: List[ast.Expr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expr())
            while self._accept_symbol(","):
                group_by.append(self._parse_expr())
        having = None
        if self._accept_keyword("having"):
            having = self._parse_bool_expr()
        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_symbol(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise self._error("expected LIMIT count")
            self._advance()
            limit = int(float(token.text))
        # Time travel: trailing AS OF <statement clock> pins the whole
        # statement to the snapshot generations current at that clock.
        as_of = None
        if self._accept_keyword("as"):
            self._expect_keyword("of")
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise self._error("expected AS OF statement clock")
            self._advance()
            as_of = int(float(token.text))
        return ast.SelectStatement(
            items=items,
            from_items=from_items,
            star=star,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            as_of=as_of,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr=expr, descending=descending)

    def _parse_from_item(self) -> ast.FromItem:
        if self._accept_symbol("("):
            select = self._parse_select()
            self._expect_symbol(")")
            self._accept_keyword("as")
            alias = self._expect_ident()
            return ast.DerivedTable(select=select, alias=alias)
        name = self._expect_ident()
        alias = None
        # ``AS OF`` here is the trailing time-travel clause, not an
        # alias introducer (OF is reserved, so it can never be one).
        if self._peek().is_keyword("as") and not self._peek(1).is_keyword("of"):
            self._advance()
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return ast.TableRef(name=name, alias=alias)

    def _parse_insert(self) -> ast.InsertStatement:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident()
        columns = None
        if self._accept_symbol("("):
            columns = [self._expect_ident()]
            while self._accept_symbol(","):
                columns.append(self._expect_ident())
            self._expect_symbol(")")
        self._expect_keyword("values")
        rows = [self._parse_value_row()]
        while self._accept_symbol(","):
            rows.append(self._parse_value_row())
        return ast.InsertStatement(table=table, columns=columns, rows=rows)

    def _parse_value_row(self) -> List[ast.Literal]:
        self._expect_symbol("(")
        row = [self._parse_literal()]
        while self._accept_symbol(","):
            row.append(self._parse_literal())
        self._expect_symbol(")")
        return row

    def _parse_update(self) -> ast.UpdateStatement:
        self._expect_keyword("update")
        table = self._expect_ident()
        self._expect_keyword("set")
        assignments: List[Tuple[str, ast.Expr]] = []
        while True:
            column = self._expect_ident()
            self._expect_symbol("=")
            assignments.append((column, self._parse_expr()))
            if not self._accept_symbol(","):
                break
        where = None
        if self._accept_keyword("where"):
            where = self._parse_bool_expr()
        return ast.UpdateStatement(table=table, assignments=assignments, where=where)

    def _parse_delete(self) -> ast.DeleteStatement:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_ident()
        where = None
        if self._accept_keyword("where"):
            where = self._parse_bool_expr()
        return ast.DeleteStatement(table=table, where=where)

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("create")
        if self._accept_keyword("table"):
            return self._parse_create_table()
        if self._accept_keyword("index"):
            return self._parse_create_index("hash")
        if self._accept_keyword("hash"):
            self._expect_keyword("index")
            return self._parse_create_index("hash")
        if self._accept_keyword("sorted"):
            self._expect_keyword("index")
            return self._parse_create_index("sorted")
        raise self._error("expected TABLE or INDEX")

    def _parse_create_table(self) -> ast.CreateTableStatement:
        table = self._expect_ident()
        self._expect_symbol("(")
        columns: List[ast.ColumnSpec] = []
        primary_key = None
        while True:
            if self._accept_keyword("primary"):
                self._expect_keyword("key")
                self._expect_symbol("(")
                primary_key = self._expect_ident()
                self._expect_symbol(")")
            else:
                name = self._expect_ident()
                token = self._peek()
                if token.type is not TokenType.KEYWORD or token.text not in _TYPE_WORDS:
                    raise self._error("expected a column type")
                self._advance()
                dtype = _TYPE_WORDS[token.text]
                if token.text == "varchar" and self._accept_symbol("("):
                    if self._peek().type is TokenType.NUMBER:
                        self._advance()
                    self._expect_symbol(")")
                if self._accept_keyword("primary"):
                    self._expect_keyword("key")
                    primary_key = name
                columns.append(ast.ColumnSpec(name=name, dtype=dtype))
            if not self._accept_symbol(","):
                break
        self._expect_symbol(")")
        return ast.CreateTableStatement(
            table=table, columns=columns, primary_key=primary_key
        )

    def _parse_create_index(self, kind: str) -> ast.CreateIndexStatement:
        self._expect_ident()  # index name, accepted and ignored
        self._expect_keyword("on")
        table = self._expect_ident()
        self._expect_symbol("(")
        column = self._expect_ident()
        self._expect_symbol(")")
        if self._accept_keyword("using"):
            if self._accept_keyword("hash"):
                kind = "hash"
            elif self._accept_keyword("sorted"):
                kind = "sorted"
            else:
                raise self._error("expected HASH or SORTED")
        return ast.CreateIndexStatement(table=table, column=column, kind=kind)

    def _parse_drop(self) -> ast.DropTableStatement:
        self._expect_keyword("drop")
        self._expect_keyword("table")
        return ast.DropTableStatement(table=self._expect_ident())

    # ------------------------------------------------------------------
    # Boolean expressions (precedence: OR < AND < NOT < predicate)
    # ------------------------------------------------------------------
    def _parse_bool_expr(self) -> ast.BoolExpr:
        return self._parse_or()

    def _parse_or(self) -> ast.BoolExpr:
        parts = [self._parse_and()]
        while self._accept_keyword("or"):
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        return ast.OrExpr(tuple(parts))

    def _parse_and(self) -> ast.BoolExpr:
        parts = [self._parse_not()]
        while self._accept_keyword("and"):
            parts.append(self._parse_not())
        if len(parts) == 1:
            return parts[0]
        return ast.AndExpr(tuple(parts))

    def _parse_not(self) -> ast.BoolExpr:
        if self._accept_keyword("not"):
            return ast.NotExpr(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.BoolExpr:
        # Parenthesized boolean vs parenthesized arithmetic: try boolean
        # first and fall back (the grammar keeps this unambiguous enough).
        if self._peek().is_symbol("("):
            saved = self.pos
            self._advance()
            try:
                inner = self._parse_bool_expr()
                self._expect_symbol(")")
                return inner
            except SqlSyntaxError:
                self.pos = saved
        left = self._parse_expr()
        token = self._peek()
        if token.type is TokenType.SYMBOL and token.text in _COMPARE_OPS:
            self._advance()
            right = self._parse_expr()
            return ast.Comparison(op=_COMPARE_OPS[token.text], left=left, right=right)
        negated = False
        if self._accept_keyword("not"):
            negated = True
        if self._accept_keyword("between"):
            low = self._parse_expr()
            self._expect_keyword("and")
            high = self._parse_expr()
            return ast.BetweenExpr(operand=left, low=low, high=high, negated=negated)
        if self._accept_keyword("in"):
            self._expect_symbol("(")
            literals = [self._parse_literal()]
            while self._accept_symbol(","):
                literals.append(self._parse_literal())
            self._expect_symbol(")")
            return ast.InListExpr(
                operand=left, items=tuple(literals), negated=negated
            )
        raise self._error("expected a comparison, BETWEEN or IN")

    # ------------------------------------------------------------------
    # Scalar expressions (precedence: +- < */ < unary < atom)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> ast.Expr:
        left = self._parse_term()
        while True:
            token = self._peek()
            if token.is_symbol("+") or token.is_symbol("-"):
                self._advance()
                right = self._parse_term()
                left = ast.BinaryArith(op=token.text, left=left, right=right)
            else:
                return left

    def _parse_term(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.is_symbol("*") or token.is_symbol("/"):
                self._advance()
                right = self._parse_unary()
                left = ast.BinaryArith(op=token.text, left=left, right=right)
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self._accept_symbol("-"):
            return ast.UnaryArith(op="-", operand=self._parse_unary())
        if self._accept_symbol("+"):
            return self._parse_unary()
        return self._parse_atom()

    def _parse_atom(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.type is TokenType.KEYWORD and token.text in _AGG_WORDS:
            return self._parse_aggregate()
        if token.type is TokenType.IDENT:
            self._advance()
            if self._accept_symbol("."):
                column = self._expect_ident()
                return ast.ColumnRef(name=column, qualifier=token.text)
            return ast.ColumnRef(name=token.text)
        if token.is_symbol("("):
            self._advance()
            inner = self._parse_expr()
            self._expect_symbol(")")
            return inner
        raise self._error("expected an expression")

    def _parse_aggregate(self) -> ast.Aggregate:
        token = self._advance()
        func = _AGG_WORDS[token.text]
        self._expect_symbol("(")
        if func is ast.AggFunc.COUNT and self._accept_symbol("*"):
            self._expect_symbol(")")
            return ast.Aggregate(func=func, argument=None)
        distinct = self._accept_keyword("distinct")
        argument = self._parse_expr()
        self._expect_symbol(")")
        return ast.Aggregate(func=func, argument=argument, distinct=distinct)

    def _parse_literal(self) -> ast.Literal:
        token = self._peek()
        negative = False
        if token.is_symbol("-"):
            self._advance()
            negative = True
            token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.text
            value = (
                float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            )
            return ast.Literal(-value if negative else value)
        if negative:
            raise self._error("expected a number after '-'")
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)
        raise self._error("expected a literal")
