"""Blocking network client for the repro server.

:class:`Client` mirrors the engine's session surface (``execute`` /
``explain``), so the CLI shell, tests and benchmarks drive a remote
server exactly the way they drive an in-process engine. Backpressure is
first-class: a ``busy`` frame raises :class:`ServerBusyError` unless the
caller opted into bounded retries with exponential backoff.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..types import Value
from .protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
    ServerBusyError,
    encode_frame,
    exception_from_frame,
    read_frame_blocking,
)


@dataclass
class RemoteResult:
    """Client-side view of a ``result`` frame (QueryResult's wire subset)."""

    statement_type: str
    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[Value, ...]] = field(default_factory=list)
    affected_rows: int = 0
    timings: Dict[str, float] = field(default_factory=dict)
    jits_report = None  # parity with QueryResult for shared CLI paths

    @property
    def row_count(self) -> int:
        return len(self.rows) if self.rows else self.affected_rows

    @property
    def compile_time(self) -> float:
        return self.timings.get("compile", 0.0)

    @property
    def execution_time(self) -> float:
        return self.timings.get("execute", 0.0)

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())


class Client:
    """One blocking connection to a :class:`ReproServer`.

    Not thread-safe (like a session): one client object per thread.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 30.0,
        connect_retries: int = 20,
        retry_delay: float = 0.1,
    ):
        last_error: Optional[OSError] = None
        self._sock: Optional[socket.socket] = None
        for _ in range(max(1, connect_retries)):
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                break
            except OSError as exc:
                last_error = exc
                time.sleep(retry_delay)
        if self._sock is None:
            raise ProtocolError(
                f"could not connect to {host}:{port}: {last_error}"
            )
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self._out_of_order: Dict[object, Dict] = {}
        self.send_raw(
            {
                "type": "hello",
                "version": PROTOCOL_VERSION,
                "client": "repro-client",
            }
        )
        greeting = self.recv_raw()
        if greeting.get("type") == "error":
            raise exception_from_frame(greeting)
        if greeting.get("type") != "hello_ok":
            raise ProtocolError(
                f"unexpected handshake reply {greeting.get('type')!r}"
            )
        self.server_info = greeting

    # ------------------------------------------------------------------
    # Raw frame plumbing (also used by tests to pipeline/flood)
    # ------------------------------------------------------------------
    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def send_raw(self, frame: Dict) -> None:
        if self._sock is None:
            raise ProtocolError("client is closed")
        self._sock.sendall(encode_frame(frame))

    def recv_raw(self) -> Dict:
        try:
            return read_frame_blocking(self._file)
        except socket.timeout as exc:
            raise ProtocolError("timed out waiting for a frame") from exc

    def _request(self, frame: Dict) -> Dict:
        """Send one request and wait for the frame echoing its id."""
        rid = frame["id"]
        self.send_raw(frame)
        if rid in self._out_of_order:
            return self._out_of_order.pop(rid)
        while True:
            reply = self.recv_raw()
            if reply.get("id") == rid:
                return reply
            # A reply for a different id (e.g. the error frame of a
            # cancelled statement): hold it for its requester.
            self._out_of_order[reply.get("id")] = reply

    def _unwrap(self, reply: Dict, want: str) -> Dict:
        if reply["type"] == "error":
            raise exception_from_frame(reply)
        if reply["type"] == "busy":
            raise ServerBusyError(
                "server busy (admission caps full); retry",
                inflight=reply.get("inflight", -1),
                cap=reply.get("cap", -1),
            )
        if reply["type"] != want:
            raise ProtocolError(
                f"expected a {want!r} frame, got {reply['type']!r}"
            )
        return reply

    def _retrying(self, frame_factory, want: str, busy_retries: int,
                  busy_backoff: float) -> Dict:
        attempt = 0
        while True:
            try:
                return self._unwrap(self._request(frame_factory()), want)
            except ServerBusyError:
                if attempt >= busy_retries:
                    raise
                time.sleep(busy_backoff * (2 ** attempt))
                attempt += 1

    # ------------------------------------------------------------------
    # Session-shaped surface
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        busy_retries: int = 0,
        busy_backoff: float = 0.05,
    ) -> RemoteResult:
        """Execute one statement on the server."""
        reply = self._retrying(
            lambda: {"type": "query", "id": self.next_id(), "sql": sql},
            "result",
            busy_retries,
            busy_backoff,
        )
        return RemoteResult(
            statement_type=reply.get("statement_type", "unknown"),
            columns=list(reply.get("columns", [])),
            rows=[tuple(row) for row in reply.get("rows", [])],
            affected_rows=int(reply.get("affected_rows", 0)),
            timings={
                str(k): float(v)
                for k, v in dict(reply.get("timings", {})).items()
            },
        )

    def explain(
        self,
        sql: str,
        busy_retries: int = 0,
        busy_backoff: float = 0.05,
    ) -> str:
        reply = self._retrying(
            lambda: {"type": "explain", "id": self.next_id(), "sql": sql},
            "plan",
            busy_retries,
            busy_backoff,
        )
        return str(reply.get("text", ""))

    def stats(self) -> Dict:
        reply = self._unwrap(
            self._request({"type": "stats", "id": self.next_id()}),
            "stats_result",
        )
        return dict(reply.get("stats", {}))

    def fingerprints(
        self,
        limit: int = 20,
        sort: str = "total_ms",
        offset: int = 0,
    ) -> Dict:
        """Top-N statement fingerprints by a sortable metric (paginated).

        The server clamps ``limit`` (currently to 200 rows per frame);
        page with ``offset`` for deeper listings.
        """
        reply = self._unwrap(
            self._request(
                {
                    "type": "fingerprints",
                    "id": self.next_id(),
                    "limit": limit,
                    "sort": sort,
                    "offset": offset,
                }
            ),
            "fingerprints_result",
        )
        return {
            "enabled": bool(reply.get("enabled", False)),
            "fingerprints": list(reply.get("fingerprints", [])),
            "summary": dict(reply.get("summary", {})),
            "limit": reply.get("limit", limit),
            "offset": reply.get("offset", offset),
            "sort": reply.get("sort", sort),
        }

    def ping(self) -> float:
        """Round-trip a ping; returns the latency in seconds."""
        started = time.perf_counter()
        self._unwrap(
            self._request({"type": "ping", "id": self.next_id()}), "pong"
        )
        return time.perf_counter() - started

    def cancel(self, target: int) -> bool:
        """Best-effort cancel of a pipelined request by id."""
        reply = self._unwrap(
            self._request(
                {"type": "cancel", "id": self.next_id(), "target": target}
            ),
            "cancel_result",
        )
        return bool(reply.get("cancelled", False))

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._file.close()
            except OSError:
                pass
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 30.0,
    connect_retries: int = 20,
    retry_delay: float = 0.1,
) -> Client:
    """Open a blocking client connection (retries while the server boots)."""
    return Client(
        host=host,
        port=port,
        timeout=timeout,
        connect_retries=connect_retries,
        retry_delay=retry_delay,
    )
