"""Blocking network client for the repro server.

:class:`Client` mirrors the engine's session surface (``execute`` /
``explain``), so the CLI shell, tests and benchmarks drive a remote
server exactly the way they drive an in-process engine. The client
speaks protocol version 2 by default — large SELECT results arrive as
binary columnar chunks and reassemble into the same row tuples the v1
JSON protocol delivers; pass ``protocol_version=1`` to force the legacy
JSON wire. ``iterate()`` exposes the stream incrementally, yielding row
batches as chunks arrive. Backpressure is first-class: a ``busy`` frame
raises :class:`ServerBusyError` unless the caller opted into bounded
retries with jittered exponential backoff.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..types import Value
from .frames import StreamDecoder, peek_request_id
from .protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION_2,
    ProtocolError,
    ServerBusyError,
    encode_frame,
    exception_from_frame,
    read_wire_frame_blocking,
)

#: Longest single backoff sleep between busy retries (seconds).
MAX_BUSY_BACKOFF = 2.0


def _backoff_delay(base: float, attempt: int) -> float:
    """Jittered exponential backoff: uniformly random in (0.5x, 1x] of the
    doubled base, so a thundering herd of retrying clients decorrelates."""
    ceiling = min(base * (2**attempt), MAX_BUSY_BACKOFF)
    return ceiling * (0.5 + 0.5 * random.random())


def _parse_snapshots(frame: Dict) -> Optional[Dict[str, Tuple[int, int]]]:
    """Decode a frame's MVCC snapshot map (JSON lists -> tuples)."""
    raw = frame.get("snapshots")
    if not raw:
        return None
    return {
        str(name): (int(pair[0]), int(pair[1]))
        for name, pair in dict(raw).items()
    }


@dataclass
class RemoteResult:
    """Client-side view of a ``result`` frame (QueryResult's wire subset)."""

    statement_type: str
    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[Value, ...]] = field(default_factory=list)
    affected_rows: int = 0
    timings: Dict[str, float] = field(default_factory=dict)
    streamed: bool = False  # arrived as v2 binary chunks, not JSON rows
    # MVCC provenance relayed by the server: {table: (epoch, stamp)} of
    # the snapshot generations this statement observed or published.
    snapshots: Optional[Dict[str, Tuple[int, int]]] = None
    jits_report = None  # parity with QueryResult for shared CLI paths

    @property
    def row_count(self) -> int:
        return len(self.rows) if self.rows else self.affected_rows

    @property
    def compile_time(self) -> float:
        return self.timings.get("compile", 0.0)

    @property
    def execution_time(self) -> float:
        return self.timings.get("execute", 0.0)

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())


class Client:
    """One blocking connection to a :class:`ReproServer`.

    Not thread-safe (like a session): one client object per thread.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 30.0,
        connect_retries: int = 20,
        retry_delay: float = 0.1,
        protocol_version: int = PROTOCOL_VERSION_2,
        max_retries: int = 0,
        busy_backoff: float = 0.05,
    ):
        last_error: Optional[OSError] = None
        self._sock: Optional[socket.socket] = None
        for _ in range(max(1, connect_retries)):
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                break
            except OSError as exc:
                last_error = exc
                time.sleep(retry_delay)
        if self._sock is None:
            raise ProtocolError(
                f"could not connect to {host}:{port}: {last_error}"
            )
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self._out_of_order: Dict[object, Dict] = {}
        # request id -> StreamDecoder of a v2 result mid-stream.
        self._streams: Dict[object, StreamDecoder] = {}
        # id of the most recent query/iterate request (Ctrl-C cancel hook).
        self.last_request_id = 0
        # Default busy-retry policy; per-call arguments override.
        self.max_retries = max_retries
        self.busy_backoff = busy_backoff
        self.send_raw(
            {
                "type": "hello",
                "version": protocol_version,
                "client": "repro-client",
            }
        )
        greeting = self.recv_raw()
        if greeting.get("type") == "error":
            raise exception_from_frame(greeting)
        if greeting.get("type") != "hello_ok":
            raise ProtocolError(
                f"unexpected handshake reply {greeting.get('type')!r}"
            )
        self.server_info = greeting
        self.protocol_version = int(
            greeting.get("version", protocol_version)
        )

    # ------------------------------------------------------------------
    # Raw frame plumbing (also used by tests to pipeline/flood)
    # ------------------------------------------------------------------
    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def send_raw(self, frame: Dict) -> None:
        if self._sock is None:
            raise ProtocolError("client is closed")
        self._sock.sendall(encode_frame(frame))

    def recv_wire(self) -> Tuple[str, object]:
        """One wire frame: ``("json", dict)`` or ``("binary", bytes)``."""
        try:
            return read_wire_frame_blocking(self._file)
        except socket.timeout as exc:
            raise ProtocolError("timed out waiting for a frame") from exc

    def recv_raw(self) -> Dict:
        kind, frame = self.recv_wire()
        if kind != "json":
            raise ProtocolError("unexpected binary frame")
        return frame

    def _pump(self) -> Optional[Dict]:
        """Read one wire frame and advance protocol state.

        Returns a completed JSON reply (``result_end`` collapses the
        whole stream into a synthetic ``result`` frame) or ``None`` when
        the frame only advanced an in-flight stream.
        """
        kind, payload = self.recv_wire()
        if kind == "binary":
            rid = peek_request_id(payload)
            decoder = self._streams.get(rid)
            if decoder is None:
                raise ProtocolError(
                    f"binary frame for unknown stream id {rid}"
                )
            decoder.feed(payload)
            return None
        frame = payload
        ftype = frame.get("type")
        if ftype == "result_header":
            self._streams[frame.get("id")] = StreamDecoder(frame)
            return None
        if ftype == "result_end":
            rid = frame.get("id")
            decoder = self._streams.pop(rid, None)
            if decoder is None:
                raise ProtocolError(
                    f"result_end without a stream for id {rid}"
                )
            decoder.finish(frame)
            header = decoder.header
            return {
                "type": "result",
                "id": rid,
                "statement_type": header.get("statement_type", "select"),
                "columns": decoder.columns,
                "rows": decoder.rows,
                "affected_rows": header.get("affected_rows", 0),
                "timings": header.get("timings", {}),
                "snapshots": header.get("snapshots"),
                "_streamed": True,
                "_decoder": decoder,
            }
        return frame

    def _request(self, frame: Dict) -> Dict:
        """Send one request and wait for the frame echoing its id."""
        rid = frame["id"]
        self.send_raw(frame)
        if rid in self._out_of_order:
            return self._out_of_order.pop(rid)
        while True:
            reply = self._pump()
            if reply is None:
                continue
            if reply.get("id") == rid:
                return reply
            # A reply for a different id (e.g. the error frame of a
            # cancelled statement): hold it for its requester.
            self._out_of_order[reply.get("id")] = reply

    def _unwrap(self, reply: Dict, want: str) -> Dict:
        if reply["type"] == "error":
            raise exception_from_frame(reply)
        if reply["type"] == "busy":
            raise ServerBusyError(
                "server busy (admission caps full); retry",
                inflight=reply.get("inflight", -1),
                cap=reply.get("cap", -1),
            )
        if reply["type"] != want:
            raise ProtocolError(
                f"expected a {want!r} frame, got {reply['type']!r}"
            )
        return reply

    def _resolve_retry(
        self, busy_retries: Optional[int], busy_backoff: Optional[float]
    ) -> Tuple[int, float]:
        return (
            self.max_retries if busy_retries is None else busy_retries,
            self.busy_backoff if busy_backoff is None else busy_backoff,
        )

    def _retrying(self, frame_factory, want: str, busy_retries: int,
                  busy_backoff: float) -> Dict:
        attempt = 0
        while True:
            try:
                return self._unwrap(self._request(frame_factory()), want)
            except ServerBusyError as exc:
                if attempt >= busy_retries:
                    if busy_retries > 0:
                        raise ServerBusyError(
                            f"server still busy after {attempt + 1} "
                            f"attempts ({busy_retries} retries with "
                            "backoff exhausted)",
                            inflight=exc.inflight,
                            cap=exc.cap,
                            attempts=attempt + 1,
                        ) from exc
                    raise
                time.sleep(_backoff_delay(busy_backoff, attempt))
                attempt += 1

    # ------------------------------------------------------------------
    # Session-shaped surface
    # ------------------------------------------------------------------
    def execute(
        self,
        sql: str,
        busy_retries: Optional[int] = None,
        busy_backoff: Optional[float] = None,
    ) -> RemoteResult:
        """Execute one statement on the server.

        Retry arguments default to the client-level ``max_retries`` /
        ``busy_backoff`` knobs.
        """
        busy_retries, busy_backoff = self._resolve_retry(
            busy_retries, busy_backoff
        )
        reply = self._retrying(
            lambda: {"type": "query", "id": self.next_id(), "sql": sql},
            "result",
            busy_retries,
            busy_backoff,
        )
        return RemoteResult(
            statement_type=reply.get("statement_type", "unknown"),
            columns=list(reply.get("columns", [])),
            rows=[tuple(row) for row in reply.get("rows", [])],
            affected_rows=int(reply.get("affected_rows", 0)),
            timings={
                str(k): float(v)
                for k, v in dict(reply.get("timings", {})).items()
            },
            streamed=bool(reply.get("_streamed", False)),
            snapshots=_parse_snapshots(reply),
        )

    def _stream_events(self, sql: str, busy_retries: int,
                       busy_backoff: float):
        """Core streaming loop: yields ``(columns, rows)`` batches as
        chunks decode; returns the final reply frame (generator value)."""
        attempt = 0
        while True:
            rid = self.next_id()
            self.last_request_id = rid
            self.send_raw({"type": "query", "id": rid, "sql": sql})
            reply: Optional[Dict] = self._out_of_order.pop(rid, None)
            while reply is None:
                reply = self._pump()
                decoder = self._streams.get(rid)
                if decoder is not None:
                    batch = decoder.drain_rows()
                    if batch:
                        yield decoder.columns, batch
                if reply is not None and reply.get("id") != rid:
                    self._out_of_order[reply.get("id")] = reply
                    reply = None
            if reply.get("type") == "busy" and attempt < busy_retries:
                time.sleep(_backoff_delay(busy_backoff, attempt))
                attempt += 1
                continue
            final = self._unwrap(reply, "result")
            if final.get("_streamed"):
                # Anything decoded between the last chunk and result_end.
                tail = final["_decoder"].drain_rows()
                if tail:
                    yield final["_decoder"].columns, tail
            return final

    def iterate(
        self,
        sql: str,
        busy_retries: Optional[int] = None,
        busy_backoff: Optional[float] = None,
    ) -> Iterator[List[Tuple[Value, ...]]]:
        """Execute one statement, yielding row batches as they arrive.

        On a v2 connection each streamed chunk becomes one batch the
        moment it is decoded — the first batch is available before the
        server finishes sending the result. Small (unstreamed) results
        and v1 connections yield a single batch. Raises exactly like
        :meth:`execute` on errors.
        """
        busy_retries, busy_backoff = self._resolve_retry(
            busy_retries, busy_backoff
        )
        events = self._stream_events(sql, busy_retries, busy_backoff)
        while True:
            try:
                _columns, batch = next(events)
            except StopIteration as stop:
                final = stop.value or {}
                if not final.get("_streamed") and final.get("rows"):
                    yield [tuple(row) for row in final["rows"]]
                return
            yield batch

    def execute_streaming(
        self,
        sql: str,
        on_batch,
        busy_retries: Optional[int] = None,
        busy_backoff: Optional[float] = None,
    ) -> RemoteResult:
        """:meth:`execute`, invoking ``on_batch(columns, rows)`` as each
        chunk decodes (once with the whole result when unstreamed). The
        returned result still carries all rows."""
        busy_retries, busy_backoff = self._resolve_retry(
            busy_retries, busy_backoff
        )
        events = self._stream_events(sql, busy_retries, busy_backoff)
        while True:
            try:
                columns, batch = next(events)
            except StopIteration as stop:
                final = stop.value or {}
                break
            on_batch(columns, batch)
        rows = [tuple(row) for row in final.get("rows", [])]
        if not final.get("_streamed") and rows:
            on_batch(list(final.get("columns", [])), rows)
        return RemoteResult(
            statement_type=final.get("statement_type", "unknown"),
            columns=list(final.get("columns", [])),
            rows=rows,
            affected_rows=int(final.get("affected_rows", 0)),
            timings={
                str(k): float(v)
                for k, v in dict(final.get("timings", {})).items()
            },
            streamed=bool(final.get("_streamed", False)),
            snapshots=_parse_snapshots(final),
        )

    def explain(
        self,
        sql: str,
        busy_retries: Optional[int] = None,
        busy_backoff: Optional[float] = None,
    ) -> str:
        busy_retries, busy_backoff = self._resolve_retry(
            busy_retries, busy_backoff
        )
        reply = self._retrying(
            lambda: {"type": "explain", "id": self.next_id(), "sql": sql},
            "plan",
            busy_retries,
            busy_backoff,
        )
        return str(reply.get("text", ""))

    def stats(self) -> Dict:
        reply = self._unwrap(
            self._request({"type": "stats", "id": self.next_id()}),
            "stats_result",
        )
        return dict(reply.get("stats", {}))

    def fingerprints(
        self,
        limit: int = 20,
        sort: str = "total_ms",
        offset: int = 0,
    ) -> Dict:
        """Top-N statement fingerprints by a sortable metric (paginated).

        The server clamps ``limit`` (currently to 200 rows per frame);
        page with ``offset`` for deeper listings.
        """
        reply = self._unwrap(
            self._request(
                {
                    "type": "fingerprints",
                    "id": self.next_id(),
                    "limit": limit,
                    "sort": sort,
                    "offset": offset,
                }
            ),
            "fingerprints_result",
        )
        return {
            "enabled": bool(reply.get("enabled", False)),
            "fingerprints": list(reply.get("fingerprints", [])),
            "summary": dict(reply.get("summary", {})),
            "limit": reply.get("limit", limit),
            "offset": reply.get("offset", offset),
            "sort": reply.get("sort", sort),
        }

    def ping(self) -> float:
        """Round-trip a ping; returns the latency in seconds."""
        started = time.perf_counter()
        self._unwrap(
            self._request({"type": "ping", "id": self.next_id()}), "pong"
        )
        return time.perf_counter() - started

    def cancel(self, target: int) -> bool:
        """Best-effort cancel of a pipelined request by id."""
        reply = self._unwrap(
            self._request(
                {"type": "cancel", "id": self.next_id(), "target": target}
            ),
            "cancel_result",
        )
        return bool(reply.get("cancelled", False))

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._file.close()
            except OSError:
                pass
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 30.0,
    connect_retries: int = 20,
    retry_delay: float = 0.1,
    protocol_version: int = PROTOCOL_VERSION_2,
    max_retries: int = 0,
    busy_backoff: float = 0.05,
) -> Client:
    """Open a blocking client connection (retries while the server boots)."""
    return Client(
        host=host,
        port=port,
        timeout=timeout,
        connect_retries=connect_retries,
        retry_delay=retry_delay,
        protocol_version=protocol_version,
        max_retries=max_retries,
        busy_backoff=busy_backoff,
    )
