"""Binary columnar result frames (wire protocol version 2).

A v2 SELECT whose row count clears the server's streaming threshold is
shipped as::

    JSON    {"type": "result_header", "id": n, "columns": [...],
             "dtypes": [...], "row_count": r, "chunk_rows": c,
             "n_chunks": k, ...}
    binary  DICT frame, one per string column (result-local dictionary)
    binary  CHUNK frame * k (raw little-endian column buffers)
    JSON    {"type": "result_end", "id": n, "chunks": k}

Binary payload layout (everything little-endian)::

    u8  kind            1 = DICT, 2 = CHUNK
    i64 request_id

    DICT:   u32 column_index, u32 n_entries,
            u32 offsets[n_entries + 1], utf-8 blob
    CHUNK:  u32 chunk_index, u32 n_rows, u16 n_columns, then per column:
            u8 dtype_code, u64 nbytes, raw buffer

Dtype codes:

    ====  ==========  =============================================
    code  buffer      meaning
    ====  ==========  =============================================
    1     int64       integer column values
    2     float64     float column values
    3     int32       codes into the column's DICT frame entries
    ====  ==========  =============================================

String columns are dictionary-encoded with a *result-local* dictionary:
the table's (append-only, unbounded) dictionary codes are compacted with
``np.unique(..., return_inverse=True)`` so the wire carries only the
distinct strings that actually appear in the result, once, plus int32
codes per row. The compaction also snapshots the codes, so chunk buffers
never alias live table arrays.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..types import DataType, Value
from .protocol import ProtocolError

#: Rows per CHUNK frame. 64Ki rows of int64 is 512 KiB per column —
#: comfortably under the 32 MiB frame cap for any realistic column count.
DEFAULT_CHUNK_ROWS = 65536

KIND_DICT = 1
KIND_CHUNK = 2

DTYPE_INT64 = 1
DTYPE_FLOAT64 = 2
DTYPE_DICT32 = 3

_PREFIX = struct.Struct("<Bq")  # kind, request_id
_DICT_HEAD = struct.Struct("<II")  # column_index, n_entries
_CHUNK_HEAD = struct.Struct("<IIH")  # chunk_index, n_rows, n_columns
_COL_HEAD = struct.Struct("<BQ")  # dtype_code, nbytes

_NUMPY_FOR_CODE = {
    DTYPE_INT64: np.dtype("<i8"),
    DTYPE_FLOAT64: np.dtype("<f8"),
    DTYPE_DICT32: np.dtype("<i4"),
}


def encode_dict_frame(
    request_id: int, column_index: int, entries: Sequence[str]
) -> bytes:
    """One string column's result-local dictionary."""
    blobs = [entry.encode("utf-8") for entry in entries]
    offsets = np.zeros(len(blobs) + 1, dtype="<u4")
    if blobs:
        offsets[1:] = np.cumsum([len(b) for b in blobs])
    parts = [
        _PREFIX.pack(KIND_DICT, request_id),
        _DICT_HEAD.pack(column_index, len(blobs)),
        offsets.tobytes(),
    ]
    parts.extend(blobs)
    return b"".join(parts)


def encode_chunk_frame(
    request_id: int,
    chunk_index: int,
    columns: Sequence[Tuple[int, np.ndarray]],
) -> bytes:
    """One horizontal slice of the result: ``(dtype_code, array)`` pairs."""
    n_rows = len(columns[0][1]) if columns else 0
    parts = [
        _PREFIX.pack(KIND_CHUNK, request_id),
        _CHUNK_HEAD.pack(chunk_index, n_rows, len(columns)),
    ]
    for dtype_code, array in columns:
        buf = np.ascontiguousarray(array, dtype=_NUMPY_FOR_CODE[dtype_code])
        raw = buf.tobytes()
        parts.append(_COL_HEAD.pack(dtype_code, len(raw)))
        parts.append(raw)
    return b"".join(parts)


# ----------------------------------------------------------------------
# Server side: QueryResult -> frames
# ----------------------------------------------------------------------
def _wire_columns(result) -> Tuple[List[Tuple[int, np.ndarray]], Dict[int, List[str]]]:
    """Per-column wire arrays plus result-local string dictionaries."""
    arrays: List[Tuple[int, np.ndarray]] = []
    dictionaries: Dict[int, List[str]] = {}
    for index, vector in enumerate(result.vectors):
        if vector.dictionary is not None:
            codes = np.asarray(vector.values, dtype=np.int64)
            if len(codes):
                unique, inverse = np.unique(codes, return_inverse=True)
                dictionaries[index] = vector.dictionary.decode_many(unique)
                arrays.append((DTYPE_DICT32, inverse.astype("<i4")))
            else:
                dictionaries[index] = []
                arrays.append((DTYPE_DICT32, np.empty(0, dtype="<i4")))
        elif vector.dtype is DataType.INT:
            arrays.append((DTYPE_INT64, np.asarray(vector.values, dtype="<i8")))
        else:
            arrays.append(
                (DTYPE_FLOAT64, np.asarray(vector.values, dtype="<f8"))
            )
    return arrays, dictionaries


def build_stream_frames(
    request_id: int, result, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> Tuple[Dict, List[bytes], Dict]:
    """Frames for one streamed SELECT: (header, binary payloads, end).

    ``result`` must carry columnar vectors (``EngineConfig.stream_vectors``);
    the caller wraps the binary payloads with
    :func:`repro.server.protocol.encode_binary_frame`.
    """
    if result.vectors is None:
        raise ProtocolError(
            "result has no columnar vectors; enable "
            "EngineConfig.stream_vectors to stream it"
        )
    arrays, dictionaries = _wire_columns(result)
    n_rows = len(arrays[0][1]) if arrays else 0
    n_chunks = (n_rows + chunk_rows - 1) // chunk_rows if n_rows else 0
    header = {
        "type": "result_header",
        "id": request_id,
        "statement_type": result.statement_type,
        "columns": list(result.columns),
        "dtypes": [v.dtype.name.lower() for v in result.vectors],
        "row_count": n_rows,
        "affected_rows": result.affected_rows,
        "chunk_rows": chunk_rows,
        "n_chunks": n_chunks,
        "timings": dict(result.timings),
    }
    snapshots = getattr(result, "snapshots", None)
    if snapshots:
        # MVCC provenance (see the JSON result frame): per-table
        # [epoch, stamp] of the pinned/published generations.
        header["snapshots"] = {
            name: list(pair) for name, pair in snapshots.items()
        }
    payloads: List[bytes] = []
    for index in sorted(dictionaries):
        payloads.append(
            encode_dict_frame(request_id, index, dictionaries[index])
        )
    for chunk_index in range(n_chunks):
        start = chunk_index * chunk_rows
        stop = min(start + chunk_rows, n_rows)
        payloads.append(
            encode_chunk_frame(
                request_id,
                chunk_index,
                [(code, arr[start:stop]) for code, arr in arrays],
            )
        )
    end = {"type": "result_end", "id": request_id, "chunks": n_chunks}
    return header, payloads, end


# ----------------------------------------------------------------------
# Client side: frames -> rows
# ----------------------------------------------------------------------
def peek_request_id(payload: bytes) -> int:
    """The request id a binary payload belongs to (cheap prefix read)."""
    if len(payload) < _PREFIX.size:
        raise ProtocolError("binary frame shorter than its prefix")
    return _PREFIX.unpack_from(payload, 0)[1]


def parse_binary_frame(payload: bytes) -> Tuple[int, int, object]:
    """Parse one binary payload into ``(kind, request_id, body)``.

    DICT body: ``(column_index, [entries])``. CHUNK body:
    ``(chunk_index, [(dtype_code, array), ...])``.
    """
    if len(payload) < _PREFIX.size:
        raise ProtocolError("binary frame shorter than its prefix")
    kind, request_id = _PREFIX.unpack_from(payload, 0)
    offset = _PREFIX.size
    if kind == KIND_DICT:
        if len(payload) < offset + _DICT_HEAD.size:
            raise ProtocolError("truncated DICT frame header")
        column_index, n_entries = _DICT_HEAD.unpack_from(payload, offset)
        offset += _DICT_HEAD.size
        offsets_bytes = 4 * (n_entries + 1)
        if len(payload) < offset + offsets_bytes:
            raise ProtocolError("truncated DICT frame offsets")
        offsets = np.frombuffer(
            payload, dtype="<u4", count=n_entries + 1, offset=offset
        )
        offset += offsets_bytes
        blob = payload[offset:]
        if n_entries and len(blob) < int(offsets[-1]):
            raise ProtocolError("truncated DICT frame blob")
        entries = [
            blob[int(offsets[i]) : int(offsets[i + 1])].decode("utf-8")
            for i in range(n_entries)
        ]
        return kind, request_id, (column_index, entries)
    if kind == KIND_CHUNK:
        if len(payload) < offset + _CHUNK_HEAD.size:
            raise ProtocolError("truncated CHUNK frame header")
        chunk_index, n_rows, n_columns = _CHUNK_HEAD.unpack_from(
            payload, offset
        )
        offset += _CHUNK_HEAD.size
        columns: List[Tuple[int, np.ndarray]] = []
        for _ in range(n_columns):
            if len(payload) < offset + _COL_HEAD.size:
                raise ProtocolError("truncated CHUNK column header")
            dtype_code, nbytes = _COL_HEAD.unpack_from(payload, offset)
            offset += _COL_HEAD.size
            dtype = _NUMPY_FOR_CODE.get(dtype_code)
            if dtype is None:
                raise ProtocolError(f"unknown dtype code {dtype_code}")
            if nbytes % dtype.itemsize or nbytes // dtype.itemsize != n_rows:
                raise ProtocolError(
                    f"CHUNK column carries {nbytes} bytes, expected "
                    f"{n_rows} x {dtype.itemsize}"
                )
            if len(payload) < offset + nbytes:
                raise ProtocolError("truncated CHUNK column buffer")
            columns.append(
                (
                    dtype_code,
                    np.frombuffer(payload, dtype=dtype, count=n_rows, offset=offset),
                )
            )
            offset += nbytes
        return kind, request_id, (chunk_index, columns)
    raise ProtocolError(f"unknown binary frame kind {kind}")


class StreamDecoder:
    """Reassembles one streamed result on the client.

    Feed the ``result_header`` dict at construction, every binary payload
    via :meth:`feed`, and close with the ``result_end`` frame. Chunks
    decode incrementally: :meth:`drain_rows` yields finished row tuples
    as soon as their chunk arrives, so a REPL can paint the first batch
    before the query finishes streaming.
    """

    def __init__(self, header: Dict):
        self.header = header
        self.columns: List[str] = list(header.get("columns", []))
        self.row_count = int(header.get("row_count", 0))
        self.n_chunks = int(header.get("n_chunks", 0))
        self._dictionaries: Dict[int, np.ndarray] = {}
        self._next_chunk = 0
        self._pending_rows: List[Tuple[Value, ...]] = []
        self.rows: List[Tuple[Value, ...]] = []
        self.complete = False

    def feed(self, payload: bytes) -> None:
        kind, _rid, body = parse_binary_frame(payload)
        if kind == KIND_DICT:
            column_index, entries = body
            # Object array: one vectorized fancy-index decodes a chunk's
            # codes instead of a Python-level lookup per row.
            self._dictionaries[column_index] = np.array(entries, dtype=object)
            return
        chunk_index, columns = body
        if chunk_index != self._next_chunk:
            raise ProtocolError(
                f"chunk {chunk_index} arrived out of order "
                f"(expected {self._next_chunk})"
            )
        self._next_chunk += 1
        decoded: List[list] = []
        for index, (dtype_code, array) in enumerate(columns):
            if dtype_code == DTYPE_DICT32:
                entries = self._dictionaries.get(index)
                if entries is None:
                    raise ProtocolError(
                        f"CHUNK references column {index} dictionary "
                        "before its DICT frame"
                    )
                decoded.append(
                    entries[array.astype(np.int64)].tolist()
                    if len(array)
                    else []
                )
            else:
                decoded.append(array.tolist())
        chunk_rows = list(zip(*decoded)) if decoded else []
        self._pending_rows.extend(chunk_rows)
        self.rows.extend(chunk_rows)

    def drain_rows(self) -> List[Tuple[Value, ...]]:
        """Rows decoded since the last drain (incremental rendering)."""
        pending, self._pending_rows = self._pending_rows, []
        return pending

    def finish(self, end_frame: Dict) -> None:
        chunks = int(end_frame.get("chunks", self.n_chunks))
        if self._next_chunk != chunks:
            raise ProtocolError(
                f"stream ended after {self._next_chunk} of {chunks} chunks"
            )
        if self.row_count and len(self.rows) != self.row_count:
            raise ProtocolError(
                f"stream carried {len(self.rows)} rows, header promised "
                f"{self.row_count}"
            )
        self.complete = True
