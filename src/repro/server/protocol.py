"""Wire protocol for the network front-end.

Frames are length-prefixed: a 4-byte big-endian length word followed by
the payload. With the high bit of the length word clear the payload is a
UTF-8 JSON object; with it set (:data:`BINARY_FLAG`, protocol version 2
only, server -> client only) the payload is a binary columnar frame (see
:mod:`repro.server.frames`). Every JSON frame carries a ``type``; every
request carries a client-chosen ``id`` that the matching response echoes,
so clients may pipeline requests and match replies out of order.

Handshake (first frame in each direction)::

    C -> S   {"type": "hello", "version": 2, "client": "..."}
    S -> C   {"type": "hello_ok", "version": 2, "server": "repro/x.y"}

The server accepts version 1 or 2 and echoes the negotiated version. A
version-1 connection speaks pure length-prefixed JSON, byte-compatible
with pre-v2 servers and clients. On a version-2 connection large SELECT
results stream as a JSON ``result_header``, binary dictionary/chunk
frames, then a JSON ``result_end``; ``cancel`` additionally interrupts
*running* statements at morsel/checkpoint boundaries.

Requests::

    {"type": "query",   "id": n, "sql": "..."}   any SQL statement
    {"type": "explain", "id": n, "sql": "..."}   plan text, no execution
    {"type": "stats",   "id": n}                 engine counter snapshot
    {"type": "fingerprints", "id": n,            top-N statement
     "limit": k, "sort": "...", "offset": j}     fingerprints (paginated)
    {"type": "ping",    "id": n}                 liveness probe
    {"type": "cancel",  "id": n, "target": m}    dequeue or interrupt m

Responses::

    {"type": "result", "id": n, "statement_type": ..., "columns": [...],
     "rows": [[...]], "affected_rows": k, "timings": {...}}
    {"type": "result_header", "id": n, ...}  then binary frames, then
    {"type": "result_end", "id": n, "chunks": k}      (v2 streaming)
    {"type": "plan", "id": n, "text": "..."}
    {"type": "stats_result", "id": n, "stats": {...}}
    {"type": "fingerprints_result", "id": n, "enabled": bool,
     "fingerprints": [...], "summary": {...}, "limit": k, "offset": j}
    {"type": "pong", "id": n}
    {"type": "cancel_result", "id": n, "target": m, "cancelled": bool}
    {"type": "busy", "id": n, "retryable": true, "inflight": k, "cap": c}
    {"type": "error", "id": n, "code": ..., "error_class": ...,
     "message": "...", "position": p}

``busy`` is the backpressure signal: the request was *not* admitted (the
per-client in-flight cap or the server admission limit is full) and can
be retried unchanged. Error frames carry the :class:`ReproError` leaf
class name, a coarse ``code`` for programmatic dispatch (``SYNTAX`` /
``CONFIG`` / ``RUNTIME`` / ``PROTOCOL`` / ``CANCELLED`` / ``INTERNAL``)
and, for syntax errors, the 0-based ``position`` of the offending token.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import BinaryIO, Dict, Optional, Type

import numpy as np

from ..errors import (
    BindingError,
    CatalogError,
    ConfigError,
    ExecutionError,
    PlanningError,
    ReproError,
    SqlSyntaxError,
    StatementCancelledError,
    StatisticsError,
    StorageError,
)

PROTOCOL_VERSION = 1
PROTOCOL_VERSION_2 = 2
#: Versions a v2 server accepts in ``hello`` (negotiated downgrade: a v1
#: client keeps the pure-JSON protocol, byte-for-byte).
SUPPORTED_VERSIONS = (PROTOCOL_VERSION, PROTOCOL_VERSION_2)
DEFAULT_PORT = 7433
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: High bit of the length word marks a binary (columnar) payload; JSON
#: frames keep it clear. Payloads are capped at 32 MiB, so real lengths
#: never reach bit 31 and the flag is unambiguous on the wire.
BINARY_FLAG = 0x80000000

# Error codes carried in error frames.
CODE_SYNTAX = "SYNTAX"
CODE_CONFIG = "CONFIG"
CODE_RUNTIME = "RUNTIME"
CODE_PROTOCOL = "PROTOCOL"
CODE_CANCELLED = "CANCELLED"
CODE_INTERNAL = "INTERNAL"
CODE_FRAME_TOO_LARGE = "FRAME_TOO_LARGE"


class ProtocolError(ReproError):
    """Malformed frame, broken framing, or a handshake violation."""


class FrameTooLargeError(ProtocolError):
    """A single frame would exceed :data:`MAX_FRAME_BYTES`.

    Raised server-side when a JSON result does not fit in one frame; the
    error frame names the cap and points at the v2 streaming protocol,
    which ships results as bounded-size binary chunks instead.
    """


class ServerBusyError(ReproError):
    """The server refused to admit the request (retryable backpressure).

    ``attempts`` counts how many times the request was tried before the
    error surfaced (1 when the caller did not opt into retries).
    """

    def __init__(
        self,
        message: str,
        inflight: int = -1,
        cap: int = -1,
        attempts: int = 1,
    ):
        super().__init__(message)
        self.inflight = inflight
        self.cap = cap
        self.attempts = attempts


class CancelledStatementError(ReproError):
    """The statement was cancelled before it started executing."""


#: Exception classes reconstructible from an ``error_class`` frame field.
_ERROR_CLASSES: Dict[str, Type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        ReproError,
        SqlSyntaxError,
        CatalogError,
        BindingError,
        ConfigError,
        StorageError,
        PlanningError,
        ExecutionError,
        StatisticsError,
        ProtocolError,
        FrameTooLargeError,
        CancelledStatementError,
        StatementCancelledError,
    )
}


def _json_default(value):
    """Tolerate numpy scalars leaking into result rows."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"unserializable value of type {type(value).__name__}")


def encode_frame(frame: Dict) -> bytes:
    """Serialize one frame to its wire form (header + JSON payload)."""
    payload = json.dumps(
        frame, separators=(",", ":"), default=_json_default
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ({MAX_FRAME_BYTES // (1024 * 1024)} MiB) "
            "frame cap; fetch large results over protocol version 2, which "
            "streams them as bounded-size binary chunks"
        )
    return _HEADER.pack(len(payload)) + payload


def encode_binary_frame(payload: bytes) -> bytes:
    """Wrap a binary (columnar) payload: length word with the high bit set."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"binary frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload) | BINARY_FLAG) + payload


def decode_payload(payload: bytes) -> Dict:
    """Parse a frame payload; the result is guaranteed to be an object
    with a string ``type``."""
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise ProtocolError("frame must be a JSON object with a 'type'")
    return frame


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict]:
    """Read one frame from an asyncio stream; None on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (word,) = _HEADER.unpack(header)
    if word & BINARY_FLAG:
        # Clients never send binary frames; the server-bound direction of
        # the wire is pure JSON in both protocol versions.
        raise ProtocolError("unexpected binary frame from client")
    _check_length(word)
    try:
        payload = await reader.readexactly(word)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(payload)


def read_wire_frame_blocking(stream: BinaryIO):
    """Read one frame from a blocking stream, JSON or binary.

    Returns ``("json", dict)`` for JSON frames and ``("binary", bytes)``
    for binary columnar payloads (length word with :data:`BINARY_FLAG`
    set). This is the v2 client's read primitive;
    :func:`read_frame_blocking` keeps the v1 JSON-only contract.
    """
    header = stream.read(_HEADER.size)
    if not header:
        raise ProtocolError("connection closed by server")
    if len(header) < _HEADER.size:
        raise ProtocolError("connection closed mid-header")
    (word,) = _HEADER.unpack(header)
    binary = bool(word & BINARY_FLAG)
    length = word & ~BINARY_FLAG
    _check_length(length)
    payload = stream.read(length)
    if payload is None or len(payload) < length:
        raise ProtocolError("connection closed mid-frame")
    if binary:
        return "binary", payload
    return "json", decode_payload(payload)


def read_frame_blocking(stream: BinaryIO) -> Dict:
    """Read one JSON frame from a blocking binary stream (v1 client side)."""
    kind, frame = read_wire_frame_blocking(stream)
    if kind != "json":
        raise ProtocolError("unexpected binary frame on a v1 connection")
    return frame


# ----------------------------------------------------------------------
# Error frames
# ----------------------------------------------------------------------
def error_code_for(exc: BaseException) -> str:
    """Coarse frame code for an exception (config vs. runtime vs. ...)."""
    if isinstance(exc, SqlSyntaxError):
        return CODE_SYNTAX
    if isinstance(exc, ConfigError):
        return CODE_CONFIG
    if isinstance(exc, FrameTooLargeError):
        return CODE_FRAME_TOO_LARGE
    if isinstance(exc, ProtocolError):
        return CODE_PROTOCOL
    if isinstance(exc, (CancelledStatementError, StatementCancelledError)):
        return CODE_CANCELLED
    if isinstance(exc, ReproError):
        return CODE_RUNTIME
    return CODE_INTERNAL


def error_frame(request_id, exc: BaseException) -> Dict:
    """The error frame describing ``exc`` for request ``request_id``."""
    return {
        "type": "error",
        "id": request_id,
        "code": error_code_for(exc),
        "error_class": type(exc).__name__,
        "message": str(exc),
        "position": getattr(exc, "position", -1),
    }


def exception_from_frame(frame: Dict) -> ReproError:
    """Rebuild the closest client-side exception for an error frame."""
    message = str(frame.get("message", "server error"))
    cls = _ERROR_CLASSES.get(str(frame.get("error_class", "")), ReproError)
    if cls is SqlSyntaxError:
        position = frame.get("position", -1)
        return SqlSyntaxError(
            message, position=position if isinstance(position, int) else -1
        )
    if frame.get("code") == CODE_CANCELLED and not issubclass(
        cls, (CancelledStatementError, StatementCancelledError)
    ):
        return CancelledStatementError(message)
    if frame.get("code") == CODE_FRAME_TOO_LARGE and not issubclass(
        cls, FrameTooLargeError
    ):
        return FrameTooLargeError(message)
    return cls(message)
