"""Wire protocol for the network front-end.

Frames are length-prefixed JSON: a 4-byte big-endian payload length
followed by a UTF-8 JSON object. Every frame carries a ``type``; every
request carries a client-chosen ``id`` that the matching response echoes,
so clients may pipeline requests and match replies out of order.

Handshake (first frame in each direction)::

    C -> S   {"type": "hello", "version": 1, "client": "..."}
    S -> C   {"type": "hello_ok", "version": 1, "server": "repro/x.y"}

Requests::

    {"type": "query",   "id": n, "sql": "..."}   any SQL statement
    {"type": "explain", "id": n, "sql": "..."}   plan text, no execution
    {"type": "stats",   "id": n}                 engine counter snapshot
    {"type": "fingerprints", "id": n,            top-N statement
     "limit": k, "sort": "...", "offset": j}     fingerprints (paginated)
    {"type": "ping",    "id": n}                 liveness probe
    {"type": "cancel",  "id": n, "target": m}    best-effort dequeue of m

Responses::

    {"type": "result", "id": n, "statement_type": ..., "columns": [...],
     "rows": [[...]], "affected_rows": k, "timings": {...}}
    {"type": "plan", "id": n, "text": "..."}
    {"type": "stats_result", "id": n, "stats": {...}}
    {"type": "fingerprints_result", "id": n, "enabled": bool,
     "fingerprints": [...], "summary": {...}, "limit": k, "offset": j}
    {"type": "pong", "id": n}
    {"type": "cancel_result", "id": n, "target": m, "cancelled": bool}
    {"type": "busy", "id": n, "retryable": true, "inflight": k, "cap": c}
    {"type": "error", "id": n, "code": ..., "error_class": ...,
     "message": "...", "position": p}

``busy`` is the backpressure signal: the request was *not* admitted (the
per-client in-flight cap or the server admission limit is full) and can
be retried unchanged. Error frames carry the :class:`ReproError` leaf
class name, a coarse ``code`` for programmatic dispatch (``SYNTAX`` /
``CONFIG`` / ``RUNTIME`` / ``PROTOCOL`` / ``CANCELLED`` / ``INTERNAL``)
and, for syntax errors, the 0-based ``position`` of the offending token.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import BinaryIO, Dict, Optional, Type

import numpy as np

from ..errors import (
    BindingError,
    CatalogError,
    ConfigError,
    ExecutionError,
    PlanningError,
    ReproError,
    SqlSyntaxError,
    StatisticsError,
    StorageError,
)

PROTOCOL_VERSION = 1
DEFAULT_PORT = 7433
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")

# Error codes carried in error frames.
CODE_SYNTAX = "SYNTAX"
CODE_CONFIG = "CONFIG"
CODE_RUNTIME = "RUNTIME"
CODE_PROTOCOL = "PROTOCOL"
CODE_CANCELLED = "CANCELLED"
CODE_INTERNAL = "INTERNAL"


class ProtocolError(ReproError):
    """Malformed frame, broken framing, or a handshake violation."""


class ServerBusyError(ReproError):
    """The server refused to admit the request (retryable backpressure)."""

    def __init__(self, message: str, inflight: int = -1, cap: int = -1):
        super().__init__(message)
        self.inflight = inflight
        self.cap = cap


class CancelledStatementError(ReproError):
    """The statement was cancelled before it started executing."""


#: Exception classes reconstructible from an ``error_class`` frame field.
_ERROR_CLASSES: Dict[str, Type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        ReproError,
        SqlSyntaxError,
        CatalogError,
        BindingError,
        ConfigError,
        StorageError,
        PlanningError,
        ExecutionError,
        StatisticsError,
        ProtocolError,
        CancelledStatementError,
    )
}


def _json_default(value):
    """Tolerate numpy scalars leaking into result rows."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"unserializable value of type {type(value).__name__}")


def encode_frame(frame: Dict) -> bytes:
    """Serialize one frame to its wire form (header + JSON payload)."""
    payload = json.dumps(
        frame, separators=(",", ":"), default=_json_default
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict:
    """Parse a frame payload; the result is guaranteed to be an object
    with a string ``type``."""
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise ProtocolError("frame must be a JSON object with a 'type'")
    return frame


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict]:
    """Read one frame from an asyncio stream; None on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(payload)


def read_frame_blocking(stream: BinaryIO) -> Dict:
    """Read one frame from a blocking binary stream (client side)."""
    header = stream.read(_HEADER.size)
    if not header:
        raise ProtocolError("connection closed by server")
    if len(header) < _HEADER.size:
        raise ProtocolError("connection closed mid-header")
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    payload = stream.read(length)
    if payload is None or len(payload) < length:
        raise ProtocolError("connection closed mid-frame")
    return decode_payload(payload)


# ----------------------------------------------------------------------
# Error frames
# ----------------------------------------------------------------------
def error_code_for(exc: BaseException) -> str:
    """Coarse frame code for an exception (config vs. runtime vs. ...)."""
    if isinstance(exc, SqlSyntaxError):
        return CODE_SYNTAX
    if isinstance(exc, ConfigError):
        return CODE_CONFIG
    if isinstance(exc, ProtocolError):
        return CODE_PROTOCOL
    if isinstance(exc, CancelledStatementError):
        return CODE_CANCELLED
    if isinstance(exc, ReproError):
        return CODE_RUNTIME
    return CODE_INTERNAL


def error_frame(request_id, exc: BaseException) -> Dict:
    """The error frame describing ``exc`` for request ``request_id``."""
    return {
        "type": "error",
        "id": request_id,
        "code": error_code_for(exc),
        "error_class": type(exc).__name__,
        "message": str(exc),
        "position": getattr(exc, "position", -1),
    }


def exception_from_frame(frame: Dict) -> ReproError:
    """Rebuild the closest client-side exception for an error frame."""
    message = str(frame.get("message", "server error"))
    cls = _ERROR_CLASSES.get(str(frame.get("error_class", "")), ReproError)
    if cls is SqlSyntaxError:
        position = frame.get("position", -1)
        return SqlSyntaxError(
            message, position=position if isinstance(position, int) else -1
        )
    if frame.get("code") == CODE_CANCELLED:
        return CancelledStatementError(message)
    return cls(message)
