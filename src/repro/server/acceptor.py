"""Multi-process acceptor front-end: N server processes, one port.

``AcceptorGroup`` scales the asyncio front-end past one Python process:
the parent binds an ``SO_REUSEPORT`` socket (resolving port 0 to a real
port), forks ``n_acceptors`` children, and each child runs a full
:class:`~repro.server.server.ReproServer` — its own event loop, thread
pool and (post-fork) worker pools — listening on the *same* address. The
kernel load-balances incoming connections across the listening sockets,
so aggregate accept/parse/frame throughput scales with the number of
acceptor processes instead of serializing on one GIL.

Sharing model (fork copy-on-write):

* The storage the parent built before forking — numpy column arrays,
  string dictionaries, /dev/shm exports — is shared copy-on-write;
  children pay no copy for reads.
* Each child builds its **own** engine via ``engine_factory`` *after*
  the fork: statistics stores, plan caches, locks and per-process scan
  worker pools must not cross the fork boundary.
* Consequence: DML executed through one acceptor is not visible through
  the others (each child's tables diverge copy-on-write). The fleet
  targets read-heavy serving; single-process ``ReproServer`` remains the
  mode for mixed workloads.

Coordination is a tiny shared-memory block (:class:`AcceptorCoordination`)
holding a drain flag, the fleet-wide in-flight statement count and a
per-acceptor served counter. ``stop()`` raises the drain flag (children
stop accepting new connections) and sends ``SIGTERM``; each child drains
its in-flight statements through ``ReproServer.stop()`` before exiting.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import socket
import time
from typing import Callable, Dict, List

from ..errors import ConfigError, ReproError
from .server import ReproServer

_IDX_DRAIN = 0
_IDX_INFLIGHT = 1
_IDX_READY = 2  # how many acceptors are accepting connections
_COUNTERS = 3  # per-acceptor served counters start here


class AcceptorCoordination:
    """Shared-memory coordination block for one acceptor fleet.

    A ``multiprocessing.Array`` of int64 created before the fork, so
    every child addresses the same page: ``[drain, inflight,
    served_0..served_{n-1}]``. Mutations take the array's lock — they
    happen once per statement, not per row, so contention is noise.
    """

    def __init__(self, n_acceptors: int):
        self.n_acceptors = n_acceptors
        self._array = multiprocessing.Array("q", _COUNTERS + n_acceptors)

    def view(self, index: int) -> "AcceptorView":
        return AcceptorView(self, index)

    @property
    def draining(self) -> bool:
        return self._array[_IDX_DRAIN] != 0

    def start_drain(self) -> None:
        with self._array.get_lock():
            self._array[_IDX_DRAIN] = 1

    @property
    def inflight(self) -> int:
        return int(self._array[_IDX_INFLIGHT])

    @property
    def ready(self) -> int:
        return int(self._array[_IDX_READY])

    def snapshot(self) -> Dict[str, object]:
        with self._array.get_lock():
            served = [
                int(self._array[_COUNTERS + i])
                for i in range(self.n_acceptors)
            ]
            return {
                "draining": self._array[_IDX_DRAIN] != 0,
                "inflight": int(self._array[_IDX_INFLIGHT]),
                "ready": int(self._array[_IDX_READY]),
                "served": served,
                "total_served": sum(served),
            }


class AcceptorView:
    """One acceptor's handle on the coordination block (what
    :class:`ReproServer` calls around each statement)."""

    def __init__(self, coordination: AcceptorCoordination, index: int):
        self._coordination = coordination
        self._array = coordination._array
        self.index = index

    @property
    def draining(self) -> bool:
        return self._array[_IDX_DRAIN] != 0

    def mark_ready(self) -> None:
        with self._array.get_lock():
            self._array[_IDX_READY] += 1

    def statement_started(self) -> None:
        with self._array.get_lock():
            self._array[_IDX_INFLIGHT] += 1

    def statement_finished(self) -> None:
        with self._array.get_lock():
            self._array[_IDX_INFLIGHT] -= 1
            self._array[_COUNTERS + self.index] += 1


def _reuseport_socket(host: str, port: int) -> socket.socket:
    if not hasattr(socket, "SO_REUSEPORT"):
        raise ConfigError(
            "SO_REUSEPORT is not available on this platform; "
            "run a single-process server instead (--acceptors 1)"
        )
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock


class AcceptorGroup:
    """Fork-and-listen fleet of :class:`ReproServer` processes.

    ``engine_factory`` is called once **per child, after the fork** — it
    should close over storage built in the parent (shared copy-on-write)
    and construct the engine around it. Server sizing kwargs are passed
    through to every child's ``ReproServer``.
    """

    def __init__(
        self,
        engine_factory: Callable[[], object],
        n_acceptors: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        **server_kwargs,
    ):
        if n_acceptors < 1:
            raise ConfigError(
                f"n_acceptors must be >= 1, got {n_acceptors}"
            )
        self.engine_factory = engine_factory
        self.n_acceptors = n_acceptors
        self.host = host
        self.port = port
        self.server_kwargs = dict(server_kwargs)
        self.coordination = AcceptorCoordination(n_acceptors)
        self.pids: List[int] = []
        self._started = False

    # ------------------------------------------------------------------
    # Parent side
    # ------------------------------------------------------------------
    def start(self) -> "AcceptorGroup":
        """Bind the shared port and fork the acceptor processes."""
        if self._started:
            raise ReproError("acceptor group already started")
        parent_sock = _reuseport_socket(self.host, self.port)
        self.port = parent_sock.getsockname()[1]
        for index in range(self.n_acceptors):
            pid = os.fork()
            if pid == 0:
                # Child: never return into the parent's control flow.
                status = 1
                try:
                    self._child_main(index, parent_sock)
                    status = 0
                finally:
                    os._exit(status)
            self.pids.append(pid)
        # The children hold the port now (child 0 listens on the
        # inherited socket); the parent only coordinates.
        parent_sock.close()
        self._started = True
        # Wait until every child is accepting: connections made while a
        # child is still booting would be hashed over a partial listener
        # set, permanently skewing the kernel's load balance.
        self.wait_ready()
        return self

    def wait_ready(self, timeout: float = 10.0) -> None:
        """Block until all acceptors are listening (or raise)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.coordination.ready >= self.n_acceptors:
                return
            if self.alive() < self.n_acceptors:
                break  # a child died during boot; don't wait out the clock
            time.sleep(0.01)
        raise ReproError(
            f"only {self.coordination.ready}/{self.n_acceptors} acceptors "
            f"became ready ({self.alive()} processes alive)"
        )

    def stop(self, timeout: float = 15.0) -> None:
        """Graceful drain: raise the drain flag, SIGTERM, reap children."""
        if not self._started:
            return
        self.coordination.start_drain()
        for pid in self.pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + timeout
        remaining = list(self.pids)
        while remaining and time.monotonic() < deadline:
            for pid in list(remaining):
                done, _status = os.waitpid(pid, os.WNOHANG)
                if done:
                    remaining.remove(pid)
            if remaining:
                time.sleep(0.05)
        for pid in remaining:  # drain timeout: stop waiting politely
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
        self.pids.clear()
        self._started = False

    def alive(self) -> int:
        """How many acceptor processes are still running."""
        count = 0
        for pid in self.pids:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            count += 1
        return count

    def snapshot(self) -> Dict[str, object]:
        return self.coordination.snapshot()

    def __enter__(self) -> "AcceptorGroup":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Child side
    # ------------------------------------------------------------------
    def _child_main(self, index: int, parent_sock: socket.socket) -> None:
        # Restore default signal dispositions the parent may have bent.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        if index == 0:
            sock = parent_sock  # inherited, already bound
        else:
            parent_sock.close()
            sock = _reuseport_socket(self.host, self.port)
        engine = self.engine_factory()
        view = self.coordination.view(index)
        server = ReproServer(
            engine,
            host=self.host,
            port=self.port,
            sock=sock,
            coordination=view,
            **self.server_kwargs,
        )
        asyncio.run(self._child_serve(server, view))

    async def _child_serve(self, server: ReproServer, view: AcceptorView) -> None:
        await server.start()
        view.mark_ready()
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        loop.add_signal_handler(signal.SIGTERM, stop_event.set)
        await stop_event.wait()
        await server.stop()
