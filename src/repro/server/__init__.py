"""Network front-end: wire protocol, asyncio server, blocking client,
binary columnar streaming (v2) and the multi-process acceptor fleet."""

from .acceptor import AcceptorCoordination, AcceptorGroup
from .client import Client, RemoteResult, connect
from .frames import (
    DEFAULT_CHUNK_ROWS,
    StreamDecoder,
    build_stream_frames,
    parse_binary_frame,
)
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_2,
    SUPPORTED_VERSIONS,
    CancelledStatementError,
    FrameTooLargeError,
    ProtocolError,
    ServerBusyError,
    encode_binary_frame,
    encode_frame,
    error_frame,
    exception_from_frame,
    read_frame,
    read_frame_blocking,
    read_wire_frame_blocking,
)
from .server import ReproServer

__all__ = [
    "ReproServer",
    "AcceptorGroup",
    "AcceptorCoordination",
    "Client",
    "RemoteResult",
    "connect",
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_2",
    "SUPPORTED_VERSIONS",
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "DEFAULT_CHUNK_ROWS",
    "ProtocolError",
    "FrameTooLargeError",
    "ServerBusyError",
    "CancelledStatementError",
    "StreamDecoder",
    "build_stream_frames",
    "parse_binary_frame",
    "encode_frame",
    "encode_binary_frame",
    "error_frame",
    "exception_from_frame",
    "read_frame",
    "read_frame_blocking",
    "read_wire_frame_blocking",
]
