"""Network front-end: wire protocol, asyncio server, blocking client."""

from .client import Client, RemoteResult, connect
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    CancelledStatementError,
    ProtocolError,
    ServerBusyError,
    encode_frame,
    error_frame,
    exception_from_frame,
    read_frame,
    read_frame_blocking,
)
from .server import ReproServer

__all__ = [
    "ReproServer",
    "Client",
    "RemoteResult",
    "connect",
    "PROTOCOL_VERSION",
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServerBusyError",
    "CancelledStatementError",
    "encode_frame",
    "error_frame",
    "exception_from_frame",
    "read_frame",
    "read_frame_blocking",
]
