"""Asyncio network server: many connections, one engine.

The server owns one :class:`~repro.engine.engine.Engine` and a bounded
thread pool. Each accepted connection gets its own
:class:`~repro.engine.session.Session`; statements run in the pool via
``run_in_executor`` so the engine's two-level lock hierarchy (database
intent + per-table locks) and per-session UDI-shard semantics are
exactly those of in-process clients. The event loop itself never
executes SQL — it only frames, schedules and replies.

Admission control and fairness:

* at most one statement per connection executes at a time (a session is
  single-threaded by contract), and at most ``per_client_inflight``
  statements per connection may be admitted (running + queued) — beyond
  that the request is answered immediately with a retryable ``busy``
  frame instead of being queued without bound;
* admitted statements wait in per-connection FIFO queues that a
  round-robin scheduler drains, so a connection that floods its own
  queue cannot starve the others;
* a global admission limit (``max_inflight``) caps how many statements
  occupy executor threads at once — the "admission semaphore", enforced
  on the event-loop thread where all scheduler state lives.

Protocol versions: the server negotiates version 1 (pure JSON frames,
byte-compatible with pre-v2 clients) or version 2 per connection in the
``hello`` exchange. On version-2 connections SELECT results at or above
``stream_threshold_rows`` rows stream as binary columnar frames (see
:mod:`repro.server.frames`) instead of one monolithic JSON ``result``.

Cancellation: a ``cancel`` frame dequeues the target request if it has
not started executing, and — any protocol version — interrupts a
*running* statement by setting its :class:`~repro.cancel.CancelToken`;
the engine observes the token at morsel/checkpoint boundaries and the
statement's reply becomes a ``CANCELLED`` error frame, with the session
left reusable.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Set

from ..cancel import CancelToken
from ..errors import ConfigError, ReproError
from .frames import DEFAULT_CHUNK_ROWS, build_stream_frames
from .protocol import (
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_2,
    SUPPORTED_VERSIONS,
    CancelledStatementError,
    ProtocolError,
    encode_binary_frame,
    encode_frame,
    error_frame,
    read_frame,
)

HANDSHAKE_TIMEOUT = 10.0
_DRAIN_POLL = 0.05


class _Connection:
    """Per-connection server state (event-loop thread only)."""

    __slots__ = (
        "conn_id",
        "writer",
        "session",
        "queue",
        "running",
        "closed",
        "write_lock",
        "busy_rejections",
        "protocol_version",
        "cancel_tokens",
    )

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter, session):
        self.conn_id = conn_id
        self.writer = writer
        self.session = session
        self.queue: Deque[Dict] = deque()
        self.running = False
        self.closed = False
        self.write_lock = asyncio.Lock()
        self.busy_rejections = 0
        self.protocol_version = PROTOCOL_VERSION
        # request id -> CancelToken of the statement currently executing
        # (registered on the event-loop thread before dispatch, removed in
        # the request's finally, so `cancel` can interrupt it mid-flight).
        self.cancel_tokens: Dict[object, CancelToken] = {}

    @property
    def inflight(self) -> int:
        return len(self.queue) + (1 if self.running else 0)

    async def send(self, frame: Dict) -> None:
        await self.send_encoded(encode_frame(frame))

    async def send_encoded(self, data: bytes) -> None:
        await self.send_encoded_many([data])

    async def send_encoded_many(self, datas: List[bytes]) -> None:
        """Write a frame sequence contiguously (one lock scope), so a
        streamed result is never interleaved with other replies."""
        if self.closed:
            return
        async with self.write_lock:
            if self.closed:
                return
            try:
                for data in datas:
                    self.writer.write(data)
                    await self.writer.drain()
            except (ConnectionError, RuntimeError):
                self.closed = True


class ReproServer:
    """A TCP front-end for one engine (see module docstring)."""

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Optional[int] = None,
        max_inflight: int = 8,
        per_client_inflight: int = 4,
        stream_threshold_rows: int = 256,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        sock=None,
        coordination=None,
    ):
        if workers is None:
            workers = max_inflight
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if per_client_inflight < 1:
            raise ConfigError(
                f"per_client_inflight must be >= 1, got {per_client_inflight}"
            )
        if stream_threshold_rows < 1:
            raise ConfigError(
                "stream_threshold_rows must be >= 1, "
                f"got {stream_threshold_rows}"
            )
        if chunk_rows < 1:
            raise ConfigError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.engine = engine
        self.host = host
        self.port = port
        self.workers = workers
        self.max_inflight = max_inflight
        self.per_client_inflight = per_client_inflight
        # v2 SELECTs with at least this many rows stream as binary chunks.
        self.stream_threshold_rows = stream_threshold_rows
        self.chunk_rows = chunk_rows
        # Pre-bound listening socket (SO_REUSEPORT acceptor fleets) — when
        # set, host/port are taken from the socket instead of bound here.
        self._sock = sock
        # Optional AcceptorCoordination shared-memory block: per-fleet
        # statement counters + drain flag (see repro.server.acceptor).
        self.coordination = coordination
        self.busy_rejections = 0
        self.statements_served = 0
        self.streamed_results = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._conns: Set[_Connection] = set()
        self._rr: Deque[_Connection] = deque()
        self._inflight = 0
        self._next_conn_id = 0
        self._closing = False
        # start_in_thread machinery
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (port 0 picks an ephemeral port)."""
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-server"
        )
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ReproError("server not started")
        await self._server.serve_forever()

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Stop accepting, drain in-flight statements, close connections."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        waited = 0.0
        while self._inflight > 0 and waited < drain_timeout:
            await asyncio.sleep(_DRAIN_POLL)
            waited += _DRAIN_POLL
        for conn in list(self._conns):
            conn.closed = True
            conn.session.close()
            with contextlib.suppress(Exception):
                conn.writer.close()
        self._conns.clear()
        self._rr.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Background-thread harness (tests, benchmarks, embedding)
    # ------------------------------------------------------------------
    def start_in_thread(self, timeout: float = 10.0) -> "ReproServer":
        """Run the server on a dedicated event-loop thread.

        Blocks until the listening socket is bound (so ``self.port`` is
        final), then returns. Pair with :meth:`stop_from_thread`.
        """
        started = threading.Event()
        failure: list = []

        async def main() -> None:
            try:
                await self.start()
            except Exception as exc:  # surface bind errors to the caller
                failure.append(exc)
                started.set()
                return
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            started.set()
            await self._stop_event.wait()
            await self.stop()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(main()),
            name="repro-server-loop",
            daemon=True,
        )
        self._thread.start()
        if not started.wait(timeout):
            raise ReproError("server failed to start in time")
        if failure:
            raise failure[0]
        return self

    def stop_from_thread(self, timeout: float = 15.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------
    # Connection handling (event-loop thread)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._closing or (
            self.coordination is not None and self.coordination.draining
        ):
            writer.close()
            return
        try:
            hello = await asyncio.wait_for(
                read_frame(reader), timeout=HANDSHAKE_TIMEOUT
            )
        except (ProtocolError, asyncio.TimeoutError, ConnectionError):
            writer.close()
            return
        self._next_conn_id += 1
        conn = _Connection(self._next_conn_id, writer, self.engine.session())
        if (
            hello is None
            or hello.get("type") != "hello"
            or hello.get("version") not in SUPPORTED_VERSIONS
        ):
            got = None if hello is None else hello.get("version")
            supported = "/".join(str(v) for v in SUPPORTED_VERSIONS)
            await conn.send(
                error_frame(
                    None if hello is None else hello.get("id"),
                    ProtocolError(
                        f"handshake must be a version-{supported} "
                        f"hello frame (got {got!r})"
                    ),
                )
            )
            conn.closed = True
            conn.session.close()
            writer.close()
            return
        conn.protocol_version = hello["version"]
        from .. import __version__

        self._conns.add(conn)
        self._rr.append(conn)
        await conn.send(
            {
                "type": "hello_ok",
                "version": conn.protocol_version,
                "server": f"repro/{__version__}",
                "per_client_inflight": self.per_client_inflight,
            }
        )
        try:
            while not self._closing:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    await conn.send(error_frame(None, exc))
                    break
                except ConnectionError:
                    break
                if frame is None:
                    break
                await self._handle_frame(conn, frame)
        finally:
            conn.closed = True
            conn.queue.clear()
            # A disconnect mid-statement cancels whatever this connection
            # was running: the worker thread unwinds at the next morsel
            # boundary and its locks release instead of the statement
            # burning to completion for a reader that is gone.
            for token in conn.cancel_tokens.values():
                token.cancel()
            self._conns.discard(conn)
            with contextlib.suppress(ValueError):
                self._rr.remove(conn)
            conn.session.close()
            with contextlib.suppress(Exception):
                writer.close()
            self._schedule_ready()

    async def _handle_frame(self, conn: _Connection, frame: Dict) -> None:
        ftype = frame["type"]
        rid = frame.get("id")
        if ftype == "ping":
            await conn.send({"type": "pong", "id": rid})
        elif ftype == "stats":
            stats = self.engine.stats_snapshot()
            stats["server"] = self.server_stats()
            await conn.send(
                {"type": "stats_result", "id": rid, "stats": stats}
            )
        elif ftype == "fingerprints":
            await self._handle_fingerprints(conn, frame)
        elif ftype == "cancel":
            await self._handle_cancel(conn, frame)
        elif ftype in ("query", "explain"):
            if not isinstance(frame.get("sql"), str):
                await conn.send(
                    error_frame(
                        rid, ProtocolError(f"{ftype} frame without 'sql'")
                    )
                )
                return
            inflight = conn.inflight
            if inflight >= self.per_client_inflight:
                conn.busy_rejections += 1
                self.busy_rejections += 1
                await conn.send(
                    {
                        "type": "busy",
                        "id": rid,
                        "retryable": True,
                        "inflight": inflight,
                        "cap": self.per_client_inflight,
                    }
                )
                return
            conn.queue.append(frame)
            self._schedule_ready()
        else:
            await conn.send(
                error_frame(
                    rid, ProtocolError(f"unknown frame type {ftype!r}")
                )
            )

    async def _handle_cancel(self, conn: _Connection, frame: Dict) -> None:
        target = frame.get("target")
        found = None
        for queued in conn.queue:
            if queued.get("id") == target:
                found = queued
                break
        interrupted = False
        if found is not None:
            conn.queue.remove(found)
            await conn.send(
                error_frame(
                    target,
                    CancelledStatementError("cancelled before execution"),
                )
            )
        else:
            # Not queued: interrupt it if it is executing right now. The
            # engine raises StatementCancelledError at the next morsel or
            # checkpoint boundary; the statement's own reply becomes a
            # CANCELLED error frame from _run_request.
            token = conn.cancel_tokens.get(target)
            if token is not None:
                token.cancel()
                interrupted = True
        await conn.send(
            {
                "type": "cancel_result",
                "id": frame.get("id"),
                "target": target,
                "cancelled": found is not None or interrupted,
                "interrupted": interrupted,
            }
        )

    # ------------------------------------------------------------------
    # Round-robin scheduler (event-loop thread)
    # ------------------------------------------------------------------
    def _schedule_ready(self) -> None:
        """Admit queued requests: round-robin over connections, one
        statement per connection, ``max_inflight`` overall."""
        if self._closing:
            return
        progress = True
        while progress and self._inflight < self.max_inflight:
            progress = False
            for _ in range(len(self._rr)):
                if self._inflight >= self.max_inflight:
                    return
                conn = self._rr[0]
                self._rr.rotate(-1)
                if conn.closed or conn.running or not conn.queue:
                    continue
                request = conn.queue.popleft()
                conn.running = True
                self._inflight += 1
                asyncio.get_running_loop().create_task(
                    self._run_request(conn, request)
                )
                progress = True

    async def _run_request(self, conn: _Connection, frame: Dict) -> None:
        loop = asyncio.get_running_loop()
        rid = frame.get("id")
        sql = frame["sql"]
        token: Optional[CancelToken] = None
        if frame["type"] == "query":
            # Registered on the event-loop thread *before* dispatch so a
            # cancel frame arriving at any point during execution finds it.
            token = CancelToken()
            conn.cancel_tokens[rid] = token

        def work() -> List[bytes]:
            # Execute AND serialize on the worker thread: result rows can
            # be large, and encoding them on the event loop would stall
            # every other connection's framing.
            if frame["type"] == "explain":
                return [
                    encode_frame(
                        {
                            "type": "plan",
                            "id": rid,
                            "text": conn.session.explain(sql),
                        }
                    )
                ]
            result = conn.session.execute(sql, cancel=token)
            if (
                conn.protocol_version >= PROTOCOL_VERSION_2
                and result.statement_type == "select"
                and result.vectors is not None
                and len(result.rows) >= self.stream_threshold_rows
            ):
                header, payloads, end = build_stream_frames(
                    rid, result, self.chunk_rows
                )
                return (
                    [encode_frame(header)]
                    + [encode_binary_frame(p) for p in payloads]
                    + [encode_frame(end)]
                )
            return [encode_frame(_result_frame(rid, result))]

        if self.coordination is not None:
            self.coordination.statement_started()
        try:
            datas = await loop.run_in_executor(self._pool, work)
            self.statements_served += 1
            if len(datas) > 1:
                self.streamed_results += 1
        except Exception as exc:
            datas = [encode_frame(error_frame(rid, exc))]
        finally:
            if token is not None:
                conn.cancel_tokens.pop(rid, None)
            if self.coordination is not None:
                self.coordination.statement_finished()
            conn.running = False
            self._inflight -= 1
            self._schedule_ready()
        await conn.send_encoded_many(datas)

    #: Hard cap on rows per fingerprints frame. Each row is bounded (the
    #: statement text truncates at 512 chars), so 200 rows stays in the
    #: hundreds of kilobytes — nowhere near MAX_FRAME_BYTES. Deeper
    #: listings page through with ``offset``.
    MAX_FINGERPRINT_LIMIT = 200

    async def _handle_fingerprints(
        self, conn: _Connection, frame: Dict
    ) -> None:
        rid = frame.get("id")
        limit = frame.get("limit", 20)
        offset = frame.get("offset", 0)
        sort_by = frame.get("sort", "total_ms")
        if (
            not isinstance(limit, int)
            or not isinstance(offset, int)
            or isinstance(limit, bool)
            or isinstance(offset, bool)
            or not isinstance(sort_by, str)
        ):
            await conn.send(
                error_frame(
                    rid,
                    ProtocolError(
                        "fingerprints frame needs integer limit/offset "
                        "and a string sort key"
                    ),
                )
            )
            return
        limit = max(1, min(limit, self.MAX_FINGERPRINT_LIMIT))
        offset = max(0, offset)
        try:
            snapshot = self.engine.fingerprint_snapshot(
                limit=limit, sort_by=sort_by, offset=offset
            )
        except ValueError as exc:
            await conn.send(error_frame(rid, ProtocolError(str(exc))))
            return
        await conn.send(
            {
                "type": "fingerprints_result",
                "id": rid,
                "limit": limit,
                "offset": offset,
                "sort": sort_by,
                **snapshot,
            }
        )

    def server_stats(self) -> Dict[str, object]:
        return {
            "connections": len(self._conns),
            "inflight": self._inflight,
            "statements_served": self.statements_served,
            "streamed_results": self.streamed_results,
            "busy_rejections": self.busy_rejections,
            "max_inflight": self.max_inflight,
            "per_client_inflight": self.per_client_inflight,
            "stream_threshold_rows": self.stream_threshold_rows,
        }


def _result_frame(request_id, result) -> Dict:
    frame = {
        "type": "result",
        "id": request_id,
        "statement_type": result.statement_type,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "affected_rows": result.affected_rows,
        "timings": dict(result.timings),
    }
    snapshots = getattr(result, "snapshots", None)
    if snapshots:
        # MVCC provenance: {table: [epoch, stamp]} — the stamp replays
        # this statement's exact view via ``SELECT ... AS OF <stamp>``.
        frame["snapshots"] = {
            name: list(pair) for name, pair in snapshots.items()
        }
    return frame
