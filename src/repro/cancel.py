"""Cooperative statement cancellation.

A :class:`CancelToken` is a thread-safe flag owned by whoever can cancel
a statement (the network server, an interactive shell's Ctrl-C handler).
The executing side never receives the token explicitly below the session
layer: :func:`cancel_scope` parks it in a module-level thread-local for
the duration of one statement, and every morsel-grained loop in the
engine — plan-operator boundaries, parallel shard dispatches, nested-loop
chunks, modeled-cost sleeps — polls :func:`check_cancelled`, which raises
:class:`~repro.errors.StatementCancelledError` once the flag is set.

Worker *processes* never see the token (the thread-local is empty there,
so :func:`check_cancelled` is a no-op): cancellation interrupts the
parent at the next shard/fragment boundary, which bounds the reaction
time to one morsel interval without cross-process signalling.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator, Optional

from .errors import StatementCancelledError

#: Modeled-cost sleeps (``scan_cost_per_row``, ``commit_latency``) are
#: paid in slices of this many seconds with a cancellation poll between
#: slices, so even a single-shard inline scan reacts within ~one slice.
SLEEP_SLICE = 0.005

_current = threading.local()


class CancelToken:
    """One statement's cancellation flag (set-once, thread-safe)."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation; the statement stops at its next poll."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        if self._event.is_set():
            raise StatementCancelledError("statement cancelled")


def current_token() -> Optional[CancelToken]:
    """The token covering the current thread's statement, if any."""
    return getattr(_current, "token", None)


@contextlib.contextmanager
def cancel_scope(token: Optional[CancelToken]) -> Iterator[None]:
    """Install ``token`` as the current thread's statement token."""
    previous = getattr(_current, "token", None)
    _current.token = token
    try:
        yield
    finally:
        _current.token = previous


def check_cancelled() -> None:
    """Raise :class:`StatementCancelledError` if the current statement's
    token is set. Cheap (one thread-local load) when no token is active."""
    token = getattr(_current, "token", None)
    if token is not None and token._event.is_set():
        raise StatementCancelledError("statement cancelled")


def cancellable_sleep(duration: float) -> None:
    """``time.sleep`` in :data:`SLEEP_SLICE` slices, polling the token.

    Modeled-cost kernels use this so a long inline shard (one big sleep
    in the v0 form) stays interruptible; in worker processes there is no
    token and the only cost is a few extra ``sleep`` calls.
    """
    if duration <= 0.0:
        return
    token = getattr(_current, "token", None)
    if token is None:
        time.sleep(duration)
        return
    deadline = time.perf_counter() + duration
    while True:
        token.check()
        remaining = deadline - time.perf_counter()
        if remaining <= 0.0:
            return
        time.sleep(min(SLEEP_SLICE, remaining))
