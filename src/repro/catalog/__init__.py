"""System catalog: general statistics and the RUNSTATS collection tool."""

from .catalog import CatalogSnapshot, SystemCatalog, canonical_group
from .runstats import (
    collect_group_statistics,
    collect_workload_statistics,
    column_domain,
    run_runstats,
)
from .statistics import (
    ROWS_PER_PAGE,
    ColumnGroupStatistics,
    ColumnStatistics,
    TableProfile,
    TableStatistics,
    top_frequent_values,
)

__all__ = [
    "SystemCatalog",
    "CatalogSnapshot",
    "canonical_group",
    "run_runstats",
    "collect_group_statistics",
    "collect_workload_statistics",
    "column_domain",
    "TableStatistics",
    "ColumnStatistics",
    "ColumnGroupStatistics",
    "TableProfile",
    "top_frequent_values",
    "ROWS_PER_PAGE",
]
