"""The system catalog: statistics about tables, columns and column groups.

The catalog never talks to the optimizer directly; the optimizer goes
through :mod:`repro.optimizer.selectivity`, which layers QSS (when present)
over catalog statistics over defaults.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import CatalogError
from .statistics import (
    ColumnGroupStatistics,
    ColumnStatistics,
    TableProfile,
    TableStatistics,
)


def canonical_group(columns: Iterable[str]) -> Tuple[str, ...]:
    """Canonical (lower-cased, sorted) key for a column group."""
    return tuple(sorted(c.lower() for c in columns))


class SystemCatalog:
    """All statistics the engine has persisted."""

    def __init__(self) -> None:
        self._profiles: Dict[str, TableProfile] = {}
        # Bumped on every statistics write; consumers (the engine's plan
        # cache) key on it so plans built against superseded statistics
        # are recompiled.
        self.version = 0
        # Guards profile/version mutation and snapshot-style reads.
        # Statistics objects are replaced wholesale, never mutated in
        # place, so point reads outside the lock see a consistent entry.
        self._lock = threading.RLock()

    def _profile(self, table: str) -> TableProfile:
        return self._profiles.setdefault(table.lower(), TableProfile())

    # ------------------------------------------------------------------
    # Table statistics
    # ------------------------------------------------------------------
    def set_table_stats(self, stats: TableStatistics) -> None:
        with self._lock:
            self.version += 1
            self._profile(stats.table).table_stats = stats

    def table_stats(self, table: str) -> Optional[TableStatistics]:
        profile = self._profiles.get(table.lower())
        return profile.table_stats if profile else None

    # ------------------------------------------------------------------
    # Column statistics
    # ------------------------------------------------------------------
    def set_column_stats(self, table: str, stats: ColumnStatistics) -> None:
        with self._lock:
            self.version += 1
            self._profile(table).column_stats[stats.column.lower()] = stats

    def column_stats(self, table: str, column: str) -> Optional[ColumnStatistics]:
        profile = self._profiles.get(table.lower())
        if profile is None:
            return None
        return profile.column_stats.get(column.lower())

    def columns_with_stats(self, table: str) -> List[str]:
        with self._lock:
            profile = self._profiles.get(table.lower())
            if profile is None:
                return []
            return sorted(profile.column_stats)

    # ------------------------------------------------------------------
    # Column-group statistics (workload stats)
    # ------------------------------------------------------------------
    def set_group_stats(self, stats: ColumnGroupStatistics) -> None:
        key = canonical_group(stats.columns)
        if len(key) < 2:
            raise CatalogError(
                "column-group statistics need at least two columns; "
                "single columns belong in column statistics"
            )
        with self._lock:
            self.version += 1
            self._profile(stats.table).group_stats[key] = stats

    def group_stats(
        self, table: str, columns: Iterable[str]
    ) -> Optional[ColumnGroupStatistics]:
        profile = self._profiles.get(table.lower())
        if profile is None:
            return None
        return profile.group_stats.get(canonical_group(columns))

    def groups_with_stats(self, table: str) -> List[Tuple[str, ...]]:
        with self._lock:
            profile = self._profiles.get(table.lower())
            if profile is None:
                return []
            return sorted(profile.group_stats)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_table(self, table: str) -> None:
        with self._lock:
            self.version += 1
            self._profiles.pop(table.lower(), None)

    def clear(self) -> None:
        with self._lock:
            self.version += 1
            self._profiles.clear()

    def has_any_stats(self, table: str) -> bool:
        profile = self._profiles.get(table.lower())
        return profile is not None and profile.table_stats is not None
