"""The system catalog: statistics about tables, columns and column groups.

The catalog never talks to the optimizer directly; the optimizer goes
through :mod:`repro.optimizer.selectivity`, which layers QSS (when present)
over catalog statistics over defaults.

Concurrency: the catalog is RCU-published. All statistics live in one
immutable :class:`CatalogSnapshot`; writers (RUNSTATS, JITS cardinality
refresh, migration) copy the affected profile under the writer lock, build
a new snapshot with a bumped ``version``, and atomically swap it in.
Readers — the optimizer's selectivity path above all — load the current
snapshot with a plain attribute read and never take a lock. ``version``
doubles as the plan-cache invalidation epoch: a snapshot swap *is* the
signal that cached plans may be stale.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import CatalogError
from .statistics import (
    ColumnGroupStatistics,
    ColumnStatistics,
    TableProfile,
    TableStatistics,
)


def canonical_group(columns: Iterable[str]) -> Tuple[str, ...]:
    """Canonical (lower-cased, sorted) key for a column group."""
    return tuple(sorted(c.lower() for c in columns))


class CatalogSnapshot:
    """One immutable, epoch-stamped view of every catalog statistic.

    The read API mirrors :class:`SystemCatalog`; a compilation that pins
    a snapshot therefore sees one consistent statistics epoch end to end,
    no matter what concurrent writers publish meanwhile.
    """

    __slots__ = ("version", "_profiles")

    def __init__(self, version: int, profiles: Dict[str, TableProfile]):
        self.version = version
        self._profiles = profiles

    def table_stats(self, table: str) -> Optional[TableStatistics]:
        profile = self._profiles.get(table.lower())
        return profile.table_stats if profile else None

    def column_stats(self, table: str, column: str) -> Optional[ColumnStatistics]:
        profile = self._profiles.get(table.lower())
        if profile is None:
            return None
        return profile.column_stats.get(column.lower())

    def columns_with_stats(self, table: str) -> List[str]:
        profile = self._profiles.get(table.lower())
        if profile is None:
            return []
        return sorted(profile.column_stats)

    def group_stats(
        self, table: str, columns: Iterable[str]
    ) -> Optional[ColumnGroupStatistics]:
        profile = self._profiles.get(table.lower())
        if profile is None:
            return None
        return profile.group_stats.get(canonical_group(columns))

    def groups_with_stats(self, table: str) -> List[Tuple[str, ...]]:
        profile = self._profiles.get(table.lower())
        if profile is None:
            return []
        return sorted(profile.group_stats)

    def has_any_stats(self, table: str) -> bool:
        profile = self._profiles.get(table.lower())
        return profile is not None and profile.table_stats is not None


_EMPTY = CatalogSnapshot(0, {})


class SystemCatalog:
    """All statistics the engine has persisted."""

    def __init__(self) -> None:
        # The published snapshot. Swapped wholesale on every write; never
        # mutated in place, so lock-free readers always see a consistent
        # (profile, version) pair.
        self._snapshot: CatalogSnapshot = _EMPTY
        # Serializes writers only. Readers never touch it.
        self._lock = threading.Lock()

    @property
    def version(self) -> int:
        """Statistics epoch: bumps exactly when a new snapshot publishes."""
        return self._snapshot.version

    def snapshot(self) -> CatalogSnapshot:
        """The current immutable view (pin it for one compilation)."""
        return self._snapshot

    def _publish(self, table: str, mutate) -> None:
        """Copy-on-write the profile for ``table``, apply ``mutate``, swap.

        The copy is shallow one level down: statistics objects themselves
        are immutable by convention (writers always build replacements),
        so copying the dicts that hold them is enough for RCU.
        """
        with self._lock:
            current = self._snapshot
            profiles = dict(current._profiles)
            old = profiles.get(table.lower())
            profile = TableProfile(
                table_stats=old.table_stats if old else None,
                column_stats=dict(old.column_stats) if old else {},
                group_stats=dict(old.group_stats) if old else {},
            )
            mutate(profile)
            profiles[table.lower()] = profile
            self._snapshot = CatalogSnapshot(current.version + 1, profiles)

    # ------------------------------------------------------------------
    # Table statistics
    # ------------------------------------------------------------------
    def set_table_stats(self, stats: TableStatistics) -> None:
        def mutate(profile: TableProfile) -> None:
            profile.table_stats = stats

        self._publish(stats.table, mutate)

    def table_stats(self, table: str) -> Optional[TableStatistics]:
        return self._snapshot.table_stats(table)

    # ------------------------------------------------------------------
    # Column statistics
    # ------------------------------------------------------------------
    def set_column_stats(self, table: str, stats: ColumnStatistics) -> None:
        def mutate(profile: TableProfile) -> None:
            profile.column_stats[stats.column.lower()] = stats

        self._publish(table, mutate)

    def column_stats(self, table: str, column: str) -> Optional[ColumnStatistics]:
        return self._snapshot.column_stats(table, column)

    def columns_with_stats(self, table: str) -> List[str]:
        return self._snapshot.columns_with_stats(table)

    # ------------------------------------------------------------------
    # Column-group statistics (workload stats)
    # ------------------------------------------------------------------
    def set_group_stats(self, stats: ColumnGroupStatistics) -> None:
        key = canonical_group(stats.columns)
        if len(key) < 2:
            raise CatalogError(
                "column-group statistics need at least two columns; "
                "single columns belong in column statistics"
            )

        def mutate(profile: TableProfile) -> None:
            profile.group_stats[key] = stats

        self._publish(stats.table, mutate)

    def group_stats(
        self, table: str, columns: Iterable[str]
    ) -> Optional[ColumnGroupStatistics]:
        return self._snapshot.group_stats(table, columns)

    def groups_with_stats(self, table: str) -> List[Tuple[str, ...]]:
        return self._snapshot.groups_with_stats(table)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_table(self, table: str) -> None:
        with self._lock:
            current = self._snapshot
            profiles = dict(current._profiles)
            profiles.pop(table.lower(), None)
            self._snapshot = CatalogSnapshot(current.version + 1, profiles)

    def clear(self) -> None:
        with self._lock:
            self._snapshot = CatalogSnapshot(self._snapshot.version + 1, {})

    def has_any_stats(self, table: str) -> bool:
        return self._snapshot.has_any_stats(table)
