"""RUNSTATS: collect general (basic + distribution) statistics.

This mirrors the DB2 tool the paper's prototype invokes: basic statistics
(cardinality), distribution statistics per column (min/max, distinct count,
frequent values, equi-depth histogram), optionally from a sample, and —
for the *workload statistics* experiment setting — multi-column group
histograms for a given list of column groups.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from ..histograms import (
    AdaptiveGridHistogram,
    EquiDepthHistogram,
    Interval,
    Region,
    domain_for_values,
)
from ..storage import Database, Table, fixed_size_sample
from ..types import DataType
from .catalog import SystemCatalog, canonical_group
from .statistics import (
    ColumnGroupStatistics,
    ColumnStatistics,
    TableStatistics,
    top_frequent_values,
)

DEFAULT_N_BUCKETS = 20
DEFAULT_N_FREQUENT = 10


def column_domain(table: Table, column: str) -> Interval:
    """Bounded physical domain of a column from its current data."""
    data = table.column_data(column)
    dtype = table.schema.column(column).dtype
    if len(data) == 0:
        return Interval(0.0, 1.0)
    integral = dtype is not DataType.FLOAT
    return domain_for_values(float(data.min()), float(data.max()), integral)


def run_runstats(
    database: Database,
    catalog: SystemCatalog,
    table_name: str,
    now: int = 0,
    columns: Optional[Iterable[str]] = None,
    with_distribution: bool = True,
    n_buckets: int = DEFAULT_N_BUCKETS,
    n_frequent: int = DEFAULT_N_FREQUENT,
    sample_size: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    parallel=None,
    zone_maps=None,
) -> TableStatistics:
    """Collect statistics on one table and store them in the catalog.

    ``sample_size=None`` scans the full table (exact statistics). With a
    sample, distinct counts and histograms are scaled up from the sample.
    ``parallel`` (a ``ParallelScanManager``) shards the per-column
    distribution passes across the worker pool — one task per column over
    the same parent-drawn sample rows, so statistics are identical either
    way. ``zone_maps`` (a ``ZoneMapStore``) piggybacks zone-map synopsis
    builds on the statistics pass: RUNSTATS already walks every column,
    so the observe plane's shard-skipping maps come up warm.
    """
    table = database.table(table_name)
    cardinality = table.row_count

    if sample_size is not None and sample_size < cardinality:
        if rng is None:
            rng = np.random.default_rng(0)
        rows = fixed_size_sample(table, sample_size, rng)
        scale = cardinality / max(1, len(rows))
    else:
        rows = None
        scale = 1.0

    table_stats = TableStatistics(
        table=table.name,
        cardinality=float(cardinality),
        collected_at=now,
        udi_snapshot=table.udi_total,
    )
    catalog.set_table_stats(table_stats)

    if with_distribution:
        names = list(columns) if columns is not None else list(
            table.schema.column_names()
        )
        raw_by_name = None
        if parallel is not None:
            integral_by_name = {
                name: table.schema.column(name).dtype is not DataType.FLOAT
                for name in names
            }
            raw_by_name = parallel.column_statistics(
                table,
                names,
                rows,
                scale,
                n_buckets,
                n_frequent,
                integral_by_name,
            )
        for name in names:
            if raw_by_name is not None:
                stats = ColumnStatistics(
                    column=name,
                    dtype=table.schema.column(name).dtype,
                    collected_at=now,
                    **raw_by_name[name],
                )
            else:
                stats = _column_statistics(
                    table, name, rows, scale, now, n_buckets, n_frequent
                )
            catalog.set_column_stats(table.name, stats)
    if zone_maps is not None and cardinality > 0:
        zone_maps.build(table)
    return table_stats


def column_stats_raw(
    data: np.ndarray,
    integral: bool,
    scale: float,
    n_buckets: int,
    n_frequent: int,
) -> dict:
    """Distribution statistics of one physical column array.

    Pure function over the (already row-filtered) physical values —
    shared by the sequential path below and the process-parallel
    ``column_stats`` kernel, so both compute identical statistics.
    Returns ``ColumnStatistics`` field values keyed by name.
    """
    data = data.astype(np.float64)
    if len(data) == 0:
        return dict(
            n_distinct=0.0,
            min_value=0.0,
            max_value=0.0,
            row_count=0.0,
            frequent_values=[],
            histogram=None,
        )
    ndv = float(len(np.unique(data)))
    if scale > 1.0:
        # First-order unique-count scale-up; exact enough for the cost
        # model (the paper's point is *correlations*, not NDV accuracy).
        ndv = min(ndv * scale, float(len(data)) * scale)
    histogram = EquiDepthHistogram.build(
        data, n_buckets=n_buckets, integral=integral
    )
    if scale > 1.0:
        histogram = histogram.scaled(scale)
    return dict(
        n_distinct=ndv,
        min_value=float(data.min()),
        max_value=float(data.max()),
        row_count=float(len(data)) * scale,
        frequent_values=[
            (v, c * scale) for v, c in top_frequent_values(data, n_frequent)
        ],
        histogram=histogram,
    )


def _column_statistics(
    table: Table,
    column: str,
    rows: Optional[np.ndarray],
    scale: float,
    now: int,
    n_buckets: int,
    n_frequent: int,
) -> ColumnStatistics:
    dtype = table.schema.column(column).dtype
    data = table.column_data(column)
    if rows is not None:
        data = data[rows]
    raw = column_stats_raw(
        data,
        integral=dtype is not DataType.FLOAT,
        scale=scale,
        n_buckets=n_buckets,
        n_frequent=n_frequent,
    )
    return ColumnStatistics(column=column, dtype=dtype, collected_at=now, **raw)


def collect_group_statistics(
    database: Database,
    catalog: SystemCatalog,
    table_name: str,
    columns: Sequence[str],
    now: int = 0,
    bins_per_dim: int = 8,
) -> ColumnGroupStatistics:
    """Build an exact multi-column grid histogram (workload statistics)."""
    table = database.table(table_name)
    group = canonical_group(columns)
    data = [table.column_data(c).astype(np.float64) for c in group]
    domain = Region(tuple(column_domain(table, c) for c in group))
    integral = [
        table.schema.column(c).dtype is not DataType.FLOAT for c in group
    ]
    histogram = AdaptiveGridHistogram.from_data(
        data,
        domain,
        bins_per_dim=bins_per_dim,
        now=now,
        integral_dims=integral,
    )
    stats = ColumnGroupStatistics(
        table=table.name, columns=group, histogram=histogram, collected_at=now
    )
    catalog.set_group_stats(stats)
    return stats


def collect_workload_statistics(
    database: Database,
    catalog: SystemCatalog,
    groups: Iterable[Tuple[str, Sequence[str]]],
    now: int = 0,
    bins_per_dim: int = 8,
) -> int:
    """Collect group statistics for every (table, columns) pair.

    This reproduces experiment setting 3 of Section 4.2: "general
    statistics ... in addition to workload statistics (i.e., all column
    groups that occur in all the queries)". Returns the number of group
    histograms built; single-column groups are skipped (RUNSTATS already
    covers them).
    """
    built = 0
    seen = set()
    for table_name, columns in groups:
        key = (table_name.lower(), canonical_group(columns))
        if len(key[1]) < 2 or key in seen:
            continue
        seen.add(key)
        collect_group_statistics(
            database, catalog, table_name, list(columns), now, bins_per_dim
        )
        built += 1
    return built
