"""Statistics objects stored in the system catalog.

These are the *general statistics* of the paper's Section 1: table
cardinality, per-column distinct counts, min/max, frequent values and an
equi-depth histogram. A traditional optimizer combines them under the
uniformity and independence assumptions; JITS exists because that often
goes wrong.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..histograms import AdaptiveGridHistogram, EquiDepthHistogram, Interval
from ..types import DataType

ROWS_PER_PAGE = 100  # fixed page shape for the cost model


@dataclass
class ColumnStatistics:
    """Distribution statistics for one column (physical value space)."""

    column: str
    dtype: DataType
    n_distinct: float
    min_value: float
    max_value: float
    row_count: float
    frequent_values: List[Tuple[float, float]] = field(default_factory=list)
    histogram: Optional[EquiDepthHistogram] = None
    collected_at: int = 0

    @property
    def frequent_mass(self) -> float:
        return sum(count for _, count in self.frequent_values)

    def selectivity_eq(self, physical_value: float) -> float:
        """Selectivity of ``col = value`` at collection time."""
        if self.row_count <= 0 or self.n_distinct <= 0:
            return 0.0
        if physical_value < self.min_value or physical_value > self.max_value:
            return 0.0
        for value, count in self.frequent_values:
            if value == physical_value:
                return min(1.0, count / self.row_count)
        remaining_rows = max(0.0, self.row_count - self.frequent_mass)
        remaining_ndv = max(1.0, self.n_distinct - len(self.frequent_values))
        return min(1.0, (remaining_rows / remaining_ndv) / self.row_count)

    def selectivity_interval(self, interval: Interval) -> float:
        """Selectivity of ``col`` in a half-open interval."""
        if interval.is_empty or self.row_count <= 0:
            return 0.0
        if self.histogram is not None:
            return self.histogram.estimate_selectivity(interval)
        # No distribution statistics: fall back to uniformity over [min, max].
        span_high = self.max_value + (1.0 if not self.dtype.is_numeric else 0.0)
        domain = Interval(self.min_value, max(span_high, self.max_value))
        if domain.width <= 0:
            return 1.0 if interval.contains_value(self.min_value) else 0.0
        clipped = interval.intersect(
            Interval(domain.low, math.nextafter(domain.high, math.inf))
        )
        if clipped.is_empty:
            return 0.0
        return min(1.0, clipped.width / max(domain.width, 1e-12))

    def boundary_list(self) -> List[float]:
        """Boundaries used by the Section 3.3.2 accuracy metric."""
        if self.histogram is not None:
            return self.histogram.boundary_list()
        return [self.min_value, self.max_value]


@dataclass
class TableStatistics:
    """Basic statistics for one table."""

    table: str
    cardinality: float
    collected_at: int = 0
    udi_snapshot: int = 0

    @property
    def n_pages(self) -> float:
        return max(1.0, self.cardinality / ROWS_PER_PAGE)


@dataclass
class ColumnGroupStatistics:
    """A multi-column distribution statistic (used for *workload stats*).

    In the paper's experiment setting 3, all column groups appearing in the
    workload get statistics collected up front. We store them as grid
    histograms built from the full data at collection time — they are
    general statistics, so they are *not* refreshed as the data changes.
    """

    table: str
    columns: Tuple[str, ...]  # canonical (sorted) order
    histogram: AdaptiveGridHistogram
    collected_at: int = 0

    def selectivity(self, region) -> float:
        return self.histogram.estimate_selectivity(region)


@dataclass
class TableProfile:
    """Everything the catalog knows about one table."""

    table_stats: Optional[TableStatistics] = None
    column_stats: Dict[str, ColumnStatistics] = field(default_factory=dict)
    group_stats: Dict[Tuple[str, ...], ColumnGroupStatistics] = field(
        default_factory=dict
    )


def top_frequent_values(
    values: np.ndarray, k: int
) -> List[Tuple[float, float]]:
    """Top-``k`` most frequent physical values with their counts."""
    if len(values) == 0 or k <= 0:
        return []
    uniques, counts = np.unique(values, return_counts=True)
    if len(uniques) <= k:
        order = np.argsort(-counts)
    else:
        order = np.argpartition(-counts, k)[:k]
        order = order[np.argsort(-counts[order])]
    return [(float(uniques[i]), float(counts[i])) for i in order[:k]]
