"""Predicate model: local predicates, join predicates and predicate groups.

A *local predicate* compares a column of one quantifier against constants
(``make = 'Toyota'``, ``year > 2000``, ``price BETWEEN 10 AND 20``). A
*predicate group* is a set of local predicates on the same quantifier —
the unit the paper's query analysis enumerates and the unit whose joint
selectivity is a query-specific statistic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Tuple

from ..errors import PlanningError
from ..types import Value


class PredOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "between"
    IN = "in"


@dataclass(frozen=True)
class LocalPredicate:
    """``alias.column <op> values`` with constant operands."""

    alias: str
    column: str
    op: PredOp
    values: Tuple[Value, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "alias", self.alias.lower())
        object.__setattr__(self, "column", self.column.lower())
        expected = {PredOp.BETWEEN: 2}.get(self.op)
        if expected is not None and len(self.values) != expected:
            raise PlanningError(
                f"{self.op.value} predicate needs {expected} values"
            )
        if self.op is PredOp.IN and len(self.values) == 0:
            raise PlanningError("IN predicate needs at least one value")
        if self.op not in (PredOp.BETWEEN, PredOp.IN) and len(self.values) != 1:
            raise PlanningError(f"{self.op.value} predicate needs one value")

    @property
    def value(self) -> Value:
        return self.values[0]

    def __str__(self) -> str:
        if self.op is PredOp.BETWEEN:
            return (
                f"{self.alias}.{self.column} BETWEEN "
                f"{self.values[0]!r} AND {self.values[1]!r}"
            )
        if self.op is PredOp.IN:
            inner = ", ".join(repr(v) for v in self.values)
            return f"{self.alias}.{self.column} IN ({inner})"
        return f"{self.alias}.{self.column} {self.op.value} {self.value!r}"


@dataclass(frozen=True)
class JoinPredicate:
    """Equi-join predicate ``left_alias.left_col = right_alias.right_col``."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "left_alias", self.left_alias.lower())
        object.__setattr__(self, "left_column", self.left_column.lower())
        object.__setattr__(self, "right_alias", self.right_alias.lower())
        object.__setattr__(self, "right_column", self.right_column.lower())

    def aliases(self) -> FrozenSet[str]:
        return frozenset((self.left_alias, self.right_alias))

    def side_for(self, alias: str) -> Tuple[str, str]:
        """(column on ``alias`` side, the other alias)."""
        alias = alias.lower()
        if alias == self.left_alias:
            return self.left_column, self.right_alias
        if alias == self.right_alias:
            return self.right_column, self.left_alias
        raise PlanningError(f"alias {alias!r} is not part of {self}")

    def column_for(self, alias: str) -> str:
        return self.side_for(alias)[0]

    def __str__(self) -> str:
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )


@dataclass(frozen=True)
class PredicateGroup:
    """A set of local predicates on the same quantifier."""

    predicates: FrozenSet[LocalPredicate]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise PlanningError("a predicate group cannot be empty")
        aliases = {p.alias for p in self.predicates}
        if len(aliases) != 1:
            raise PlanningError(
                f"predicate group spans multiple quantifiers: {sorted(aliases)}"
            )

    @staticmethod
    def of(*predicates: LocalPredicate) -> "PredicateGroup":
        return PredicateGroup(frozenset(predicates))

    @staticmethod
    def from_iterable(predicates: Iterable[LocalPredicate]) -> "PredicateGroup":
        return PredicateGroup(frozenset(predicates))

    @property
    def alias(self) -> str:
        return next(iter(self.predicates)).alias

    @property
    def size(self) -> int:
        return len(self.predicates)

    def columns(self) -> Tuple[str, ...]:
        """Canonical (sorted, deduplicated) column group."""
        return tuple(sorted({p.column for p in self.predicates}))

    def sorted_predicates(self) -> List[LocalPredicate]:
        return sorted(
            self.predicates, key=lambda p: (p.column, p.op.value, str(p.values))
        )

    def contains(self, other: "PredicateGroup") -> bool:
        return other.predicates <= self.predicates

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.sorted_predicates())

    def __iter__(self):
        return iter(self.sorted_predicates())
