"""Canonical keys for residual (non-histogram-able) predicates.

Lives in the predicates package so both the optimizer (lookup) and the
JITS residual store (record) can share it without an import cycle.
"""

from __future__ import annotations

from ..sql import ast


def residual_key(expr: ast.BoolExpr, alias: str) -> str:
    """Canonical text of a residual predicate, alias-independent.

    The same logical predicate written against different table aliases
    must share one entry, so the quantifier name is replaced by a
    placeholder before rendering.
    """
    return _render(expr, alias.lower())


def _render(node, alias: str) -> str:
    if isinstance(node, ast.ColumnRef):
        qualifier = (node.qualifier or "").lower()
        shown = "$T" if qualifier == alias else qualifier
        return f"{shown}.{node.name.lower()}"
    if isinstance(node, ast.Literal):
        return str(node)
    if isinstance(node, ast.BinaryArith):
        return f"({_render(node.left, alias)} {node.op} {_render(node.right, alias)})"
    if isinstance(node, ast.UnaryArith):
        return f"(-{_render(node.operand, alias)})"
    if isinstance(node, ast.Comparison):
        return (
            f"{_render(node.left, alias)} {node.op.value} "
            f"{_render(node.right, alias)}"
        )
    if isinstance(node, ast.BetweenExpr):
        word = "NOT BETWEEN" if node.negated else "BETWEEN"
        return (
            f"{_render(node.operand, alias)} {word} "
            f"{_render(node.low, alias)} AND {_render(node.high, alias)}"
        )
    if isinstance(node, ast.InListExpr):
        word = "NOT IN" if node.negated else "IN"
        inner = ", ".join(str(i) for i in node.items)
        return f"{_render(node.operand, alias)} {word} ({inner})"
    if isinstance(node, ast.AndExpr):
        return " AND ".join(f"({_render(o, alias)})" for o in node.operands)
    if isinstance(node, ast.OrExpr):
        return " OR ".join(f"({_render(o, alias)})" for o in node.operands)
    if isinstance(node, ast.NotExpr):
        return f"NOT ({_render(node.operand, alias)})"
    return repr(node)
