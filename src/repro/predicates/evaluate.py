"""Vectorized evaluation of local predicates against stored tables.

Used by three consumers: the executor's scan filters, the JITS sampling
collector (evaluating candidate groups on a sample), and the reference
executor in the tests.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..errors import ExecutionError
from ..storage import Table
from ..types import DataType
from .predicate import LocalPredicate, PredOp


def _column_values(
    table: Table, column: str, rows: Optional[np.ndarray]
) -> np.ndarray:
    data = table.column_data(column)
    if rows is not None:
        data = data[rows]
    return data


def _encode(table: Table, column: str, value) -> Optional[float]:
    phys = table.column(column).lookup_value(value)
    return None if phys is None else float(phys)


def predicate_mask(
    table: Table, predicate: LocalPredicate, rows: Optional[np.ndarray] = None
) -> np.ndarray:
    """Boolean mask of rows satisfying the predicate."""
    data = _column_values(table, predicate.column, rows)
    dtype = table.schema.column(predicate.column).dtype
    op = predicate.op

    if op in (PredOp.EQ, PredOp.NE):
        phys = _encode(table, predicate.column, predicate.value)
        if phys is None:
            base = np.zeros(len(data), dtype=bool)
            return ~base if op is PredOp.NE else base
        mask = data == phys
        return ~mask if op is PredOp.NE else mask

    if op is PredOp.IN:
        # Encode the whole value list once and test membership in a single
        # vectorized pass instead of one equality scan per list element.
        encoded = (
            _encode(table, predicate.column, value)
            for value in predicate.values
        )
        wanted = [phys for phys in encoded if phys is not None]
        if not wanted:
            return np.zeros(len(data), dtype=bool)
        return np.isin(data, np.asarray(wanted, dtype=data.dtype))

    # Order comparisons: meaningful for numeric columns. Dictionary codes
    # do not follow string order, so range predicates on strings are
    # rejected rather than silently wrong.
    if dtype is DataType.STRING:
        raise ExecutionError(
            f"range predicate on string column "
            f"{predicate.alias}.{predicate.column} is not supported"
        )
    phys = _encode(table, predicate.column, predicate.values[0])
    if op is PredOp.BETWEEN:
        hi = _encode(table, predicate.column, predicate.values[1])
        return (data >= phys) & (data <= hi)
    if op is PredOp.LT:
        return data < phys
    if op is PredOp.LE:
        return data <= phys
    if op is PredOp.GT:
        return data > phys
    if op is PredOp.GE:
        return data >= phys
    raise AssertionError(f"unhandled predicate op {op}")


def masks_for_predicates(
    table: Table,
    predicates: Iterable[LocalPredicate],
    rows: Optional[np.ndarray] = None,
    cache_get=None,
    cache_put=None,
):
    """One boolean mask per *distinct* predicate in ``predicates``.

    ``cache_get(predicate) -> mask | None`` and ``cache_put(predicate, mask)``
    plug an external memo (the JITS mask cache) into the evaluation; both
    default to uncached computation. Returns ``(masks, hits, misses)`` where
    hits/misses only count external-cache traffic.
    """
    masks = {}
    hits = misses = 0
    for predicate in predicates:
        if predicate in masks:
            continue
        mask = cache_get(predicate) if cache_get is not None else None
        if mask is None:
            mask = predicate_mask(table, predicate, rows)
            if cache_put is not None:
                cache_put(predicate, mask)
                misses += 1
        else:
            hits += 1
        masks[predicate] = mask
    return masks, hits, misses


def group_mask(
    table: Table,
    predicates: Iterable[LocalPredicate],
    rows: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Conjunction of predicate masks."""
    mask: Optional[np.ndarray] = None
    for predicate in predicates:
        m = predicate_mask(table, predicate, rows)
        mask = m if mask is None else (mask & m)
    if mask is None:
        n = table.row_count if rows is None else len(rows)
        return np.ones(n, dtype=bool)
    return mask


def count_matches(
    table: Table,
    predicates: Iterable[LocalPredicate],
    rows: Optional[np.ndarray] = None,
) -> int:
    """Number of rows satisfying all predicates."""
    return int(group_mask(table, predicates, rows).sum())
