"""Mapping predicates to numeric regions of the physical value space.

Selectivity statistics (histograms, QSS archive entries) live on the
columns' physical domains: INT values, FLOAT values, or dictionary codes
for strings. This module converts predicates and predicate groups into
half-open :class:`~repro.histograms.intervals.Interval` / ``Region``
objects on that space.

Not every predicate is representable as one interval (``<>``, multi-value
``IN``); those return ``None`` and the selectivity layer handles them by
complement/sum instead.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..histograms import Interval, Region
from ..storage import Table
from ..types import DataType, Value
from .predicate import LocalPredicate, PredOp, PredicateGroup

EMPTY = Interval(0.0, 0.0)


def physical_value(table: Table, column: str, value: Value) -> Optional[float]:
    """Physical form of a literal; None when a string is unknown.

    An unknown string means no stored row can match an equality against it.
    """
    col = table.column(column)
    phys = col.lookup_value(value)
    if phys is None:
        return None
    return float(phys)


def _is_integral(table: Table, column: str) -> bool:
    return table.schema.column(column).dtype is not DataType.FLOAT


def _point_interval(value: float, integral: bool) -> Interval:
    if integral:
        return Interval(value, value + 1.0)
    return Interval(value, float(np.nextafter(value, np.inf)))


def predicate_interval(
    table: Table, predicate: LocalPredicate
) -> Optional[Interval]:
    """Half-open interval for a predicate, or None if not representable."""
    integral = _is_integral(table, predicate.column)
    op = predicate.op
    if op is PredOp.EQ:
        phys = physical_value(table, predicate.column, predicate.value)
        if phys is None:
            return EMPTY
        return _point_interval(phys, integral)
    if op is PredOp.IN:
        if len(predicate.values) == 1:
            phys = physical_value(table, predicate.column, predicate.values[0])
            if phys is None:
                return EMPTY
            return _point_interval(phys, integral)
        return None
    if op is PredOp.NE:
        return None
    if op is PredOp.BETWEEN:
        lo = physical_value(table, predicate.column, predicate.values[0])
        hi = physical_value(table, predicate.column, predicate.values[1])
        if lo is None or hi is None:
            return None  # string BETWEEN with unknown bound: give up on regions
        if integral:
            return Interval(lo, hi + 1.0)
        return Interval(lo, float(np.nextafter(hi, np.inf)))
    phys = physical_value(table, predicate.column, predicate.value)
    if phys is None:
        return None
    if op is PredOp.LT:
        return Interval(-math.inf, phys)
    if op is PredOp.LE:
        if integral:
            return Interval(-math.inf, phys + 1.0)
        return Interval(-math.inf, float(np.nextafter(phys, np.inf)))
    if op is PredOp.GT:
        if integral:
            return Interval(phys + 1.0, math.inf)
        return Interval(float(np.nextafter(phys, np.inf)), math.inf)
    if op is PredOp.GE:
        return Interval(phys, math.inf)
    raise AssertionError(f"unhandled predicate op {op}")


def group_region(
    table: Table, group: PredicateGroup
) -> Optional[Tuple[Tuple[str, ...], Region]]:
    """``(canonical columns, region)`` for a group, or None.

    Multiple predicates on the same column intersect; a group containing
    any non-interval predicate is not region-representable.
    """
    per_column: Dict[str, Interval] = {}
    for predicate in group.predicates:
        interval = predicate_interval(table, predicate)
        if interval is None:
            return None
        current = per_column.get(predicate.column)
        per_column[predicate.column] = (
            interval if current is None else current.intersect(interval)
        )
    columns = tuple(sorted(per_column))
    region = Region(tuple(per_column[c] for c in columns))
    return columns, region


def region_for_columns(
    table: Table, group: PredicateGroup, columns: Tuple[str, ...]
) -> Optional[Region]:
    """Region of ``group`` expressed over a fixed column order.

    Columns without a predicate in the group contribute an unbounded
    interval (useful for matching a group against an existing
    multi-dimensional histogram on a superset of its columns).
    """
    result = group_region(table, group)
    if result is None:
        return None
    have, region = result
    if not set(have) <= set(columns):
        return None
    mapping = dict(zip(have, region.intervals))
    return Region(tuple(mapping.get(c, Interval()) for c in columns))
