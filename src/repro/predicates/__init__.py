"""Predicate model, region mapping and vectorized evaluation."""

from .evaluate import (
    count_matches,
    group_mask,
    masks_for_predicates,
    predicate_mask,
)
from .predicate import JoinPredicate, LocalPredicate, PredOp, PredicateGroup
from .regions import (
    group_region,
    physical_value,
    predicate_interval,
    region_for_columns,
)
from .residualkey import residual_key

__all__ = [
    "PredOp",
    "LocalPredicate",
    "JoinPredicate",
    "PredicateGroup",
    "predicate_mask",
    "group_mask",
    "masks_for_predicates",
    "count_matches",
    "predicate_interval",
    "group_region",
    "region_for_columns",
    "physical_value",
    "residual_key",
]
