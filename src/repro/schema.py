"""Logical schema objects: column and table definitions.

These are shared by the storage engine (physical layout), the catalog
(statistics are keyed by schema objects) and the binder (name resolution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .errors import CatalogError
from .types import DataType


@dataclass(frozen=True)
class ColumnDef:
    """Definition of one column: a name and a logical type."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise CatalogError(f"invalid column name {self.name!r}")


@dataclass
class ForeignKey:
    """A foreign-key relationship ``column -> ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass
class TableSchema:
    """Definition of a table: ordered columns plus key metadata."""

    name: str
    columns: List[ColumnDef]
    primary_key: Optional[str] = None
    foreign_keys: List[ForeignKey] = field(default_factory=list)
    _by_name: Dict[str, ColumnDef] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.columns:
            raise CatalogError(f"table {self.name!r} must have columns")
        self._by_name = {}
        for col in self.columns:
            key = col.name.lower()
            if key in self._by_name:
                raise CatalogError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            self._by_name[key] = col
        if self.primary_key is not None and not self.has_column(self.primary_key):
            raise CatalogError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for fk in self.foreign_keys:
            if not self.has_column(fk.column):
                raise CatalogError(
                    f"foreign key column {fk.column!r} is not in {self.name!r}"
                )

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def column(self, name: str) -> ColumnDef:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column_index(self, name: str) -> int:
        key = name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == key:
                return i
        raise CatalogError(f"table {self.name!r} has no column {name!r}")


def make_schema(
    name: str,
    columns: Sequence[Tuple[str, DataType]],
    primary_key: Optional[str] = None,
    foreign_keys: Sequence[ForeignKey] = (),
) -> TableSchema:
    """Convenience constructor from ``(name, dtype)`` pairs."""
    return TableSchema(
        name=name,
        columns=[ColumnDef(n, t) for n, t in columns],
        primary_key=primary_key,
        foreign_keys=list(foreign_keys),
    )
