"""Physical plan nodes.

Every node carries its estimated output cardinality (``est_rows``) and the
cumulative estimated cost (``est_cost``). The executor later records the
*actual* cardinality next to the estimate — that comparison is the LEO-style
feedback that drives the JITS StatHistory.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields
from typing import List, Optional, Tuple

from ..predicates import JoinPredicate, LocalPredicate
from ..sql import ast


@dataclass
class PlanNode:
    est_rows: float = 0.0
    est_cost: float = 0.0
    actual_rows: Optional[int] = None  # filled in by the executor
    actual_base_rows: Optional[int] = None  # scans: rows before filtering
    actual_probes: Optional[int] = None  # index NL joins: probe count

    def children(self) -> List["PlanNode"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        actual = "" if self.actual_rows is None else f" actual={self.actual_rows}"
        lines = [
            f"{pad}{self.label()}  "
            f"(rows={self.est_rows:.1f} cost={self.est_cost:.1f}{actual})"
        ]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def walk(self) -> List["PlanNode"]:
        nodes = [self]
        for child in self.children():
            nodes.extend(child.walk())
        return nodes

    def clone(self) -> "PlanNode":
        """Structural copy with fresh ``actual_*`` slots.

        The executor writes observed cardinalities onto plan nodes, so a
        plan shared through the plan cache must never be executed
        directly by concurrent statements — each execution runs against
        its own node tree. Predicates, AST fragments and query blocks
        are immutable at execution time and stay shared.
        """
        node = copy.copy(self)
        node.actual_rows = None
        node.actual_base_rows = None
        node.actual_probes = None
        for f in fields(node):
            value = getattr(node, f.name)
            if isinstance(value, PlanNode):
                setattr(node, f.name, value.clone())
        return node


@dataclass
class SeqScan(PlanNode):
    alias: str = ""
    table_name: str = ""
    predicates: Tuple[LocalPredicate, ...] = ()
    scan_residuals: Tuple[ast.BoolExpr, ...] = ()
    base_rows: float = 0.0

    def label(self) -> str:
        preds = f" [{len(self.predicates)} preds]" if self.predicates else ""
        return f"SeqScan {self.table_name} as {self.alias}{preds}"


@dataclass
class IndexScan(PlanNode):
    alias: str = ""
    table_name: str = ""
    index_column: str = ""
    index_kind: str = "hash"  # "hash" | "sorted"
    index_predicate: Optional[LocalPredicate] = None
    remaining: Tuple[LocalPredicate, ...] = ()
    scan_residuals: Tuple[ast.BoolExpr, ...] = ()
    base_rows: float = 0.0

    def label(self) -> str:
        return (
            f"IndexScan({self.index_kind}) {self.table_name} as {self.alias} "
            f"on {self.index_column}"
        )


@dataclass
class DerivedScan(PlanNode):
    alias: str = ""
    child_plan: Optional[PlanNode] = None
    child_block: object = None  # QueryBlock; avoids a circular import
    predicates: Tuple[LocalPredicate, ...] = ()  # parent's local preds on it
    scan_residuals: Tuple[ast.BoolExpr, ...] = ()

    def children(self) -> List[PlanNode]:
        return [self.child_plan] if self.child_plan is not None else []

    def label(self) -> str:
        return f"DerivedScan {self.alias}"


@dataclass
class MaterializedScan(PlanNode):
    """Scan over an intermediate materialized at a reopt checkpoint.

    After a mid-query plan switch, the already-computed segment of the old
    plan is represented by this node: it reads the checkpoint's batch back
    out of the re-optimization state (zero cost — the work is sunk) and
    stands in for every base table the segment covered.
    """

    intermediate_id: int = 0
    covered_aliases: Tuple[str, ...] = ()
    rows: int = 0  # exact cardinality, not an estimate
    reopt_round: int = 0

    def label(self) -> str:
        covered = ", ".join(self.covered_aliases)
        return (
            f"MaterializedScan #{self.intermediate_id} [reopt round "
            f"{self.reopt_round}] covering ({covered})"
        )


@dataclass
class HashJoin(PlanNode):
    probe: Optional[PlanNode] = None  # left / outer
    build: Optional[PlanNode] = None  # right, hashed
    join_predicates: Tuple[JoinPredicate, ...] = ()

    def children(self) -> List[PlanNode]:
        return [self.probe, self.build]

    def label(self) -> str:
        conds = ", ".join(str(j) for j in self.join_predicates)
        return f"HashJoin on ({conds})"


@dataclass
class IndexNLJoin(PlanNode):
    outer: Optional[PlanNode] = None
    inner_alias: str = ""
    inner_table: str = ""
    inner_index_column: str = ""
    join_predicates: Tuple[JoinPredicate, ...] = ()
    inner_predicates: Tuple[LocalPredicate, ...] = ()
    inner_scan_residuals: Tuple[ast.BoolExpr, ...] = ()

    def children(self) -> List[PlanNode]:
        return [self.outer]

    def label(self) -> str:
        conds = ", ".join(str(j) for j in self.join_predicates)
        return (
            f"IndexNLJoin inner={self.inner_table} as {self.inner_alias} "
            f"via {self.inner_index_column} on ({conds})"
        )


@dataclass
class NestedLoopJoin(PlanNode):
    outer: Optional[PlanNode] = None
    inner: Optional[PlanNode] = None
    join_predicates: Tuple[JoinPredicate, ...] = ()

    def children(self) -> List[PlanNode]:
        return [self.outer, self.inner]

    def label(self) -> str:
        if not self.join_predicates:
            return "NestedLoopJoin (cross)"
        conds = ", ".join(str(j) for j in self.join_predicates)
        return f"NestedLoopJoin on ({conds})"


@dataclass
class Filter(PlanNode):
    child: Optional[PlanNode] = None
    residuals: Tuple[ast.BoolExpr, ...] = ()

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Filter [{len(self.residuals)} residuals]"


@dataclass
class Aggregate(PlanNode):
    child: Optional[PlanNode] = None
    group_keys: Tuple[ast.ColumnRef, ...] = ()
    items: Tuple[ast.SelectItem, ...] = ()
    output_names: Tuple[str, ...] = ()
    having: Optional[ast.BoolExpr] = None

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(str(k) for k in self.group_keys) or "<all>"
        return f"Aggregate by [{keys}]"


@dataclass
class Project(PlanNode):
    child: Optional[PlanNode] = None
    items: Tuple[ast.SelectItem, ...] = ()
    output_names: Tuple[str, ...] = ()

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Project [{', '.join(self.output_names)}]"


@dataclass
class Distinct(PlanNode):
    child: Optional[PlanNode] = None

    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class Sort(PlanNode):
    child: Optional[PlanNode] = None
    order_by: Tuple[ast.OrderItem, ...] = ()

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(
            f"{o.expr}{' DESC' if o.descending else ''}" for o in self.order_by
        )
        return f"Sort [{keys}]"


@dataclass
class Limit(PlanNode):
    child: Optional[PlanNode] = None
    count: int = 0

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Limit {self.count}"


def actual_plan_cost(root: PlanNode) -> float:
    """Re-cost an *executed* plan with its observed cardinalities.

    This is the deterministic plan-quality metric the benchmarks report
    alongside wall-clock time: same plan + same data -> same number, no
    machine noise. Units are the calibrated cost model's (~microseconds).
    """
    from . import cost

    total = 0.0
    for node in root.walk():
        out = float(node.actual_rows or 0)
        child_rows = [float(c.actual_rows or 0) for c in node.children()]
        if isinstance(node, SeqScan):
            total += cost.seq_scan_cost(
                float(node.actual_base_rows or 0),
                len(node.predicates) + len(node.scan_residuals),
            )
        elif isinstance(node, IndexScan):
            total += cost.index_scan_cost(
                float(node.actual_base_rows or 0),
                len(node.remaining) + len(node.scan_residuals),
            )
        elif isinstance(node, DerivedScan):
            inner = child_rows[0] if child_rows else 0.0
            total += cost.materialize_cost(inner)
        elif isinstance(node, MaterializedScan):
            pass  # sunk cost: the intermediate was paid for by the old plan
        elif isinstance(node, HashJoin):
            probe_rows = child_rows[0] if child_rows else 0.0
            build_rows = child_rows[1] if len(child_rows) > 1 else 0.0
            total += cost.hash_join_cost(build_rows, probe_rows, out)
        elif isinstance(node, IndexNLJoin):
            total += cost.index_nl_join_cost(float(node.actual_probes or 0), out)
        elif isinstance(node, NestedLoopJoin):
            outer_rows = child_rows[0] if child_rows else 0.0
            inner_rows = child_rows[1] if len(child_rows) > 1 else 0.0
            total += cost.nested_loop_cost(outer_rows, inner_rows, out)
        elif isinstance(node, Filter):
            total += cost.filter_cost(
                child_rows[0] if child_rows else 0.0, len(node.residuals)
            )
        elif isinstance(node, Aggregate):
            total += cost.aggregate_cost(
                child_rows[0] if child_rows else 0.0, out
            )
        elif isinstance(node, Project):
            total += (child_rows[0] if child_rows else 0.0) * cost.CPU_OPERATOR_COST
        elif isinstance(node, Distinct):
            total += cost.distinct_cost(child_rows[0] if child_rows else 0.0)
        elif isinstance(node, Sort):
            total += cost.sort_cost(child_rows[0] if child_rows else 0.0)
        # Limit: free.
    return total


def scan_nodes(root: PlanNode) -> List[PlanNode]:
    """All base-access nodes in a plan (for feedback collection)."""
    result = []
    for node in root.walk():
        if isinstance(node, (SeqScan, IndexScan)):
            result.append(node)
        elif isinstance(node, IndexNLJoin):
            result.append(node)  # the inner side is a base access too
    return result
