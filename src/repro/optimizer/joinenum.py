"""System-R style dynamic-programming join enumeration.

Works over bitmask-indexed subsets of a block's quantifiers. Cardinality of
a subset is computed once (product of filtered base cardinalities times the
selectivity of every join predicate internal to the subset); methods
considered are hash join (both build orientations), index nested-loop join
(when the inner is a single base table with a hash index on its join
column), and nested-loop join as the fallback / cross-product method.
Cross products are only enumerated when no join predicate connects a split,
so connected queries never waste planning time on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PlanningError
from ..predicates import JoinPredicate, LocalPredicate
from ..sql import ast
from . import cost
from .plans import HashJoin, IndexNLJoin, NestedLoopJoin, PlanNode


@dataclass
class BaseRelation:
    """Everything the enumerator needs to know about one quantifier."""

    alias: str
    plan: PlanNode
    filtered_rows: float
    table_name: Optional[str] = None  # None for derived tables
    indexed_columns: Tuple[str, ...] = ()  # hash-indexed columns
    local_predicates: Tuple[LocalPredicate, ...] = ()
    scan_residuals: Tuple[ast.BoolExpr, ...] = ()
    local_selectivity: float = 1.0  # selectivity its local predicates apply
    # For re-optimization: a materialized intermediate stands in for
    # several original quantifiers. Join predicates referencing any of
    # these aliases resolve to this relation's bit in the enumeration.
    covered_aliases: Tuple[str, ...] = ()


def enumerate_joins(
    relations: Sequence[BaseRelation],
    join_predicates: Sequence[JoinPredicate],
    join_selectivities: Sequence[float],
) -> PlanNode:
    """Return the cheapest plan joining all relations."""
    if not relations:
        raise PlanningError("no relations to join")
    index_of: Dict[str, int] = {}
    n_names = 0
    for i, relation in enumerate(relations):
        names = {relation.alias, *relation.covered_aliases}
        n_names += len(names)
        for name in names:
            index_of[name] = i
    if len(index_of) != n_names:
        raise PlanningError("duplicate aliases in join enumeration")
    n = len(relations)
    full = (1 << n) - 1

    pred_masks: List[int] = []
    for predicate in join_predicates:
        mask = 0
        for alias in predicate.aliases():
            if alias not in index_of:
                raise PlanningError(f"join predicate references unknown {alias!r}")
            mask |= 1 << index_of[alias]
        pred_masks.append(mask)

    best: Dict[int, PlanNode] = {}
    rows: Dict[int, float] = {}
    for i, relation in enumerate(relations):
        best[1 << i] = relation.plan
        rows[1 << i] = max(relation.filtered_rows, 0.0)

    def subset_rows(mask: int) -> float:
        value = 1.0
        for i in range(n):
            if mask & (1 << i):
                value *= max(rows[1 << i], 0.001)
        for pred_mask, selectivity in zip(pred_masks, join_selectivities):
            if pred_mask & mask == pred_mask:
                value *= selectivity
        return value

    masks_by_size: Dict[int, List[int]] = {}
    for mask in range(1, full + 1):
        masks_by_size.setdefault(bin(mask).count("1"), []).append(mask)

    for size in range(2, n + 1):
        for mask in masks_by_size.get(size, []):
            out_rows = subset_rows(mask)
            rows[mask] = out_rows
            best_plan = _best_split(
                mask,
                out_rows,
                best,
                rows,
                relations,
                index_of,
                join_predicates,
                pred_masks,
                allow_cross=False,
            )
            if best_plan is None:
                best_plan = _best_split(
                    mask,
                    out_rows,
                    best,
                    rows,
                    relations,
                    index_of,
                    join_predicates,
                    pred_masks,
                    allow_cross=True,
                )
            if best_plan is None:
                raise PlanningError("join enumeration found no plan")
            best[mask] = best_plan
    return best[full]


def _best_split(
    mask: int,
    out_rows: float,
    best: Dict[int, PlanNode],
    rows: Dict[int, float],
    relations: Sequence[BaseRelation],
    index_of: Dict[str, int],
    join_predicates: Sequence[JoinPredicate],
    pred_masks: Sequence[int],
    allow_cross: bool,
) -> Optional[PlanNode]:
    winner: Optional[PlanNode] = None
    sub = (mask - 1) & mask
    while sub > 0:
        rest = mask ^ sub
        if sub < rest:  # visit each unordered split once; orient inside
            sub = (sub - 1) & mask
            continue
        left_plan = best.get(sub)
        right_plan = best.get(rest)
        if left_plan is not None and right_plan is not None:
            connecting = [
                p
                for p, pm in zip(join_predicates, pred_masks)
                if (pm & sub) and (pm & rest) and (pm & mask) == pm
            ]
            if connecting or allow_cross:
                for candidate in _join_candidates(
                    left_plan,
                    right_plan,
                    rows[sub],
                    rows[rest],
                    out_rows,
                    tuple(connecting),
                    sub,
                    rest,
                    relations,
                    index_of,
                ):
                    if winner is None or candidate.est_cost < winner.est_cost:
                        winner = candidate
        sub = (sub - 1) & mask
    return winner


def _join_candidates(
    left_plan: PlanNode,
    right_plan: PlanNode,
    left_rows: float,
    right_rows: float,
    out_rows: float,
    connecting: Tuple[JoinPredicate, ...],
    left_mask: int,
    right_mask: int,
    relations: Sequence[BaseRelation],
    index_of: Dict[str, int],
) -> List[PlanNode]:
    candidates: List[PlanNode] = []
    if connecting:
        for probe, build, probe_rows, build_rows in (
            (left_plan, right_plan, left_rows, right_rows),
            (right_plan, left_plan, right_rows, left_rows),
        ):
            candidates.append(
                HashJoin(
                    probe=probe,
                    build=build,
                    join_predicates=connecting,
                    est_rows=out_rows,
                    est_cost=probe.est_cost
                    + build.est_cost
                    + cost.hash_join_cost(build_rows, probe_rows, out_rows),
                )
            )
        for inner_mask, outer_plan, outer_rows in (
            (right_mask, left_plan, left_rows),
            (left_mask, right_plan, right_rows),
        ):
            inl = _index_nl_candidate(
                inner_mask, outer_plan, outer_rows, out_rows, connecting,
                relations, index_of,
            )
            if inl is not None:
                candidates.append(inl)
        candidates.append(
            NestedLoopJoin(
                outer=left_plan,
                inner=right_plan,
                join_predicates=connecting,
                est_rows=out_rows,
                est_cost=left_plan.est_cost
                + right_plan.est_cost
                + cost.nested_loop_cost(left_rows, right_rows, out_rows),
            )
        )
    else:
        candidates.append(
            NestedLoopJoin(
                outer=left_plan,
                inner=right_plan,
                join_predicates=(),
                est_rows=out_rows,
                est_cost=left_plan.est_cost
                + right_plan.est_cost
                + cost.nested_loop_cost(left_rows, right_rows, out_rows),
            )
        )
    return candidates


def _index_nl_candidate(
    inner_mask: int,
    outer_plan: PlanNode,
    outer_rows: float,
    out_rows: float,
    connecting: Tuple[JoinPredicate, ...],
    relations: Sequence[BaseRelation],
    index_of: Dict[str, int],
) -> Optional[IndexNLJoin]:
    if bin(inner_mask).count("1") != 1:
        return None
    inner = relations[inner_mask.bit_length() - 1]
    if inner.table_name is None:
        return None
    usable = [
        p
        for p in connecting
        if inner.alias in p.aliases()
        and p.column_for(inner.alias) in inner.indexed_columns
    ]
    if not usable:
        return None
    return IndexNLJoin(
        outer=outer_plan,
        inner_alias=inner.alias,
        inner_table=inner.table_name,
        inner_index_column=usable[0].column_for(inner.alias),
        join_predicates=connecting,
        inner_predicates=inner.local_predicates,
        inner_scan_residuals=inner.scan_residuals,
        est_rows=out_rows,
        est_cost=outer_plan.est_cost
        + cost.index_nl_join_cost(outer_rows, out_rows),
    )
