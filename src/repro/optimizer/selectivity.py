"""Selectivity and cardinality estimation.

`estimate_group_selectivity` is the heart of the reproduction: it is where
query-specific statistics (when present) replace the uniformity and
independence assumptions a traditional optimizer falls back on. The
returned :class:`SelectivityEstimate` also records *which* statistics were
combined (the ``statlist``), because the JITS StatHistory needs exactly
that provenance (paper Section 3.3.1).

This is the engine's statistics *read path*, and it is lock-free: the
context's catalog is an immutable epoch snapshot pinned per compilation,
and archive/residual lookups probe RCU-published snapshots (frozen
histograms with no-op locks). Concurrent collection and migration publish
new snapshots without ever blocking an estimate here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..histograms import Interval
from ..predicates import (
    JoinPredicate,
    LocalPredicate,
    PredOp,
    PredicateGroup,
    group_region,
    physical_value,
    predicate_interval,
    region_for_columns,
)
from ..storage import Table
from .context import (
    DEFAULT_BETWEEN_SELECTIVITY,
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_JOIN_NDV,
    DEFAULT_NE_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    DEFAULT_TABLE_CARDINALITY,
    StatsContext,
)

# Statistic source labels, most to least trusted.
SOURCE_QSS_EXACT = "qss-exact"
SOURCE_QSS_ARCHIVE = "qss-archive"
SOURCE_GROUP_STATS = "group-stats"
SOURCE_CATALOG = "catalog"
SOURCE_DEFAULT = "default"


@dataclass
class SelectivityEstimate:
    """A selectivity plus the provenance needed for feedback."""

    selectivity: float
    source: str
    statlist: Tuple[Tuple[str, ...], ...] = ()
    details: Dict[str, float] = field(default_factory=dict)

    def clamped(self) -> float:
        return min(1.0, max(0.0, self.selectivity))


def estimate_table_cardinality(ctx: StatsContext, table_name: str) -> Tuple[float, str]:
    """(cardinality, source). QSS profile beats catalog beats default."""
    if ctx.profile is not None:
        card = ctx.profile.cardinality(table_name)
        if card is not None:
            return max(1.0, card), SOURCE_QSS_EXACT
    stats = ctx.catalog.table_stats(table_name)
    if stats is not None:
        return max(1.0, stats.cardinality), SOURCE_CATALOG
    return DEFAULT_TABLE_CARDINALITY, SOURCE_DEFAULT


def default_predicate_selectivity(predicate: LocalPredicate) -> float:
    """Magic-number selectivity when nothing is known (System R legacy)."""
    op = predicate.op
    if op is PredOp.EQ:
        return DEFAULT_EQ_SELECTIVITY
    if op is PredOp.NE:
        return DEFAULT_NE_SELECTIVITY
    if op is PredOp.BETWEEN:
        return DEFAULT_BETWEEN_SELECTIVITY
    if op is PredOp.IN:
        return min(1.0, DEFAULT_EQ_SELECTIVITY * len(predicate.values))
    return DEFAULT_RANGE_SELECTIVITY


def _column_predicate_selectivity(
    ctx: StatsContext, table: Table, predicate: LocalPredicate
) -> Tuple[float, bool]:
    """(selectivity, had_statistics) for one predicate from column stats."""
    stats = ctx.catalog.column_stats(table.name, predicate.column)
    if stats is None:
        return default_predicate_selectivity(predicate), False
    op = predicate.op
    if op in (PredOp.EQ, PredOp.NE):
        phys = physical_value(table, predicate.column, predicate.value)
        eq = 0.0 if phys is None else stats.selectivity_eq(phys)
        return (eq if op is PredOp.EQ else max(0.0, 1.0 - eq)), True
    if op is PredOp.IN:
        total = 0.0
        for value in predicate.values:
            phys = physical_value(table, predicate.column, value)
            if phys is not None:
                total += stats.selectivity_eq(phys)
        return min(1.0, total), True
    interval = predicate_interval(table, predicate)
    if interval is None:
        return default_predicate_selectivity(predicate), False
    return stats.selectivity_interval(interval), True


def _column_conjunct_selectivity(
    ctx: StatsContext, table: Table, predicates: List[LocalPredicate]
) -> Tuple[float, bool]:
    """Selectivity of all predicates on ONE column (interval intersection)."""
    if len(predicates) == 1:
        # Single predicates go through the dedicated estimator, which uses
        # frequent-value statistics for equality/IN (exact for heavy
        # hitters) instead of interpolating a histogram.
        return _column_predicate_selectivity(ctx, table, predicates[0])
    intervals = [predicate_interval(table, p) for p in predicates]
    if all(iv is not None for iv in intervals):
        combined = Interval()
        for iv in intervals:
            combined = combined.intersect(iv)
        if combined.is_empty:
            return 0.0, True
        stats = ctx.catalog.column_stats(table.name, predicates[0].column)
        if stats is not None:
            return stats.selectivity_interval(combined), True
        # No stats; treat the strongest single default as the estimate.
        return min(default_predicate_selectivity(p) for p in predicates), False
    # Mixed interval / non-interval predicates on a column: multiply.
    sel = 1.0
    had_stats = True
    for predicate in predicates:
        s, known = _column_predicate_selectivity(ctx, table, predicate)
        sel *= s
        had_stats = had_stats and known
    return sel, had_stats


def estimate_group_selectivity(
    ctx: StatsContext, table: Table, group: PredicateGroup
) -> SelectivityEstimate:
    """Best available estimate for a predicate group on a base table."""
    table_key = table.name.lower()

    # 1. Exact query-specific statistics collected this compilation.
    if ctx.profile is not None:
        exact = ctx.profile.selectivity(table_key, group)
        if exact is not None:
            return SelectivityEstimate(
                selectivity=exact,
                source=SOURCE_QSS_EXACT,
                statlist=(group.columns(),),
            )

    # 2. A materialized QSS histogram on exactly this column group.
    columns = group.columns()
    if ctx.archive is not None:
        hist = ctx.archive.lookup(table_key, columns)
        if hist is not None:
            region = region_for_columns(table, group, columns)
            if region is not None:
                ctx.archive.mark_used(table_key, columns, ctx.now)
                return SelectivityEstimate(
                    selectivity=hist.estimate_selectivity(region),
                    source=SOURCE_QSS_ARCHIVE,
                    statlist=(columns,),
                )

    # 3/4. Cover the columns with the largest available multi-column
    # statistics, then per-column statistics, multiplying under
    # independence across the chosen units.
    by_column: Dict[str, List[LocalPredicate]] = {}
    for predicate in group.predicates:
        by_column.setdefault(predicate.column, []).append(predicate)
    uncovered = set(by_column)
    selectivity = 1.0
    statlist: List[Tuple[str, ...]] = []
    used_multi = False
    used_any_stats = False

    for size in range(len(uncovered), 1, -1):
        if size > 4:
            continue  # multi-dimensional stats beyond 4 columns don't exist
        for subset in itertools.combinations(sorted(uncovered), size):
            unit = _multi_column_unit(ctx, table, group, subset)
            if unit is None:
                continue
            sel, source_cols = unit
            selectivity *= sel
            statlist.append(source_cols)
            uncovered -= set(subset)
            used_multi = True
            used_any_stats = True
            break

    for column in sorted(uncovered):
        sel, known = _column_conjunct_selectivity(ctx, table, by_column[column])
        selectivity *= sel
        statlist.append((column,))
        used_any_stats = used_any_stats or known

    if used_multi:
        source = SOURCE_GROUP_STATS
    elif used_any_stats:
        source = SOURCE_CATALOG
    else:
        source = SOURCE_DEFAULT
    return SelectivityEstimate(
        selectivity=min(1.0, max(0.0, selectivity)),
        source=source,
        statlist=tuple(statlist),
    )


def _multi_column_unit(
    ctx: StatsContext,
    table: Table,
    group: PredicateGroup,
    subset: Tuple[str, ...],
) -> Optional[Tuple[float, Tuple[str, ...]]]:
    """Selectivity of the group restricted to ``subset`` columns from one
    multi-column statistic (archive first, then catalog group stats)."""
    sub_predicates = [p for p in group.predicates if p.column in subset]
    sub_group = PredicateGroup.from_iterable(sub_predicates)
    region = region_for_columns(table, sub_group, subset)
    if region is None:
        return None
    table_key = table.name.lower()
    if ctx.archive is not None:
        hist = ctx.archive.lookup(table_key, subset)
        if hist is not None:
            ctx.archive.mark_used(table_key, subset, ctx.now)
            return hist.estimate_selectivity(region), subset
    stats = ctx.catalog.group_stats(table_key, subset)
    if stats is not None:
        return stats.selectivity(region), subset
    return None


def estimate_join_selectivity(
    ctx: StatsContext,
    left_table: Optional[Table],
    right_table: Optional[Table],
    predicate: JoinPredicate,
) -> float:
    """Equi-join selectivity ``1 / max(ndv(left), ndv(right))``."""
    left_ndv = _join_side_ndv(ctx, left_table, predicate.left_column)
    right_ndv = _join_side_ndv(ctx, right_table, predicate.right_column)
    return 1.0 / max(left_ndv, right_ndv, 1.0)


def _join_side_ndv(
    ctx: StatsContext, table: Optional[Table], column: str
) -> float:
    if table is None:
        return DEFAULT_JOIN_NDV
    stats = ctx.catalog.column_stats(table.name, column)
    if stats is not None and stats.n_distinct > 0:
        return stats.n_distinct
    if (
        table.schema.primary_key is not None
        and table.schema.primary_key.lower() == column.lower()
    ):
        # Schema knowledge: a primary key is unique even without stats.
        card, _ = estimate_table_cardinality(ctx, table.name)
        return card
    return DEFAULT_JOIN_NDV
