"""Statistics context handed to the optimizer for one compilation.

The optimizer never talks to the catalog or the QSS machinery directly; it
sees one :class:`StatsContext` that layers, in priority order:

1. the **QSS profile** — exact selectivities sampled by JITS *for this
   query* (present only when JITS collected this compile);
2. the **QSS archive** — materialized adaptive histograms from earlier
   queries (present when JITS is enabled);
3. catalog **column-group statistics** (the "workload stats" setting);
4. catalog column statistics combined under independence;
5. System-R style **defaults** when nothing is known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..catalog import SystemCatalog
from ..predicates import PredicateGroup
from ..storage import Database

# Classic Selinger-style magic numbers used when no statistics exist.
DEFAULT_TABLE_CARDINALITY = 200.0
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_BETWEEN_SELECTIVITY = 0.25
DEFAULT_NE_SELECTIVITY = 0.9
DEFAULT_JOIN_NDV = 10.0
DEFAULT_RESIDUAL_SELECTIVITY = 0.25


@dataclass
class QSSProfile:
    """Exact selectivities JITS sampled during the current compilation.

    Keys are ``(table_name, canonical column group, group key)``; in
    practice lookups go through :meth:`selectivity` with the predicate
    group itself.
    """

    table_cardinalities: Dict[str, float] = field(default_factory=dict)
    group_selectivities: Dict[Tuple[str, PredicateGroup], float] = field(
        default_factory=dict
    )

    def record(self, table: str, group: PredicateGroup, selectivity: float) -> None:
        self.group_selectivities[(table.lower(), group)] = selectivity

    def selectivity(self, table: str, group: PredicateGroup) -> Optional[float]:
        return self.group_selectivities.get((table.lower(), group))

    def cardinality(self, table: str) -> Optional[float]:
        return self.table_cardinalities.get(table.lower())

    @property
    def n_groups(self) -> int:
        return len(self.group_selectivities)


@dataclass
class StatsContext:
    """Everything the selectivity estimator may consult.

    ``catalog`` accepts either a live :class:`SystemCatalog` or one of
    its immutable :class:`~repro.catalog.CatalogSnapshot` views (the read
    API is shared); the engine pins a snapshot per compilation so every
    estimate in one optimization sees one statistics epoch, lock-free.
    """

    database: Database
    catalog: SystemCatalog  # or CatalogSnapshot (same read API)
    profile: Optional[QSSProfile] = None
    archive: Optional[object] = None  # repro.jits.archive.QSSArchive
    residuals: Optional[object] = None  # repro.jits.residuals store
    now: int = 0
