"""Plan generation and costing for one query block (tree).

This is the "Plan Generation & Costing" box of the paper's Figure 1: it
consumes the statistics context (QSS profile + archive + catalog) and emits
the cheapest plan. It also records, per base-table access, *which* estimate
was used — the raw material for execution feedback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import PlanningError
from ..predicates import LocalPredicate, PredOp, PredicateGroup
from ..sql import ast
from ..sql.qgm import QueryBlock
from . import cost
from .context import DEFAULT_RESIDUAL_SELECTIVITY, StatsContext
from .joinenum import BaseRelation, enumerate_joins
from .plans import (
    Aggregate,
    DerivedScan,
    Distinct,
    Filter,
    IndexScan,
    Limit,
    MaterializedScan,
    PlanNode,
    Project,
    SeqScan,
    Sort,
)
from .selectivity import (
    SOURCE_DEFAULT,
    SelectivityEstimate,
    estimate_group_selectivity,
    estimate_join_selectivity,
    estimate_table_cardinality,
)


@dataclass
class ScanEstimate:
    """The optimizer's belief about one base-table access."""

    alias: str
    table_name: str
    group: Optional[PredicateGroup]
    estimate: Optional[SelectivityEstimate]
    base_rows: float
    est_rows: float


@dataclass
class OptimizedQuery:
    """A plan plus the estimates that produced it."""

    root: PlanNode
    block: QueryBlock
    scan_estimates: Dict[str, ScanEstimate] = field(default_factory=dict)
    child_queries: List["OptimizedQuery"] = field(default_factory=list)

    def explain(self) -> str:
        return self.root.explain()

    def all_scan_estimates(self) -> List[ScanEstimate]:
        result = list(self.scan_estimates.values())
        for child in self.child_queries:
            result.extend(child.all_scan_estimates())
        return result

    def clone_for_execution(self) -> "OptimizedQuery":
        """Copy with a private plan-node tree (see ``PlanNode.clone``).

        Estimates and the query block are read-only during execution and
        stay shared; only the nodes the executor annotates are copied.
        """
        return OptimizedQuery(
            root=self.root.clone(),
            block=self.block,
            scan_estimates=self.scan_estimates,
            child_queries=self.child_queries,
        )


class Optimizer:
    """Cost-based optimizer over a statistics context."""

    def __init__(self, ctx: StatsContext):
        self.ctx = ctx

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def optimize(self, block: QueryBlock) -> OptimizedQuery:
        result = OptimizedQuery(root=None, block=block)  # type: ignore[arg-type]

        relations: List[BaseRelation] = []
        for alias, quantifier in block.quantifiers.items():
            if quantifier.is_base:
                relation, scan_estimate = self._plan_base_access(block, alias)
                result.scan_estimates[alias] = scan_estimate
            else:
                child = self.optimize(quantifier.child)
                result.child_queries.append(child)
                child_rows = max(child.root.est_rows, 1.0)
                scan = DerivedScan(
                    alias=alias,
                    child_plan=child.root,
                    child_block=quantifier.child,
                    predicates=tuple(block.local_predicates_for(alias)),
                    scan_residuals=tuple(block.scan_residuals.get(alias, ())),
                    est_rows=self._apply_local_estimate(block, alias, child_rows)[0],
                    est_cost=child.root.est_cost
                    + cost.materialize_cost(child_rows),
                )
                relation = BaseRelation(
                    alias=alias,
                    plan=scan,
                    filtered_rows=scan.est_rows,
                    table_name=None,
                )
            if quantifier.is_base:
                relations.append(relation)
            else:
                relations.append(relation)

        join_sels = [
            estimate_join_selectivity(
                self.ctx,
                self._base_table(block, p.left_alias),
                self._base_table(block, p.right_alias),
                p,
            )
            for p in block.join_predicates
        ]
        if len(relations) == 1:
            root = relations[0].plan
        else:
            root = enumerate_joins(relations, block.join_predicates, join_sels)

        if block.residuals:
            out_rows = root.est_rows * (
                DEFAULT_RESIDUAL_SELECTIVITY ** len(block.residuals)
            )
            root = Filter(
                child=root,
                residuals=tuple(block.residuals),
                est_rows=out_rows,
                est_cost=root.est_cost
                + cost.filter_cost(root.est_rows, len(block.residuals)),
            )

        root = self._plan_output(block, root)
        result.root = root
        return result

    # ------------------------------------------------------------------
    # Mid-query re-entry
    # ------------------------------------------------------------------
    def reoptimize(self, block: QueryBlock, intermediates) -> OptimizedQuery:
        """Re-plan ``block`` around materialized reopt intermediates.

        Each intermediate (a :class:`MaterializedIntermediate` from the
        executor's checkpoint machinery) stands in for the quantifiers it
        covers as an ephemeral base table with *exact* cardinality and
        column statistics; the already-paid segment enters the enumeration
        at zero cost. The remaining quantifiers are planned normally
        against the same pinned statistics context as the original
        compilation.
        """
        result = OptimizedQuery(root=None, block=block)  # type: ignore[arg-type]

        covered: Dict[str, object] = {}
        relations: List[BaseRelation] = []
        for intermediate in intermediates:
            for alias in intermediate.covered_aliases:
                covered[alias] = intermediate
            plan = MaterializedScan(
                intermediate_id=intermediate.intermediate_id,
                covered_aliases=intermediate.covered_aliases,
                rows=intermediate.rows,
                reopt_round=intermediate.reopt_round,
                est_rows=float(intermediate.rows),
                est_cost=0.0,  # sunk: the old plan already paid for it
            )
            relations.append(
                BaseRelation(
                    alias=f"#mat{intermediate.intermediate_id}",
                    plan=plan,
                    filtered_rows=float(intermediate.rows),
                    table_name=None,
                    covered_aliases=intermediate.covered_aliases,
                )
            )

        for alias, quantifier in block.quantifiers.items():
            if alias in covered:
                continue
            if quantifier.is_base:
                relation, scan_estimate = self._plan_base_access(block, alias)
                result.scan_estimates[alias] = scan_estimate
            else:
                child = self.optimize(quantifier.child)
                result.child_queries.append(child)
                child_rows = max(child.root.est_rows, 1.0)
                scan = DerivedScan(
                    alias=alias,
                    child_plan=child.root,
                    child_block=quantifier.child,
                    predicates=tuple(block.local_predicates_for(alias)),
                    scan_residuals=tuple(block.scan_residuals.get(alias, ())),
                    est_rows=self._apply_local_estimate(block, alias, child_rows)[0],
                    est_cost=child.root.est_cost
                    + cost.materialize_cost(child_rows),
                )
                relation = BaseRelation(
                    alias=alias,
                    plan=scan,
                    filtered_rows=scan.est_rows,
                    table_name=None,
                )
            relations.append(relation)

        # Join predicates fully internal to one intermediate were already
        # applied when that segment executed — re-applying their
        # selectivity would double-count. Predicates crossing a boundary
        # (intermediate<->base or intermediate<->intermediate) survive.
        kept_predicates = []
        kept_selectivities = []
        for predicate in block.join_predicates:
            owners = {covered.get(alias) for alias in predicate.aliases()}
            if None not in owners and len(owners) == 1:
                continue
            kept_predicates.append(predicate)
            kept_selectivities.append(
                self._reopt_join_selectivity(block, predicate, covered)
            )

        if len(relations) == 1:
            root = relations[0].plan
        else:
            root = enumerate_joins(relations, kept_predicates, kept_selectivities)

        if block.residuals:
            out_rows = root.est_rows * (
                DEFAULT_RESIDUAL_SELECTIVITY ** len(block.residuals)
            )
            root = Filter(
                child=root,
                residuals=tuple(block.residuals),
                est_rows=out_rows,
                est_cost=root.est_cost
                + cost.filter_cost(root.est_rows, len(block.residuals)),
            )

        result.root = self._plan_output(block, root)
        return result

    def _reopt_join_selectivity(
        self, block: QueryBlock, predicate, covered: Dict[str, object]
    ) -> float:
        """Join selectivity with exact ndv on materialized sides."""
        from .context import DEFAULT_JOIN_NDV
        from .selectivity import _join_side_ndv

        ndvs = []
        for alias in predicate.aliases():
            column = predicate.column_for(alias)
            intermediate = covered.get(alias)
            if intermediate is not None:
                summary = intermediate.column_summary(alias, column)
                ndvs.append(
                    summary.n_distinct
                    if summary is not None and summary.n_distinct > 0
                    else DEFAULT_JOIN_NDV
                )
            else:
                ndvs.append(
                    _join_side_ndv(self.ctx, self._base_table(block, alias), column)
                )
        return 1.0 / max(*ndvs, 1.0)

    # ------------------------------------------------------------------
    # Base access paths
    # ------------------------------------------------------------------
    def _plan_base_access(
        self, block: QueryBlock, alias: str
    ) -> Tuple[BaseRelation, ScanEstimate]:
        table_name = block.quantifiers[alias].table_name
        table = self.ctx.database.table(table_name)
        base_rows, _ = estimate_table_cardinality(self.ctx, table_name)
        predicates = tuple(block.local_predicates_for(alias))
        residuals = tuple(block.scan_residuals.get(alias, ()))

        group: Optional[PredicateGroup] = None
        estimate: Optional[SelectivityEstimate] = None
        selectivity = 1.0
        if predicates:
            group = PredicateGroup.from_iterable(predicates)
            estimate = estimate_group_selectivity(self.ctx, table, group)
            selectivity = estimate.clamped()
        residual_sel = self._residual_selectivity(table.name, alias, residuals)
        est_rows = max(base_rows * selectivity * residual_sel, 0.001)

        seq = SeqScan(
            alias=alias,
            table_name=table.name,
            predicates=predicates,
            scan_residuals=residuals,
            base_rows=base_rows,
            est_rows=est_rows,
            est_cost=cost.seq_scan_cost(base_rows, len(predicates) + len(residuals)),
        )
        best: PlanNode = seq
        for candidate in self._index_scan_candidates(
            block, alias, table, predicates, residuals, base_rows, est_rows,
            selectivity,
        ):
            if candidate.est_cost < best.est_cost:
                best = candidate

        indexed = tuple(
            idx.column.lower()
            for idx in self.ctx.database.indexes(table.name).all()
            if idx.kind == "hash"
        )
        relation = BaseRelation(
            alias=alias,
            plan=best,
            filtered_rows=est_rows,
            table_name=table.name,
            indexed_columns=indexed,
            local_predicates=predicates,
            scan_residuals=residuals,
            local_selectivity=selectivity * residual_sel,
        )
        scan_estimate = ScanEstimate(
            alias=alias,
            table_name=table.name,
            group=group,
            estimate=estimate,
            base_rows=base_rows,
            est_rows=est_rows,
        )
        return relation, scan_estimate

    def _index_scan_candidates(
        self,
        block: QueryBlock,
        alias: str,
        table,
        predicates: Tuple[LocalPredicate, ...],
        residuals: Tuple[ast.BoolExpr, ...],
        base_rows: float,
        est_rows: float,
        group_selectivity: float,
    ) -> List[IndexScan]:
        candidates: List[IndexScan] = []
        indexes = self.ctx.database.indexes(table.name)
        for predicate in predicates:
            kind = None
            if predicate.op is PredOp.EQ and indexes.hash_on(predicate.column):
                kind = "hash"
            elif predicate.op in (
                PredOp.LT,
                PredOp.LE,
                PredOp.GT,
                PredOp.GE,
                PredOp.BETWEEN,
            ) and indexes.sorted_on(predicate.column):
                kind = "sorted"
            if kind is None:
                continue
            single = estimate_group_selectivity(
                self.ctx, table, PredicateGroup.of(predicate)
            )
            matching = max(base_rows * single.clamped(), 0.001)
            remaining = tuple(p for p in predicates if p is not predicate)
            candidates.append(
                IndexScan(
                    alias=alias,
                    table_name=table.name,
                    index_column=predicate.column,
                    index_kind=kind,
                    index_predicate=predicate,
                    remaining=remaining,
                    scan_residuals=residuals,
                    base_rows=base_rows,
                    est_rows=est_rows,
                    est_cost=cost.index_scan_cost(
                        matching, len(remaining) + len(residuals)
                    ),
                )
            )
        return candidates

    def _residual_selectivity(
        self, table_name: str, alias: str, residuals: Tuple[ast.BoolExpr, ...]
    ) -> float:
        """Combined selectivity of non-simple predicates on one scan.

        Consults the JITS residual-statistics store (paper Section 3.4,
        footnote 1) when present; otherwise the classic default guess.
        """
        selectivity = 1.0
        for residual in residuals:
            observed = None
            if self.ctx.residuals is not None:
                from ..predicates import residual_key

                observed = self.ctx.residuals.lookup(
                    table_name, residual_key(residual, alias), self.ctx.now
                )
            selectivity *= (
                observed if observed is not None else DEFAULT_RESIDUAL_SELECTIVITY
            )
        return selectivity

    def _base_table(self, block: QueryBlock, alias: str):
        quantifier = block.quantifiers.get(alias)
        if quantifier is None or not quantifier.is_base:
            return None
        return self.ctx.database.table(quantifier.table_name)

    def _apply_local_estimate(
        self, block: QueryBlock, alias: str, in_rows: float
    ) -> Tuple[float, float]:
        """Estimated (rows, selectivity) of local predicates on a derived
        quantifier (no statistics exist on temporary results)."""
        predicates = block.local_predicates_for(alias)
        residuals = block.scan_residuals.get(alias, ())
        selectivity = 1.0
        for predicate in predicates:
            from .selectivity import default_predicate_selectivity

            selectivity *= default_predicate_selectivity(predicate)
        selectivity *= DEFAULT_RESIDUAL_SELECTIVITY ** len(residuals)
        return max(in_rows * selectivity, 0.001), selectivity

    # ------------------------------------------------------------------
    # Output shaping: aggregate / project / distinct / sort / limit
    # ------------------------------------------------------------------
    def _plan_output(self, block: QueryBlock, root: PlanNode) -> PlanNode:
        names = tuple(block.output_names())
        if block.has_aggregates:
            groups = self._estimate_group_count(block, root.est_rows)
            root = Aggregate(
                child=root,
                group_keys=tuple(block.group_by),
                items=tuple(block.select_items),
                output_names=names,
                having=block.having,
                est_rows=groups,
                est_cost=root.est_cost
                + cost.aggregate_cost(root.est_rows, groups),
            )
        else:
            root = Project(
                child=root,
                items=tuple(block.select_items),
                output_names=names,
                est_rows=root.est_rows,
                est_cost=root.est_cost + root.est_rows * cost.CPU_OPERATOR_COST,
            )
        if block.distinct:
            out = max(1.0, root.est_rows * 0.5)
            root = Distinct(
                child=root,
                est_rows=out,
                est_cost=root.est_cost + cost.distinct_cost(root.est_rows),
            )
        if block.order_by:
            # Sort runs above the projection, so order keys are rewritten
            # to references into the block's output columns.
            rewritten = []
            for order in block.order_by:
                target = None
                for output in block.outputs:
                    if str(output.expr) == str(order.expr):
                        target = ast.ColumnRef(name=output.name)
                        break
                if target is None and isinstance(order.expr, ast.ColumnRef):
                    lowered = order.expr.name.lower()
                    for output in block.outputs:
                        if output.name == lowered:
                            target = ast.ColumnRef(name=output.name)
                            break
                if target is None:
                    raise PlanningError(
                        f"ORDER BY {order.expr} must reference an output column"
                    )
                rewritten.append(
                    ast.OrderItem(expr=target, descending=order.descending)
                )
            root = Sort(
                child=root,
                order_by=tuple(rewritten),
                est_rows=root.est_rows,
                est_cost=root.est_cost + cost.sort_cost(root.est_rows),
            )
        if block.limit is not None:
            root = Limit(
                child=root,
                count=block.limit,
                est_rows=min(root.est_rows, float(block.limit)),
                est_cost=root.est_cost,
            )
        return root

    def _estimate_group_count(self, block: QueryBlock, in_rows: float) -> float:
        if not block.group_by:
            return 1.0
        ndv_product = 1.0
        for key in block.group_by:
            quantifier = block.quantifiers.get(key.qualifier)
            ndv = None
            if quantifier is not None and quantifier.is_base:
                stats = self.ctx.catalog.column_stats(
                    quantifier.table_name, key.name
                )
                if stats is not None:
                    ndv = stats.n_distinct
            ndv_product *= ndv if ndv is not None else 10.0
        return max(1.0, min(in_rows, ndv_product))
