"""Cost model, calibrated against the engine's own executor.

One cost unit corresponds to roughly one microsecond of measured executor
time on the reference machine (see tests/optimizer/test_cost.py for the
ranking properties this buys). What matters for the reproduction is that
the model *ranks* plans the way the executor actually behaves:

* sequential scans and hash joins are vectorized and cheap per row;
* index nested-loop joins pay ~2 microseconds per probe (a Python-level
  dict/array probe per outer row — the in-memory analogue of per-probe
  random I/O), so they only win for small outers;
* plain nested loops pay per *pair* and are catastrophic at scale.

A misestimated cardinality therefore translates into a genuinely slower
execution, which is the effect the paper measures.
"""

from __future__ import annotations

import math

from ..catalog import ROWS_PER_PAGE

# Per-row / per-probe costs (~microseconds).
SEQ_PAGE_COST = 0.1  # per 100-row page touched sequentially
CPU_TUPLE_COST = 0.01  # per row surfaced by an operator
CPU_OPERATOR_COST = 0.002  # per row per predicate evaluated vectorized
HASH_BUILD_COST = 0.012  # per build-side row
HASH_PROBE_COST = 0.018  # per probe-side row
INDEX_PROBE_COST = 2.0  # per index probe (Python-loop random access)
INDEX_FETCH_COST = 0.05  # per row fetched through an index
NLJ_PAIR_COST = 0.004  # per (outer, inner) pair examined
SORT_FACTOR = 0.003  # x rows x log2(rows)
AGG_ROW_COST = 0.08  # per input row grouped
MATERIALIZE_COST = 0.02  # per row materialized for a derived table
OPERATOR_OVERHEAD = 8.0  # fixed per-operator dispatch cost


def pages(rows: float) -> float:
    return max(1.0, rows / ROWS_PER_PAGE)


def seq_scan_cost(base_rows: float, n_predicates: int) -> float:
    return (
        OPERATOR_OVERHEAD
        + pages(base_rows) * SEQ_PAGE_COST
        + base_rows * (CPU_TUPLE_COST * 0.3 + n_predicates * CPU_OPERATOR_COST)
    )


def index_scan_cost(matching_rows: float, n_remaining_predicates: int) -> float:
    return (
        OPERATOR_OVERHEAD
        + INDEX_PROBE_COST
        + matching_rows
        * (
            INDEX_FETCH_COST
            + CPU_TUPLE_COST
            + n_remaining_predicates * CPU_OPERATOR_COST
        )
    )


def hash_join_cost(build_rows: float, probe_rows: float, out_rows: float) -> float:
    return (
        OPERATOR_OVERHEAD
        + build_rows * HASH_BUILD_COST
        + probe_rows * HASH_PROBE_COST
        + out_rows * CPU_TUPLE_COST
    )


def index_nl_join_cost(outer_rows: float, out_rows: float) -> float:
    return (
        OPERATOR_OVERHEAD
        + outer_rows * INDEX_PROBE_COST
        + out_rows * (INDEX_FETCH_COST + CPU_TUPLE_COST)
    )


def nested_loop_cost(outer_rows: float, inner_rows: float, out_rows: float) -> float:
    return (
        OPERATOR_OVERHEAD
        + outer_rows * inner_rows * NLJ_PAIR_COST
        + out_rows * CPU_TUPLE_COST
    )


def filter_cost(in_rows: float, n_predicates: int) -> float:
    return OPERATOR_OVERHEAD + in_rows * n_predicates * CPU_OPERATOR_COST * 5


def aggregate_cost(in_rows: float, out_groups: float) -> float:
    return OPERATOR_OVERHEAD + in_rows * AGG_ROW_COST + out_groups * CPU_TUPLE_COST


def sort_cost(rows: float) -> float:
    if rows <= 1:
        return OPERATOR_OVERHEAD
    return OPERATOR_OVERHEAD + rows * math.log2(rows) * SORT_FACTOR


def distinct_cost(rows: float) -> float:
    return OPERATOR_OVERHEAD + rows * AGG_ROW_COST


def materialize_cost(rows: float) -> float:
    return OPERATOR_OVERHEAD + rows * MATERIALIZE_COST
