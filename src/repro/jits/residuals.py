"""Selectivities for predicates that histograms cannot represent.

Paper Section 3.4, footnote 1: predicates whose operands are not constants
(``a BETWEEN b + 10 AND c - 20``), OR-trees, NOT-IN lists and similar
shapes cannot update a histogram — but "we can store such predicates and
the number of tuples that satisfy them separately, and possibly reuse them
for later queries. LRU can be used to prune unused predicates."

This module is that store: observed selectivities of *residual* predicates
(the ones the classifier could not turn into local or join predicates),
keyed by the predicate's normalized text, bounded by LRU eviction.
Residual selectivities are measured on the same sample a marked table's
predicate groups use, so they are only refreshed when the sensitivity
analysis samples the table anyway.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..predicates.residualkey import residual_key  # re-exported

__all__ = ["ResidualStatisticsStore", "ResidualEntry", "residual_key"]

DEFAULT_CAPACITY = 128


@dataclass
class ResidualEntry:
    selectivity: float
    collected_at: int
    last_used: int


class ResidualStatisticsStore:
    """LRU-bounded map: (table, normalized predicate text) -> selectivity."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[Tuple[str, str], ResidualEntry] = {}
        self.evictions = 0
        # Concurrent compilations record and look up residuals; the lock
        # keeps LRU eviction scans consistent with insertions.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, table: str, key: str, selectivity: float, now: int) -> None:
        with self._lock:
            entry = self._entries.get((table.lower(), key))
            if entry is not None:
                entry.selectivity = selectivity
                entry.collected_at = now
                entry.last_used = max(entry.last_used, now)
            else:
                self._entries[(table.lower(), key)] = ResidualEntry(
                    selectivity=selectivity, collected_at=now, last_used=now
                )
                self._evict_to_capacity()

    def lookup(self, table: str, key: str, now: int) -> Optional[float]:
        with self._lock:
            entry = self._entries.get((table.lower(), key))
            if entry is None:
                return None
            entry.last_used = max(entry.last_used, now)
            return entry.selectivity

    def _evict_to_capacity(self) -> None:
        while len(self._entries) > self.capacity:
            victim = min(self._entries.items(), key=lambda kv: kv[1].last_used)[0]
            del self._entries[victim]
            self.evictions += 1

    def drop_table(self, table: str) -> int:
        with self._lock:
            keys = [k for k in self._entries if k[0] == table.lower()]
            for key in keys:
                del self._entries[key]
            return len(keys)
