"""Selectivities for predicates that histograms cannot represent.

Paper Section 3.4, footnote 1: predicates whose operands are not constants
(``a BETWEEN b + 10 AND c - 20``), OR-trees, NOT-IN lists and similar
shapes cannot update a histogram — but "we can store such predicates and
the number of tuples that satisfy them separately, and possibly reuse them
for later queries. LRU can be used to prune unused predicates."

This module is that store: observed selectivities of *residual* predicates
(the ones the classifier could not turn into local or join predicates),
keyed by the predicate's normalized text, bounded by LRU eviction.
Residual selectivities are measured on the same sample a marked table's
predicate groups use, so they are only refreshed when the sensitivity
analysis samples the table anyway.

Concurrency: RCU-published like the other statistics stores. ``record``
(and eviction) copy the entry dict under the writer lock and swap in a new
epoch-stamped snapshot; ``lookup`` — on the optimizer's estimation path —
probes the published dict lock-free. Entries are shared between snapshots,
and a lookup's LRU touch is a plain (GIL-atomic) field store on the shared
entry, so recency still reaches the eviction scan without readers ever
taking the lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..predicates.residualkey import residual_key  # re-exported

__all__ = ["ResidualStatisticsStore", "ResidualEntry", "residual_key"]

DEFAULT_CAPACITY = 128


@dataclass
class ResidualEntry:
    selectivity: float
    collected_at: int
    last_used: int


class _ResidualSnapshot:
    __slots__ = ("version", "entries")

    def __init__(
        self, version: int, entries: Mapping[Tuple[str, str], ResidualEntry]
    ):
        self.version = version
        self.entries = entries


_EMPTY = _ResidualSnapshot(0, {})


class ResidualStatisticsStore:
    """LRU-bounded map: (table, normalized predicate text) -> selectivity."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._snapshot: _ResidualSnapshot = _EMPTY
        self.evictions = 0
        # Serializes writers (record / eviction / drop); lookups read the
        # published snapshot and never take it.
        self._lock = threading.Lock()

    @property
    def version(self) -> int:
        """Statistics epoch: bumps exactly when a new snapshot publishes."""
        return self._snapshot.version

    def __len__(self) -> int:
        return len(self._snapshot.entries)

    def record(self, table: str, key: str, selectivity: float, now: int) -> None:
        with self._lock:
            current = self._snapshot
            entry = current.entries.get((table.lower(), key))
            if entry is not None:
                # In-place refresh of the shared entry: field stores are
                # GIL-atomic, and selectivity/collected_at always move
                # together under the writer lock.
                entry.selectivity = selectivity
                entry.collected_at = now
                entry.last_used = max(entry.last_used, now)
                entries = dict(current.entries)
            else:
                entries = dict(current.entries)
                entries[(table.lower(), key)] = ResidualEntry(
                    selectivity=selectivity, collected_at=now, last_used=now
                )
                self._evict_to_capacity(entries)
            self._snapshot = _ResidualSnapshot(current.version + 1, entries)

    def lookup(self, table: str, key: str, now: int) -> Optional[float]:
        entry = self._snapshot.entries.get((table.lower(), key))
        if entry is None:
            return None
        # Lock-free LRU touch on the shared entry; a lost race with a
        # concurrent touch only costs a slightly stale recency.
        if now > entry.last_used:
            entry.last_used = now
        return entry.selectivity

    def _evict_to_capacity(self, entries: Dict[Tuple[str, str], ResidualEntry]) -> None:
        while len(entries) > self.capacity:
            victim = min(entries.items(), key=lambda kv: kv[1].last_used)[0]
            del entries[victim]
            self.evictions += 1

    def drop_table(self, table: str) -> int:
        with self._lock:
            current = self._snapshot
            keys = [k for k in current.entries if k[0] == table.lower()]
            if keys:
                entries = dict(current.entries)
                for key in keys:
                    del entries[key]
                self._snapshot = _ResidualSnapshot(current.version + 1, entries)
            return len(keys)
