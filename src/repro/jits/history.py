"""The statistics-collection history (StatHistory, paper Section 3.3.1).

Each entry records that the selectivity of a column group ``colgrp`` on
table ``T`` was estimated using the statistics in ``statlist``, how many
times that combination was used (``count``), and the ``errorfactor`` —
estimated divided by actual selectivity — the feedback system observed.

This is Table 1 of the paper, as a data structure.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

ColumnGroup = Tuple[str, ...]

# New error observations are folded into the stored errorfactor with
# exponential smoothing so an entry tracks recent behaviour.
_SMOOTHING = 0.5


def canonical_colgroup(columns: Iterable[str]) -> ColumnGroup:
    return tuple(sorted(c.lower() for c in columns))


def canonical_statlist(groups: Iterable[Iterable[str]]) -> Tuple[ColumnGroup, ...]:
    return tuple(sorted(canonical_colgroup(g) for g in groups))


@dataclass
class HistoryEntry:
    """One (T, colgrp, statlist) row of the StatHistory."""

    table: str
    colgrp: ColumnGroup
    statlist: Tuple[ColumnGroup, ...]
    count: int = 0
    errorfactor: float = 1.0

    @property
    def symmetric_accuracy(self) -> float:
        """``min(ef, 1/ef)``, the bounded form used in scoring.

        The paper multiplies ``errorfactor`` directly into an accuracy in
        [0, 1]; that is only well-defined for underestimates, so we use
        the symmetric variant (see DESIGN.md §4).
        """
        if self.errorfactor <= 0.0:
            return 0.0
        return min(self.errorfactor, 1.0 / self.errorfactor)


class StatHistory:
    """All history entries, indexed for the two lookups the paper needs."""

    def __init__(self) -> None:
        self._entries: Dict[
            Tuple[str, ColumnGroup, Tuple[ColumnGroup, ...]], HistoryEntry
        ] = {}
        # Feedback from concurrently executing statements records here
        # while other compilations scan for sensitivity scores; the lock
        # keeps iteration and insertion from interleaving.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def record(
        self,
        table: str,
        colgrp: Iterable[str],
        statlist: Iterable[Iterable[str]],
        errorfactor: float,
    ) -> HistoryEntry:
        """Insert or update the entry for (table, colgrp, statlist)."""
        table = table.lower()
        group = canonical_colgroup(colgrp)
        stats = canonical_statlist(statlist)
        key = (table, group, stats)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = HistoryEntry(
                    table=table, colgrp=group, statlist=stats, count=1,
                    errorfactor=errorfactor,
                )
                self._entries[key] = entry
            else:
                entry.count += 1
                entry.errorfactor = (
                    _SMOOTHING * errorfactor
                    + (1.0 - _SMOOTHING) * entry.errorfactor
                )
            return entry

    def entries_for_group(
        self, table: str, colgrp: Iterable[str]
    ) -> List[HistoryEntry]:
        """All entries whose target column group matches (Alg. 3 line 3)."""
        table = table.lower()
        group = canonical_colgroup(colgrp)
        with self._lock:
            return [
                e
                for e in self._entries.values()
                if e.table == table and e.colgrp == group
            ]

    def entries_using_stat(
        self, table: str, colgrp: Iterable[str]
    ) -> List[HistoryEntry]:
        """Entries with this column group in their statlist (Alg. 4 line 6)."""
        table = table.lower()
        group = canonical_colgroup(colgrp)
        with self._lock:
            return [
                e
                for e in self._entries.values()
                if e.table == table and group in e.statlist
            ]

    def all_entries(self) -> List[HistoryEntry]:
        with self._lock:
            return list(self._entries.values())

    def total_count(self) -> int:
        with self._lock:
            return sum(e.count for e in self._entries.values())
