"""The statistics-collection history (StatHistory, paper Section 3.3.1).

Each entry records that the selectivity of a column group ``colgrp`` on
table ``T`` was estimated using the statistics in ``statlist``, how many
times that combination was used (``count``), and the ``errorfactor`` —
estimated divided by actual selectivity — the feedback system observed.

This is Table 1 of the paper, as a data structure.

Concurrency: the history is RCU-published. ``record`` (feedback from a
finished statement) builds a *replacement* entry, copies the entry dict
under the writer lock and swaps in a new epoch-stamped snapshot; the
sensitivity-analysis scans (``entries_for_group`` / ``entries_using_stat``)
iterate the published dict lock-free. Entries are never mutated after
publication, so a scan always sees internally consistent (count,
errorfactor) pairs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

ColumnGroup = Tuple[str, ...]

# New error observations are folded into the stored errorfactor with
# exponential smoothing so an entry tracks recent behaviour.
_SMOOTHING = 0.5

_HistoryKey = Tuple[str, ColumnGroup, Tuple[ColumnGroup, ...]]


def canonical_colgroup(columns: Iterable[str]) -> ColumnGroup:
    return tuple(sorted(c.lower() for c in columns))


def canonical_statlist(groups: Iterable[Iterable[str]]) -> Tuple[ColumnGroup, ...]:
    return tuple(sorted(canonical_colgroup(g) for g in groups))


@dataclass
class HistoryEntry:
    """One (T, colgrp, statlist) row of the StatHistory."""

    table: str
    colgrp: ColumnGroup
    statlist: Tuple[ColumnGroup, ...]
    count: int = 0
    errorfactor: float = 1.0

    @property
    def symmetric_accuracy(self) -> float:
        """``min(ef, 1/ef)``, the bounded form used in scoring.

        The paper multiplies ``errorfactor`` directly into an accuracy in
        [0, 1]; that is only well-defined for underestimates, so we use
        the symmetric variant (see DESIGN.md §4).
        """
        if self.errorfactor <= 0.0:
            return 0.0
        return min(self.errorfactor, 1.0 / self.errorfactor)


class HistorySnapshot:
    """One immutable, epoch-stamped view of every history entry."""

    __slots__ = ("version", "entries")

    def __init__(self, version: int, entries: Mapping[_HistoryKey, HistoryEntry]):
        self.version = version
        self.entries = entries


_EMPTY = HistorySnapshot(0, {})


class StatHistory:
    """All history entries, indexed for the two lookups the paper needs."""

    def __init__(self) -> None:
        self._snapshot: HistorySnapshot = _EMPTY
        # Serializes writers only; readers scan the published snapshot.
        self._lock = threading.Lock()

    @property
    def version(self) -> int:
        """Statistics epoch: bumps exactly when a new snapshot publishes."""
        return self._snapshot.version

    def snapshot(self) -> HistorySnapshot:
        """The current immutable view (pin it for one compilation)."""
        return self._snapshot

    def __len__(self) -> int:
        return len(self._snapshot.entries)

    def record(
        self,
        table: str,
        colgrp: Iterable[str],
        statlist: Iterable[Iterable[str]],
        errorfactor: float,
    ) -> HistoryEntry:
        """Insert or update the entry for (table, colgrp, statlist).

        The previous entry (if any) is replaced, never mutated — readers
        holding an older snapshot keep a consistent view.
        """
        table = table.lower()
        group = canonical_colgroup(colgrp)
        stats = canonical_statlist(statlist)
        key = (table, group, stats)
        with self._lock:
            current = self._snapshot
            old = current.entries.get(key)
            if old is None:
                entry = HistoryEntry(
                    table=table, colgrp=group, statlist=stats, count=1,
                    errorfactor=errorfactor,
                )
            else:
                entry = HistoryEntry(
                    table=table,
                    colgrp=group,
                    statlist=stats,
                    count=old.count + 1,
                    errorfactor=(
                        _SMOOTHING * errorfactor
                        + (1.0 - _SMOOTHING) * old.errorfactor
                    ),
                )
            entries = dict(current.entries)
            entries[key] = entry
            self._snapshot = HistorySnapshot(current.version + 1, entries)
            return entry

    def entries_for_group(
        self, table: str, colgrp: Iterable[str]
    ) -> List[HistoryEntry]:
        """All entries whose target column group matches (Alg. 3 line 3)."""
        table = table.lower()
        group = canonical_colgroup(colgrp)
        return [
            e
            for e in self._snapshot.entries.values()
            if e.table == table and e.colgrp == group
        ]

    def entries_using_stat(
        self, table: str, colgrp: Iterable[str]
    ) -> List[HistoryEntry]:
        """Entries with this column group in their statlist (Alg. 4 line 6)."""
        table = table.lower()
        group = canonical_colgroup(colgrp)
        return [
            e
            for e in self._snapshot.entries.values()
            if e.table == table and group in e.statlist
        ]

    def all_entries(self) -> List[HistoryEntry]:
        return list(self._snapshot.entries.values())

    def total_count(self) -> int:
        return sum(e.count for e in self._snapshot.entries.values())
