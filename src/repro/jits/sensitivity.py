"""Sensitivity analysis (paper Algorithms 2, 3 and 4).

Decides (a) which tables are worth sampling during this compilation and
(b) which of the computed statistics deserve materialization in the QSS
archive. Scores combine:

* ``s1`` — 1 minus the best accuracy any known statistics combination has
  shown for the table's full predicate group (from the StatHistory plus the
  Section 3.3.2 boundary-accuracy of the underlying histograms);
* ``s2`` — data activity: UDI counter since the last collection over the
  table cardinality.

A table is sampled when ``f(s1, s2) = (s1 + s2) / 2 >= s_max``; ``s_max=0``
collects everything, ``s_max=1`` disables collection entirely (sentinel,
see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..catalog import SystemCatalog
from ..histograms import region_accuracy
from ..predicates import PredicateGroup, group_region, region_for_columns
from ..storage import Database
from .archive import QSSArchive
from .history import StatHistory, canonical_colgroup

ColumnGroup = Tuple[str, ...]


def table_stats_epoch(table, staleness_rows: int) -> int:
    """Coarse per-table statistics epoch derived from the UDI counter.

    Two compilations that fall into the same epoch have seen (to within
    ``staleness_rows`` of data activity) the same table state, so
    statistics-derived artifacts — samples, predicate masks, cached plans
    — keyed by the epoch may be reused between them. The counter is the
    same monotone UDI total the sensitivity analysis's ``s2`` term is
    built on (Section 3.3.1).
    """
    step = max(1, int(staleness_rows))
    return table.udi_total // step


@dataclass
class TableDecision:
    """Outcome of Algorithm 2 for one table."""

    table: str
    collect: bool
    score: float
    s1: float
    s2: float
    materialize: List[PredicateGroup] = field(default_factory=list)


class SensitivityAnalyzer:
    def __init__(
        self,
        database: Database,
        catalog: SystemCatalog,
        archive: QSSArchive,
        history: StatHistory,
        s_max: float,
        last_collection_udi: Dict[str, int],
        use_history_score: bool = True,
    ):
        self.database = database
        self.catalog = catalog
        self.archive = archive
        self.history = history
        self.s_max = s_max
        self.last_collection_udi = last_collection_udi
        # Ablation knob: with use_history_score=False, s1 is dropped and
        # collection is triggered by data activity (s2 = UDI ratio) alone.
        self.use_history_score = use_history_score

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def analyze(
        self, candidates_by_table: Dict[str, List[PredicateGroup]]
    ) -> Dict[str, TableDecision]:
        decisions: Dict[str, TableDecision] = {}
        for table, groups in candidates_by_table.items():
            decision = self.should_collect(table, groups)
            if decision.collect:
                for group in groups:
                    if self.should_materialize(table, group):
                        decision.materialize.append(group)
            decisions[table] = decision
        return decisions

    # ------------------------------------------------------------------
    # Algorithm 3: is statistics collection needed on this table?
    # ------------------------------------------------------------------
    def should_collect(
        self, table: str, groups: List[PredicateGroup]
    ) -> TableDecision:
        table = table.lower()
        full_group = max(groups, key=lambda g: g.size)
        max_accuracy = 0.0
        for entry in self.history.entries_for_group(table, full_group.columns()):
            accuracy = entry.symmetric_accuracy
            for stat_columns in entry.statlist:
                accuracy *= self.stat_accuracy(table, stat_columns, full_group)
            max_accuracy = max(max_accuracy, accuracy)
        s1 = 1.0 - max_accuracy

        tbl = self.database.table(table)
        cardinality = max(tbl.row_count, 1)
        snapshot = self.last_collection_udi.get(table)
        if snapshot is None:
            stats = self.catalog.table_stats(table)
            snapshot = stats.udi_snapshot if stats is not None else 0
        s2 = min(tbl.udi_since(snapshot) / cardinality, 1.0)

        score = (s1 + s2) / 2.0 if self.use_history_score else s2
        collect = self.s_max < 1.0 and score >= self.s_max
        return TableDecision(
            table=table, collect=collect, score=score, s1=s1, s2=s2
        )

    # ------------------------------------------------------------------
    # Algorithm 4: is this statistic useful for other queries?
    # ------------------------------------------------------------------
    def should_materialize(self, table: str, group: PredicateGroup) -> bool:
        table = table.lower()
        columns = group.columns()
        if self.archive.has(table, columns):
            return True  # keep existing histograms fresh (Alg. 4 line 2)
        if self.s_max <= 0.0:
            return True  # "all possible statistics are always collected"
        entries = self.history.entries_using_stat(table, columns)
        total = sum(e.count for e in entries)
        if total == 0:
            return False
        score = sum(e.symmetric_accuracy * e.count for e in entries) / total
        return score >= self.s_max

    # ------------------------------------------------------------------
    # Section 3.3.2: accuracy of an available statistic w.r.t. a group
    # ------------------------------------------------------------------
    def stat_accuracy(
        self, table: str, stat_columns: Iterable[str], group: PredicateGroup
    ) -> float:
        """How accurately current statistics on ``stat_columns`` answer the
        part of ``group`` that touches those columns."""
        table = table.lower()
        stat_columns = canonical_colgroup(stat_columns)
        tbl = self.database.table(table)
        relevant = [p for p in group.predicates if p.column in stat_columns]
        if not relevant:
            return 1.0  # the stat is not even consulted for this group
        sub_group = PredicateGroup.from_iterable(relevant)
        region = region_for_columns(tbl, sub_group, stat_columns)
        if region is None:
            return 0.0  # not a histogram-answerable shape (<> / multi-IN)

        hist = self.archive.lookup(table, stat_columns)
        if hist is not None:
            boundaries = [hist.boundary_list(d) for d in range(hist.ndim)]
            return region_accuracy(boundaries, region)
        if len(stat_columns) == 1:
            column_stats = self.catalog.column_stats(table, stat_columns[0])
            if column_stats is not None:
                return region_accuracy([column_stats.boundary_list()], region)
            return 0.0
        group_stats = self.catalog.group_stats(table, stat_columns)
        if group_stats is not None:
            hist = group_stats.histogram
            boundaries = [hist.boundary_list(d) for d in range(hist.ndim)]
            return region_accuracy(boundaries, region)
        return 0.0
