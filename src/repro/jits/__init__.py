"""JITS: just-in-time, query-specific statistics (the paper's contribution)."""

from .analysis import TableCandidates, analyze_query, enumerate_groups, merge_by_table
from .archive import ArchiveEntry, QSSArchive
from .collection import CollectionReport, StatisticsCollector
from .controller import CompilationReport, JITSConfig, JustInTimeStatistics
from .history import HistoryEntry, StatHistory, canonical_colgroup
from .migration import migrate_archive_to_catalog
from .residuals import ResidualStatisticsStore, residual_key
from .samplecache import MaskCache, SampleCache
from .sensitivity import SensitivityAnalyzer, TableDecision, table_stats_epoch

__all__ = [
    "JustInTimeStatistics",
    "JITSConfig",
    "CompilationReport",
    "analyze_query",
    "enumerate_groups",
    "merge_by_table",
    "TableCandidates",
    "SensitivityAnalyzer",
    "TableDecision",
    "StatisticsCollector",
    "CollectionReport",
    "QSSArchive",
    "ArchiveEntry",
    "StatHistory",
    "HistoryEntry",
    "canonical_colgroup",
    "migrate_archive_to_catalog",
    "ResidualStatisticsStore",
    "residual_key",
    "SampleCache",
    "MaskCache",
    "table_stats_epoch",
]
