"""Cross-query sample and predicate-mask reuse (the compilation fast path).

The paper's premise is that JIT collection is "relatively cheap" per
compilation (Section 3.3) — but a fresh ``fixed_size_sample`` plus a full
set of predicate-mask evaluations on every query still dominates compile
time under heavy repeated-template traffic. Sampling-based re-optimization
systems make per-query statistics affordable by *reusing* samples across
optimizations; this module does the same, keyed by the UDI counters the
sensitivity analysis already maintains:

* :class:`SampleCache` keeps one fixed-size sample per table and reuses it
  until the table's UDI activity since the draw crosses a staleness
  threshold (a fraction of the table's cardinality). Each fresh draw bumps
  the table's *sample epoch*.
* :class:`MaskCache` memoizes predicate masks fingerprinted by
  ``(table, predicate, sample_epoch)``, so repeated workload templates
  skip :func:`~repro.predicates.predicate_mask` entirely while the sample
  they were evaluated on is still live.

Both caches are pure accelerators: disabling them recovers exact
per-query sampling (see ``JITSConfig``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..predicates import LocalPredicate
from ..storage import Database, fixed_size_sample

# Resample once UDI activity since the draw exceeds this fraction of the
# table's cardinality at draw time.
DEFAULT_SAMPLE_STALENESS = 0.05
DEFAULT_MASK_CACHE_SIZE = 4096


@dataclass
class CachedSample:
    """One table's live sample plus the state it was drawn against."""

    rows: np.ndarray
    epoch: int
    udi_snapshot: int
    row_count: int


class SampleCache:
    """Per-table fixed-size samples reused across compilations."""

    def __init__(
        self,
        database: Database,
        sample_size: int,
        rng: np.random.Generator,
        staleness: float = DEFAULT_SAMPLE_STALENESS,
    ):
        self.database = database
        self.sample_size = sample_size
        self.rng = rng
        self.staleness = staleness
        self._samples: Dict[str, CachedSample] = {}
        self._epochs: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        # Serializes cache probes AND the rng draw itself: numpy
        # Generators are not thread-safe, and two concurrent misses for
        # one table must not both draw (they would double-bump the epoch
        # and leave masks keyed against a vanished sample).
        self._lock = threading.Lock()

    def get(self, table_name: str) -> Tuple[np.ndarray, int, bool]:
        """``(row positions, sample epoch, was_hit)`` for one table."""
        name = table_name.lower()
        table = self.database.table(name)
        with self._lock:
            cached = self._samples.get(name)
            if cached is not None:
                if self._fresh(table, cached):
                    self.hits += 1
                    return cached.rows, cached.epoch, True
                self.invalidations += 1
            self.misses += 1
            rows = fixed_size_sample(table, self.sample_size, self.rng)
            epoch = self._epochs.get(name, -1) + 1
            self._epochs[name] = epoch
            self._samples[name] = CachedSample(
                rows=rows,
                epoch=epoch,
                udi_snapshot=table.udi_total,
                row_count=table.row_count,
            )
            return rows, epoch, False

    def _fresh(self, table, cached: CachedSample) -> bool:
        n = table.row_count
        if n < cached.row_count:
            # Deletes compact the column arrays, shifting row positions.
            return False
        if len(cached.rows) and n <= int(cached.rows[-1]):
            return False  # positions out of range (rows are sorted)
        if cached.row_count < self.sample_size and n > cached.row_count:
            # The "sample" was the whole (small) table; grown tables can
            # afford a fresh draw that sees the new rows.
            return False
        threshold = max(1, int(self.staleness * max(cached.row_count, 1)))
        return table.udi_since(cached.udi_snapshot) < threshold

    def epoch(self, table_name: str) -> int:
        """Current sample epoch for a table; -1 before the first draw."""
        return self._epochs.get(table_name.lower(), -1)

    def invalidate(self, table_name: str) -> None:
        with self._lock:
            self._samples.pop(table_name.lower(), None)

    def drop_table(self, table_name: str) -> None:
        with self._lock:
            name = table_name.lower()
            self._samples.pop(name, None)
            self._epochs.pop(name, None)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()


MaskKey = Tuple[str, LocalPredicate, int]


class MaskCache:
    """Bounded LRU of predicate masks keyed by (table, predicate, epoch).

    Masks are row-aligned with the sample of the given epoch, so a key is
    automatically dead (and ages out of the LRU) once the sample is
    redrawn. Cached arrays are treated as immutable by all consumers.
    """

    def __init__(self, max_entries: int = DEFAULT_MASK_CACHE_SIZE):
        self.max_entries = max_entries
        self._entries: "OrderedDict[MaskKey, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        # LRU reordering mutates the OrderedDict even on pure lookups, so
        # concurrent readers need the lock on both paths.
        self._lock = threading.Lock()

    def lookup(
        self, table: str, predicate: LocalPredicate, epoch: int
    ) -> Optional[np.ndarray]:
        key = (table.lower(), predicate, epoch)
        with self._lock:
            mask = self._entries.get(key)
            if mask is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return mask

    def store(
        self, table: str, predicate: LocalPredicate, epoch: int, mask: np.ndarray
    ) -> None:
        key = (table.lower(), predicate, epoch)
        with self._lock:
            self._entries[key] = mask
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def drop_table(self, table_name: str) -> None:
        name = table_name.lower()
        with self._lock:
            for key in [k for k in self._entries if k[0] == name]:
                del self._entries[key]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
