"""Query analysis (paper Algorithm 1).

Walk the query blocks of a compiled query and enumerate, per base table,
every combination of its local predicates — the candidate predicate groups
on which query-specific statistics could be collected. The enumeration is
per query block (SPJ block), matching intra-block optimization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..predicates import LocalPredicate, PredicateGroup
from ..sql.qgm import QueryBlock

# Enumerating all subsets is exponential in the number of local predicates
# on one table; above this many predicates only singletons, pairs and the
# full group are enumerated. (Real queries rarely exceed it.)
MAX_FULL_ENUMERATION = 8


@dataclass
class TableCandidates:
    """All candidate statistics for one quantifier of one block."""

    block_id: int
    alias: str
    table: str
    groups: List[PredicateGroup] = field(default_factory=list)
    # Residual predicates on this quantifier (footnote 1 of Section 3.4):
    # evaluated on the same sample when the table is marked for collection.
    residuals: List = field(default_factory=list)  # List[ast.BoolExpr]

    @property
    def full_group(self) -> PredicateGroup:
        """The group with the maximum number of predicates (Alg. 3 line 2)."""
        return max(self.groups, key=lambda g: g.size)


def enumerate_groups(predicates: List[LocalPredicate]) -> List[PredicateGroup]:
    """All i-predicate groups for i = 1..m (Alg. 1 lines 9-12)."""
    if not predicates:
        return []
    m = len(predicates)
    groups: List[PredicateGroup] = []
    if m <= MAX_FULL_ENUMERATION:
        for size in range(1, m + 1):
            for combo in itertools.combinations(predicates, size):
                groups.append(PredicateGroup.from_iterable(combo))
    else:
        for predicate in predicates:
            groups.append(PredicateGroup.of(predicate))
        for combo in itertools.combinations(predicates, 2):
            groups.append(PredicateGroup.from_iterable(combo))
        groups.append(PredicateGroup.from_iterable(predicates))
    # Deduplicate (duplicate predicates collapse inside frozensets).
    seen = set()
    unique: List[PredicateGroup] = []
    for group in groups:
        if group not in seen:
            seen.add(group)
            unique.append(group)
    return unique


def analyze_query(root_block: QueryBlock) -> List[TableCandidates]:
    """Candidate predicate groups for every base table of every block."""
    candidates: List[TableCandidates] = []
    for block in root_block.all_blocks():
        for alias, table_name in block.base_tables().items():
            predicates = block.local_predicates_for(alias)
            if not predicates:
                continue
            groups = enumerate_groups(list(predicates))
            if groups:
                candidates.append(
                    TableCandidates(
                        block_id=block.block_id,
                        alias=alias,
                        table=table_name.lower(),
                        groups=groups,
                        residuals=list(block.scan_residuals.get(alias, ())),
                    )
                )
    return candidates


def merge_by_table(
    candidates: List[TableCandidates],
) -> Dict[str, List[PredicateGroup]]:
    """Union of candidate groups per base table (self-joins merge)."""
    merged: Dict[str, List[PredicateGroup]] = {}
    seen: Dict[str, set] = {}
    for candidate in candidates:
        bucket = merged.setdefault(candidate.table, [])
        dedupe = seen.setdefault(candidate.table, set())
        for group in candidate.groups:
            if group not in dedupe:
                dedupe.add(group)
                bucket.append(group)
    return merged
