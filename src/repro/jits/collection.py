"""Statistics collection: sampling marked tables, computing QSS.

Once the sensitivity analysis marks a table, JITS draws one fixed-size
sample and evaluates *every* candidate predicate group on it ("once a table
is sampled, it is relatively cheap to collect the selectivities of all
predicate groups that belong to this table", Section 3.3). The exact
selectivities go into the per-query :class:`QSSProfile`; groups marked for
materialization are folded into the archive, together with their marginal
sub-group counts taken from the same sample (the Figure 2 update).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..optimizer.context import QSSProfile
from ..predicates import (
    LocalPredicate,
    PredicateGroup,
    group_region,
    masks_for_predicates,
)
from ..storage import Database, fixed_size_sample
from .archive import QSSArchive
from .samplecache import MaskCache, SampleCache
from .sensitivity import TableDecision


@dataclass
class CollectionReport:
    """What one compilation's statistics collection actually did."""

    tables_sampled: List[str] = field(default_factory=list)
    groups_computed: int = 0
    groups_materialized: int = 0
    sample_rows: int = 0
    # Fast-path accounting: how much per-query work the caches absorbed.
    sample_cache_hits: int = 0
    sample_cache_misses: int = 0
    mask_cache_hits: int = 0
    mask_cache_misses: int = 0


class StatisticsCollector:
    def __init__(
        self,
        database: Database,
        archive: QSSArchive,
        sample_size: int,
        rng: np.random.Generator,
        sample_cache: Optional[SampleCache] = None,
        mask_cache: Optional[MaskCache] = None,
        rng_lock: Optional[threading.Lock] = None,
        parallel=None,
    ):
        self.database = database
        self.archive = archive
        self.sample_size = sample_size
        self.rng = rng
        # Optional ParallelScanManager: shards the sample-selectivity
        # masks across the worker pool when the sample is large enough.
        self.parallel = parallel
        # numpy Generators are not thread-safe; when the sample cache is
        # off, concurrent compilations draw directly from the shared rng
        # and must serialize around it (the cache path draws under the
        # cache's own lock).
        self.rng_lock = rng_lock
        self.sample_cache = sample_cache
        # Mask reuse is only sound against a stable (cached) sample: the
        # epoch in the fingerprint identifies the exact rows a mask is
        # aligned with.
        self.mask_cache = mask_cache if sample_cache is not None else None

    def collect(
        self,
        decisions: Dict[str, TableDecision],
        candidates_by_table: Dict[str, List[PredicateGroup]],
        now: int,
        last_collection_udi: Optional[Dict[str, int]] = None,
        residuals_by_table: Optional[Dict[str, List[Tuple[str, object]]]] = None,
        residual_store=None,
    ) -> Tuple[QSSProfile, CollectionReport]:
        profile = QSSProfile()
        report = CollectionReport()
        for table_name, decision in decisions.items():
            if not decision.collect:
                continue
            groups = candidates_by_table.get(table_name, [])
            if not groups:
                continue
            residuals = (
                residuals_by_table.get(table_name, [])
                if residuals_by_table is not None
                else []
            )
            self._collect_table(
                table_name,
                groups,
                set(decision.materialize),
                profile,
                report,
                now,
                residuals=residuals,
                residual_store=residual_store,
            )
            if last_collection_udi is not None:
                last_collection_udi[table_name] = self.database.table(
                    table_name
                ).udi_total
        return profile, report

    def _collect_table(
        self,
        table_name: str,
        groups: List[PredicateGroup],
        materialize: set,
        profile: QSSProfile,
        report: CollectionReport,
        now: int,
        residuals: Optional[List[Tuple[str, object]]] = None,
        residual_store=None,
    ) -> None:
        table = self.database.table(table_name)
        cardinality = table.row_count
        profile.table_cardinalities[table_name.lower()] = float(cardinality)
        if self.sample_cache is not None:
            rows, sample_epoch, cache_hit = self.sample_cache.get(table_name)
            if cache_hit:
                report.sample_cache_hits += 1
            else:
                report.sample_cache_misses += 1
        else:
            if self.rng_lock is not None:
                with self.rng_lock:
                    rows = fixed_size_sample(table, self.sample_size, self.rng)
            else:
                rows = fixed_size_sample(table, self.sample_size, self.rng)
            sample_epoch = -1
        sample_size = len(rows)
        report.tables_sampled.append(table_name.lower())
        report.sample_rows += sample_size

        # One mask per distinct predicate; groups AND them together. The
        # mask cache keys on the sample epoch so a reused mask is always
        # aligned with the exact rows of the current sample.
        cache_get = cache_put = None
        if self.mask_cache is not None:
            cache_get = lambda p: self.mask_cache.lookup(
                table_name, p, sample_epoch
            )
            cache_put = lambda p, m: self.mask_cache.store(
                table_name, p, sample_epoch, m
            )
        evaluated = None
        if self.parallel is not None:
            evaluated = self.parallel.masks_for_predicates(
                table,
                [p for group in groups for p in group.predicates],
                rows,
                cache_get=cache_get,
                cache_put=cache_put,
            )
        if evaluated is None:
            evaluated = masks_for_predicates(
                table,
                (p for group in groups for p in group.predicates),
                rows,
                cache_get=cache_get,
                cache_put=cache_put,
            )
        predicate_masks, hits, misses = evaluated
        report.mask_cache_hits += hits
        report.mask_cache_misses += misses

        selectivities: Dict[PredicateGroup, float] = {}
        for group in groups:
            mask = None
            for predicate in group.predicates:
                m = predicate_masks[predicate]
                mask = m if mask is None else (mask & m)
            matches = int(mask.sum()) if mask is not None else sample_size
            selectivity = matches / sample_size if sample_size else 0.0
            selectivities[group] = selectivity
            profile.record(table_name, group, selectivity)
            report.groups_computed += 1

        for group in groups:
            if group not in materialize:
                continue
            if self._materialize_group(
                table, group, groups, selectivities, cardinality, now
            ):
                report.groups_materialized += 1

        # Footnote 1 (Section 3.4): predicates that cannot feed a histogram
        # still get their observed selectivity stored for reuse.
        if residuals and residual_store is not None and sample_size:
            self._collect_residuals(
                table, rows, residuals, residual_store, now
            )

    def _collect_residuals(
        self, table, rows, residuals, residual_store, now: int
    ) -> None:
        from ..executor.expr import eval_bool
        from ..executor.vector import batch_from_table
        from ..predicates.residualkey import residual_key

        batches = {}
        for alias, expr in residuals:
            alias = alias.lower()
            if alias not in batches:
                batches[alias] = batch_from_table(table, alias, rows)
            try:
                mask = eval_bool(expr, batches[alias])
            except Exception:
                continue  # shapes the vectorized evaluator cannot handle
            selectivity = float(mask.sum()) / len(rows)
            residual_store.record(
                table.name, residual_key(expr, alias), selectivity, now
            )

    def _materialize_group(
        self,
        table,
        group: PredicateGroup,
        all_groups: List[PredicateGroup],
        selectivities: Dict[PredicateGroup, float],
        cardinality: int,
        now: int,
    ) -> bool:
        """Fold one group's observed count (plus the marginal counts of its
        sub-groups, from the same sample) into the archive histogram."""
        located = group_region(table, group)
        if located is None:
            return False  # not a region shape (<>, multi-value IN)
        columns, region = located
        self.archive.observe(
            table.name,
            columns,
            region,
            count=selectivities[group] * cardinality,
            total=float(cardinality),
            now=now,
        )
        if len(columns) > 1:
            for sub in all_groups:
                if sub is group or not group.contains(sub):
                    continue
                from ..predicates import region_for_columns

                sub_region = region_for_columns(table, sub, columns)
                if sub_region is None:
                    continue
                self.archive.observe(
                    table.name,
                    columns,
                    sub_region,
                    count=selectivities[sub] * cardinality,
                    total=None,  # same sample; total already constrained
                    now=now,
                )
        return True
