"""The JITS controller: wires analysis, sensitivity, collection, archive,
history and migration into the compile/execute pipeline.

Lifecycle per query (paper Figure 1):

1. ``before_optimize`` — Algorithm 1 (query analysis) over the QGM blocks,
   Algorithm 2/3/4 (sensitivity analysis), then sampling-based collection;
   returns the :class:`QSSProfile` of exact selectivities the optimizer
   consumes, plus a report of what was done.
2. ``after_execute`` — consumes LEO-style feedback records and updates the
   StatHistory (the raw material for the next sensitivity analysis).
3. ``tick`` — periodically migrates archive histograms into the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..catalog import SystemCatalog
from ..executor.feedback import FeedbackRecord
from ..optimizer.context import QSSProfile
from ..sql.qgm import QueryBlock
from ..storage import DEFAULT_SAMPLE_SIZE, Database
from .analysis import TableCandidates, analyze_query, merge_by_table
from .archive import DEFAULT_CELL_BUDGET, QSSArchive
from .collection import CollectionReport, StatisticsCollector
from .history import StatHistory
from .migration import migrate_archive_to_catalog
from .residuals import ResidualStatisticsStore
from .sensitivity import SensitivityAnalyzer, TableDecision


@dataclass
class JITSConfig:
    """Tuning knobs of the JITS subsystem."""

    enabled: bool = True
    s_max: float = 0.5  # sensitivity threshold (paper Section 4.3)
    sample_size: int = DEFAULT_SAMPLE_SIZE
    always_collect: bool = False  # bypass sensitivity analysis (Table 3 mode)
    cell_budget: int = DEFAULT_CELL_BUDGET
    migration_interval: int = 50  # statements between migrations; 0 = never
    feedback_enabled: bool = True
    materialize_enabled: bool = True  # ablation knob: archive on/off
    use_history_score: bool = True  # ablation knob: s1 term on/off
    maxent_calibration: bool = True  # ablation knob: IPF vs naive updates


@dataclass
class CompilationReport:
    """What JITS did while compiling one query."""

    candidates: List[TableCandidates] = field(default_factory=list)
    decisions: Dict[str, TableDecision] = field(default_factory=dict)
    collection: CollectionReport = field(default_factory=CollectionReport)

    @property
    def tables_collected(self) -> List[str]:
        return self.collection.tables_sampled


class JustInTimeStatistics:
    """One JITS instance per engine."""

    def __init__(
        self,
        database: Database,
        catalog: SystemCatalog,
        config: Optional[JITSConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.database = database
        self.catalog = catalog
        self.config = config or JITSConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.history = StatHistory()
        self.archive = QSSArchive(
            database,
            cell_budget=self.config.cell_budget,
            calibrate=self.config.maxent_calibration,
        )
        self.residual_store = ResidualStatisticsStore()
        self.last_collection_udi: Dict[str, int] = {}
        self._last_migration = 0
        self.total_collections = 0
        self.total_migrations = 0

    # ------------------------------------------------------------------
    # Compile-time hook
    # ------------------------------------------------------------------
    def before_optimize(
        self, root_block: QueryBlock, now: int
    ) -> Tuple[Optional[QSSProfile], CompilationReport]:
        report = CompilationReport()
        if not self.config.enabled:
            return None, report
        if self.config.always_collect or self.config.s_max < 1.0:
            # "Table statistics (e.g., number of rows) ... are needed for
            # every table involved in the query" (Section 3.2). Refreshing
            # the cardinality is O(1) against the storage header, so JITS
            # keeps it exact whenever it is allowed to collect at all.
            self._refresh_table_statistics(root_block, now)
        report.candidates = analyze_query(root_block)
        if not report.candidates:
            return None, report
        by_table = merge_by_table(report.candidates)

        if self.config.always_collect:
            report.decisions = {
                table: TableDecision(
                    table=table,
                    collect=True,
                    score=1.0,
                    s1=1.0,
                    s2=1.0,
                    materialize=list(groups),
                )
                for table, groups in by_table.items()
            }
        else:
            analyzer = SensitivityAnalyzer(
                self.database,
                self.catalog,
                self.archive,
                self.history,
                self.config.s_max,
                self.last_collection_udi,
                use_history_score=self.config.use_history_score,
            )
            report.decisions = analyzer.analyze(by_table)
        if not self.config.materialize_enabled:
            for decision in report.decisions.values():
                decision.materialize = []

        residuals_by_table: Dict[str, List] = {}
        for candidate in report.candidates:
            if candidate.residuals:
                bucket = residuals_by_table.setdefault(candidate.table, [])
                bucket.extend(
                    (candidate.alias, expr) for expr in candidate.residuals
                )
        collector = StatisticsCollector(
            self.database, self.archive, self.config.sample_size, self.rng
        )
        profile, report.collection = collector.collect(
            report.decisions,
            by_table,
            now,
            self.last_collection_udi,
            residuals_by_table=residuals_by_table,
            residual_store=self.residual_store,
        )
        self.total_collections += len(report.collection.tables_sampled)
        if report.collection.tables_sampled:
            # Table statistics are "needed for every table involved in the
            # query" (Section 3.2); once we are collecting at all, exact
            # cardinalities for the query's base tables are free.
            for block in root_block.all_blocks():
                for table_name in block.base_tables().values():
                    profile.table_cardinalities.setdefault(
                        table_name.lower(),
                        float(self.database.table(table_name).row_count),
                    )
        if profile.n_groups == 0 and not profile.table_cardinalities:
            return None, report
        return profile, report

    def _refresh_table_statistics(self, root_block: QueryBlock, now: int) -> None:
        from ..catalog import TableStatistics

        for block in root_block.all_blocks():
            for table_name in block.base_tables().values():
                table = self.database.table(table_name)
                stats = self.catalog.table_stats(table_name)
                if (
                    stats is None
                    or table.udi_since(stats.udi_snapshot) > 0
                ):
                    self.catalog.set_table_stats(
                        TableStatistics(
                            table=table.name,
                            cardinality=float(table.row_count),
                            collected_at=now,
                            udi_snapshot=table.udi_total,
                        )
                    )

    # ------------------------------------------------------------------
    # Run-time hooks
    # ------------------------------------------------------------------
    def after_execute(self, records: List[FeedbackRecord], now: int) -> None:
        if not self.config.enabled or not self.config.feedback_enabled:
            return
        for record in records:
            self.history.record(
                record.table,
                record.group.columns(),
                record.statlist,
                record.errorfactor,
            )

    def tick(self, now: int) -> int:
        """Migration heartbeat; returns histograms migrated this tick."""
        interval = self.config.migration_interval
        if not self.config.enabled or interval <= 0:
            return 0
        if now - self._last_migration < interval:
            return 0
        self._last_migration = now
        migrated = migrate_archive_to_catalog(
            self.archive, self.catalog, self.database, now
        )
        self.total_migrations += migrated
        return migrated
