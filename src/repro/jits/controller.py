"""The JITS controller: wires analysis, sensitivity, collection, archive,
history and migration into the compile/execute pipeline.

Lifecycle per query (paper Figure 1):

1. ``before_optimize`` — Algorithm 1 (query analysis) over the QGM blocks,
   Algorithm 2/3/4 (sensitivity analysis), then sampling-based collection;
   returns the :class:`QSSProfile` of exact selectivities the optimizer
   consumes, plus a report of what was done.
2. ``after_execute`` — consumes LEO-style feedback records and updates the
   StatHistory (the raw material for the next sensitivity analysis).
3. ``tick`` — periodically migrates archive histograms into the catalog.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..catalog import SystemCatalog
from ..errors import ReproError
from ..executor.feedback import FeedbackRecord
from ..optimizer.context import QSSProfile
from ..sql.qgm import QueryBlock
from ..storage import DEFAULT_SAMPLE_SIZE, Database
from .analysis import TableCandidates, analyze_query, merge_by_table
from .archive import DEFAULT_CELL_BUDGET, QSSArchive
from .collection import CollectionReport, StatisticsCollector
from .history import StatHistory
from .migration import migrate_archive_to_catalog
from .residuals import ResidualStatisticsStore
from .samplecache import (
    DEFAULT_MASK_CACHE_SIZE,
    DEFAULT_SAMPLE_STALENESS,
    MaskCache,
    SampleCache,
)
from .sensitivity import SensitivityAnalyzer, TableDecision, table_stats_epoch


@dataclass
class JITSConfig:
    """Tuning knobs of the JITS subsystem."""

    enabled: bool = True
    s_max: float = 0.5  # sensitivity threshold (paper Section 4.3)
    sample_size: int = DEFAULT_SAMPLE_SIZE
    always_collect: bool = False  # bypass sensitivity analysis (Table 3 mode)
    cell_budget: int = DEFAULT_CELL_BUDGET
    migration_interval: int = 50  # statements between migrations; 0 = never
    feedback_enabled: bool = True
    materialize_enabled: bool = True  # ablation knob: archive on/off
    use_history_score: bool = True  # ablation knob: s1 term on/off
    maxent_calibration: bool = True  # ablation knob: IPF vs naive updates
    # Compilation fast path. All three default on; turning them off
    # recovers exact per-query sampling and per-observe calibration.
    sample_cache_enabled: bool = True
    sample_staleness: float = DEFAULT_SAMPLE_STALENESS  # UDI fraction
    mask_cache_enabled: bool = True
    mask_cache_size: int = DEFAULT_MASK_CACHE_SIZE
    deferred_calibration: bool = True

    def __post_init__(self) -> None:
        if self.sample_size <= 0:
            raise ReproError(
                f"jits sample_size must be positive, got {self.sample_size}"
            )
        if self.cell_budget <= 0:
            raise ReproError(
                f"jits cell_budget must be positive, got {self.cell_budget}"
            )
        if not 0.0 <= self.s_max <= 1.0:
            raise ReproError(f"s_max must be in [0, 1], got {self.s_max}")
        if self.migration_interval < 0:
            raise ReproError(
                "migration_interval must be >= 0 (0 disables migration), "
                f"got {self.migration_interval}"
            )
        if self.sample_staleness <= 0.0:
            raise ReproError(
                f"sample_staleness must be positive, got {self.sample_staleness}"
            )
        if self.mask_cache_size <= 0:
            raise ReproError(
                f"mask_cache_size must be positive, got {self.mask_cache_size}"
            )


@dataclass
class CompilationReport:
    """What JITS did while compiling one query."""

    candidates: List[TableCandidates] = field(default_factory=list)
    decisions: Dict[str, TableDecision] = field(default_factory=dict)
    collection: CollectionReport = field(default_factory=CollectionReport)
    # True when the engine served this query from its plan cache and the
    # whole JITS compile-time pipeline was skipped.
    plan_cache_hit: bool = False

    @property
    def tables_collected(self) -> List[str]:
        return self.collection.tables_sampled


class JustInTimeStatistics:
    """One JITS instance per engine."""

    def __init__(
        self,
        database: Database,
        catalog: SystemCatalog,
        config: Optional[JITSConfig] = None,
        rng: Optional[np.random.Generator] = None,
        parallel=None,
    ):
        self.database = database
        self.catalog = catalog
        self.config = config or JITSConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        # Optional ParallelScanManager handed down by the engine; used by
        # the collector's sample-selectivity evaluation.
        self.parallel = parallel
        self.history = StatHistory()
        self.archive = QSSArchive(
            database,
            cell_budget=self.config.cell_budget,
            calibrate=self.config.maxent_calibration,
            deferred_calibration=self.config.deferred_calibration,
        )
        self.residual_store = ResidualStatisticsStore()
        self.sample_cache: Optional[SampleCache] = (
            SampleCache(
                database,
                self.config.sample_size,
                self.rng,
                staleness=self.config.sample_staleness,
            )
            if self.config.enabled and self.config.sample_cache_enabled
            else None
        )
        self.mask_cache: Optional[MaskCache] = (
            MaskCache(self.config.mask_cache_size)
            if self.config.mask_cache_enabled and self.sample_cache is not None
            else None
        )
        self.last_collection_udi: Dict[str, int] = {}
        self._last_migration = 0
        self.total_collections = 0
        self.total_migrations = 0
        # Guards the shared counters and the migration heartbeat: two
        # statements ticking across the interval boundary must not both
        # run the migration pass.
        self._lock = threading.Lock()
        # Serializes direct draws from the shared numpy Generator when
        # the sample cache is disabled (see StatisticsCollector).
        self._rng_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Compile-time hook
    # ------------------------------------------------------------------
    def before_optimize(
        self, root_block: QueryBlock, now: int
    ) -> Tuple[Optional[QSSProfile], CompilationReport]:
        report = CompilationReport()
        if not self.config.enabled:
            return None, report
        if self.config.always_collect or self.config.s_max < 1.0:
            # "Table statistics (e.g., number of rows) ... are needed for
            # every table involved in the query" (Section 3.2). Refreshing
            # the cardinality is O(1) against the storage header, so JITS
            # keeps it exact whenever it is allowed to collect at all.
            self._refresh_table_statistics(root_block, now)
        report.candidates = analyze_query(root_block)
        if not report.candidates:
            return None, report
        by_table = merge_by_table(report.candidates)

        if self.config.always_collect:
            report.decisions = {
                table: TableDecision(
                    table=table,
                    collect=True,
                    score=1.0,
                    s1=1.0,
                    s2=1.0,
                    materialize=list(groups),
                )
                for table, groups in by_table.items()
            }
        else:
            analyzer = SensitivityAnalyzer(
                self.database,
                self.catalog,
                self.archive,
                self.history,
                self.config.s_max,
                self.last_collection_udi,
                use_history_score=self.config.use_history_score,
            )
            report.decisions = analyzer.analyze(by_table)
        if not self.config.materialize_enabled:
            for decision in report.decisions.values():
                decision.materialize = []

        residuals_by_table: Dict[str, List] = {}
        for candidate in report.candidates:
            if candidate.residuals:
                bucket = residuals_by_table.setdefault(candidate.table, [])
                bucket.extend(
                    (candidate.alias, expr) for expr in candidate.residuals
                )
        collector = StatisticsCollector(
            self.database,
            self.archive,
            self.config.sample_size,
            self.rng,
            sample_cache=self.sample_cache,
            mask_cache=self.mask_cache,
            rng_lock=self._rng_lock,
            parallel=self.parallel,
        )
        profile, report.collection = collector.collect(
            report.decisions,
            by_table,
            now,
            self.last_collection_udi,
            residuals_by_table=residuals_by_table,
            residual_store=self.residual_store,
        )
        with self._lock:
            self.total_collections += len(report.collection.tables_sampled)
        if report.collection.tables_sampled:
            # Table statistics are "needed for every table involved in the
            # query" (Section 3.2); once we are collecting at all, exact
            # cardinalities for the query's base tables are free.
            for block in root_block.all_blocks():
                for table_name in block.base_tables().values():
                    profile.table_cardinalities.setdefault(
                        table_name.lower(),
                        float(self.database.table(table_name).row_count),
                    )
        if profile.n_groups == 0 and not profile.table_cardinalities:
            return None, report
        return profile, report

    def _refresh_table_statistics(self, root_block: QueryBlock, now: int) -> None:
        from ..catalog import TableStatistics

        for block in root_block.all_blocks():
            for table_name in block.base_tables().values():
                table = self.database.table(table_name)
                stats = self.catalog.table_stats(table_name)
                if (
                    stats is None
                    or table.udi_since(stats.udi_snapshot) > 0
                ):
                    self.catalog.set_table_stats(
                        TableStatistics(
                            table=table.name,
                            cardinality=float(table.row_count),
                            collected_at=now,
                            udi_snapshot=table.udi_total,
                        )
                    )

    # ------------------------------------------------------------------
    # Run-time hooks
    # ------------------------------------------------------------------
    def after_execute(self, records: List[FeedbackRecord], now: int) -> None:
        if not self.config.enabled or not self.config.feedback_enabled:
            return
        for record in records:
            self.history.record(
                record.table,
                record.group.columns(),
                record.statlist,
                record.errorfactor,
            )

    def tick(self, now: int) -> int:
        """Migration heartbeat; returns histograms migrated this tick."""
        if not self.config.enabled:
            return 0
        # Deferred observations batch up during compilation; the statement
        # boundary is where the single max-entropy pass lands.
        self.archive.recalibrate_dirty()
        interval = self.config.migration_interval
        if interval <= 0:
            return 0
        # Claim the heartbeat under the lock so concurrent statements
        # crossing the interval boundary run exactly one migration pass,
        # but run the pass itself outside it. Migration never needs the
        # engine's data locks: it reads the archive masters under the
        # archive writer lock and publishes new catalog snapshots, so it
        # is safe to run from a reader-path statement.
        with self._lock:
            if now - self._last_migration < interval:
                return 0
            self._last_migration = now
        migrated = migrate_archive_to_catalog(
            self.archive, self.catalog, self.database, now
        )
        with self._lock:
            self.total_migrations += migrated
        return migrated

    # ------------------------------------------------------------------
    # Epochs and DDL
    # ------------------------------------------------------------------
    def stats_epoch(self, table_name: str) -> Tuple[int, int]:
        """``(udi epoch, sample epoch)`` for one table.

        The pair changes exactly when statistics produced for the table
        may differ from a previous compilation's: either enough data
        activity accumulated (UDI crossed a staleness step) or the fast
        path redrew the table's sample.
        """
        table = self.database.table(table_name)
        step = int(self.config.sample_staleness * max(table.row_count, 1))
        udi_epoch = table_stats_epoch(table, step)
        sample_epoch = (
            self.sample_cache.epoch(table_name)
            if self.sample_cache is not None
            else -1
        )
        return udi_epoch, sample_epoch

    def drop_table(self, table_name: str) -> None:
        """Forget every statistic derived from a dropped table."""
        self.archive.drop_table(table_name)
        self.residual_store.drop_table(table_name)
        if self.sample_cache is not None:
            self.sample_cache.drop_table(table_name)
        if self.mask_cache is not None:
            self.mask_cache.drop_table(table_name)
        self.last_collection_udi.pop(table_name.lower(), None)
