"""Statistics migration: fold QSS archive histograms back into the catalog.

The paper's Figure 1 shows a Statistics Migration module that periodically
updates the system catalog from the QSS archive, so even queries compiled
without a JITS collection benefit from what earlier queries learned.

Single-column archive histograms replace the catalog's distribution
statistics for that column; multi-column histograms are published as
catalog column-group statistics (snapshot copies — the archive keeps
evolving afterwards).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..catalog import (
    ColumnGroupStatistics,
    ColumnStatistics,
    SystemCatalog,
)
from ..histograms import EquiDepthHistogram
from ..storage import Database
from .archive import QSSArchive


def migrate_archive_to_catalog(
    archive: QSSArchive,
    catalog: SystemCatalog,
    database: Database,
    now: int,
) -> int:
    """Publish every archive histogram into the catalog. Returns count."""
    # Migration snapshots bucket counts, so any deferred max-entropy work
    # must land first.
    archive.recalibrate_dirty()
    migrated = 0
    for entry in archive.entries():
        if len(entry.columns) == 1:
            if _migrate_single_column(entry, catalog, database, now):
                migrated += 1
        else:
            catalog.set_group_stats(
                ColumnGroupStatistics(
                    table=entry.table,
                    columns=entry.columns,
                    # Frozen copy — later archive updates publish new
                    # snapshots and never mutate what the catalog holds.
                    histogram=entry.histogram.freeze(),
                    collected_at=now,
                )
            )
            migrated += 1
    return migrated


def _migrate_single_column(entry, catalog: SystemCatalog, database, now) -> int:
    histogram = entry.histogram
    with histogram._hist_lock:
        boundaries = np.asarray(histogram.boundary_list(0), dtype=np.float64)
        counts = histogram.counts.reshape(-1).astype(np.float64)
    if len(boundaries) < 2 or counts.sum() <= 0:
        return 0
    column = entry.columns[0]
    total = float(counts.sum())
    published = EquiDepthHistogram(boundaries=boundaries, counts=counts)
    existing = catalog.column_stats(entry.table, column)
    # Publish a fresh ColumnStatistics instead of mutating the existing
    # object in place: concurrent compilations read whichever object the
    # catalog currently holds, and a multi-field in-place update would
    # expose torn (histogram from one migration, row_count from another)
    # state. The catalog swaps the whole object atomically.
    if existing is not None:
        replacement = ColumnStatistics(
            column=existing.column,
            dtype=existing.dtype,
            n_distinct=existing.n_distinct,
            min_value=float(boundaries[0]),
            max_value=float(boundaries[-1]),
            row_count=total,
            frequent_values=existing.frequent_values,
            histogram=published,
            collected_at=now,
        )
    else:
        table = database.table(entry.table)
        dtype = table.schema.column(column).dtype
        replacement = ColumnStatistics(
            column=column,
            dtype=dtype,
            # NDV is not derivable from a bucket histogram; a square-
            # root guess keeps equality estimates sane until RUNSTATS
            # or a later migration refines it.
            n_distinct=max(1.0, float(np.sqrt(total))),
            min_value=float(boundaries[0]),
            max_value=float(boundaries[-1]),
            row_count=total,
            histogram=published,
            collected_at=now,
        )
    catalog.set_column_stats(entry.table, replacement)
    return 1
