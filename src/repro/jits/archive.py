"""The QSS archive: materialized query-specific statistics.

A repository of adaptive single- and multi-dimensional histograms keyed by
(table, column group), updated under the maximum-entropy principle and
bounded by a space budget. Eviction follows the paper (Section 3.4): when
the dedicated space is full, remove the histograms that are almost
uniformly distributed (they say nothing the optimizer's default assumption
doesn't); ties broken by LRU.

Concurrency: the archive is RCU-published. Writers (observe, the batched
recalibration pass, drops) mutate the private master entries under the
archive lock, then publish a new immutable :class:`ArchiveSnapshot` whose
histograms are frozen copies. The optimizer's read path — ``lookup`` /
``mark_used`` on every selectivity estimate — is a plain attribute load of
the current snapshot plus dict probes: no lock, no contention with
concurrent collection. The snapshot's ``version`` is the archive's
statistics epoch; the engine's plan cache keys on it, so a publication is
also the cache-invalidation signal. The writer cost is the copy-on-publish
of the one changed histogram plus a shallow dict copy — paid per observe,
amortized over every lock-free read in between.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..histograms import AdaptiveGridHistogram, Region
from ..storage import Database
from ..catalog import column_domain

ColumnGroup = Tuple[str, ...]

DEFAULT_CELL_BUDGET = 4096
# Histograms with uniformity deviation below this are "almost uniform" and
# evicted first.
UNIFORMITY_EVICTION_THRESHOLD = 0.25


@dataclass
class ArchiveEntry:
    table: str
    columns: ColumnGroup
    histogram: AdaptiveGridHistogram


class ArchiveSnapshot:
    """One immutable, epoch-stamped view of the archive.

    ``entries`` maps archive keys to *frozen* histogram copies; counters
    are captured at publication time, so a reader holding one snapshot
    sees a single consistent statistics epoch.
    """

    __slots__ = (
        "entries",
        "version",
        "total_cells",
        "evictions",
        "deferred_recalibrations",
    )

    def __init__(
        self,
        entries: Mapping[Tuple[str, ColumnGroup], AdaptiveGridHistogram],
        version: int,
        total_cells: int,
        evictions: int,
        deferred_recalibrations: int,
    ):
        self.entries = entries
        self.version = version
        self.total_cells = total_cells
        self.evictions = evictions
        self.deferred_recalibrations = deferred_recalibrations


class QSSArchive:
    """All materialized QSS histograms."""

    def __init__(
        self,
        database: Database,
        cell_budget: int = DEFAULT_CELL_BUDGET,
        max_boundaries_per_dim: int = 24,
        calibrate: bool = True,
        deferred_calibration: bool = False,
    ):
        self.database = database
        self.cell_budget = cell_budget
        self.max_boundaries_per_dim = max_boundaries_per_dim
        self.calibrate = calibrate  # ablation: max-entropy IPF on/off
        # Fast path: observe() only records constraints and marks the
        # histogram dirty; the IPF pass runs batched at tick()/migration
        # boundaries (or lazily on the first lookup of a dirty histogram).
        self.deferred_calibration = deferred_calibration
        # Master (writer-side) entries; mutated only under the lock.
        self._entries: Dict[Tuple[str, ColumnGroup], ArchiveEntry] = {}
        self._dirty: set = set()
        # Keys whose master histogram moved since the last publication;
        # only these are re-frozen when a snapshot is built.
        self._changed: set = set()
        self.evictions = 0
        # Bumped on every publication; plan caches key on it so cached
        # plans are invalidated when new QSS land.
        self._version = 0
        self.deferred_recalibrations = 0
        # Serializes writers (observe / recalibrate / drop) and their
        # publication step. Readers go through the published snapshot and
        # never take it. Reentrant because observe() cascades into budget
        # enforcement.
        self._lock = threading.RLock()
        self._snapshot = ArchiveSnapshot({}, 0, 0, 0, 0)

    @property
    def version(self) -> int:
        """Statistics epoch: bumps exactly when a new snapshot publishes."""
        return self._snapshot.version

    def snapshot(self) -> ArchiveSnapshot:
        """The current immutable view (pin it for one compilation)."""
        return self._snapshot

    def _publish(self) -> None:
        """Swap in a new snapshot reflecting the master entries.

        Caller holds the lock. Unchanged histograms reuse their previous
        frozen copies; only entries whose master histogram moved since the
        last publication are re-frozen (the copy-on-publish cost).
        """
        previous = self._snapshot.entries
        entries: Dict[Tuple[str, ColumnGroup], AdaptiveGridHistogram] = {}
        for key, entry in self._entries.items():
            frozen = previous.get(key)
            if frozen is None or key in self._changed:
                frozen = entry.histogram.freeze()
            entries[key] = frozen
        self._changed.clear()
        self._snapshot = ArchiveSnapshot(
            entries=entries,
            version=self._version,
            total_cells=sum(
                e.histogram.n_cells for e in self._entries.values()
            ),
            evictions=self.evictions,
            deferred_recalibrations=self.deferred_recalibrations,
        )

    # ------------------------------------------------------------------
    # Lookup (the optimizer's lock-free read path)
    # ------------------------------------------------------------------
    def lookup(
        self, table: str, columns: Iterable[str]
    ) -> Optional[AdaptiveGridHistogram]:
        key = self._key(table, columns)
        hist = self._snapshot.entries.get(key)
        if hist is None:
            return None
        if hist.dirty:
            # Slow path: a deferred observation has not been calibrated
            # yet. Calibrate the master once under the lock and publish a
            # clean copy — readers never see uncalibrated counts.
            return self._recalibrate_one(key) or hist
        return hist

    def _recalibrate_one(
        self, key: Tuple[str, ColumnGroup]
    ) -> Optional[AdaptiveGridHistogram]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:  # raced with a drop/eviction
                return self._snapshot.entries.get(key)
            self._dirty.discard(key)
            if entry.histogram.recalibrate():
                self.deferred_recalibrations += 1
                self._changed.add(key)
                self._publish()
            return self._snapshot.entries.get(key)

    def mark_used(self, table: str, columns: Iterable[str], now: int) -> None:
        # Lock-free: the frozen copy shares its recency cell with the
        # master histogram, so touching it drives LRU eviction directly.
        hist = self._snapshot.entries.get(self._key(table, columns))
        if hist is not None:
            hist.touch(now)

    def has(self, table: str, columns: Iterable[str]) -> bool:
        return self._key(table, columns) in self._snapshot.entries

    def entries(self) -> List[ArchiveEntry]:
        """Master entries (writer side) — for migration and diagnostics."""
        with self._lock:
            return list(self._entries.values())

    @property
    def total_cells(self) -> int:
        return self._snapshot.total_cells

    def __len__(self) -> int:
        return len(self._snapshot.entries)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def observe(
        self,
        table: str,
        columns: Iterable[str],
        region: Region,
        count: float,
        total: Optional[float],
        now: int,
    ) -> AdaptiveGridHistogram:
        """Fold an observed (region, count) fact into the archive.

        Creates the histogram on first touch (domain from current column
        min/max), then applies the max-entropy update. Regions must use the
        canonical (sorted) column order. Returns the live master histogram;
        readers get the frozen copy published by the same call.
        """
        key = self._key(table, columns)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                histogram = self._create_histogram(
                    key[0], key[1], total if total is not None else count, now
                )
                entry = ArchiveEntry(
                    table=key[0], columns=key[1], histogram=histogram
                )
                self._entries[key] = entry
            entry.histogram.observe(
                region,
                count,
                total=total,
                now=now,
                calibrate_now=not self.deferred_calibration,
            )
            if self.deferred_calibration:
                self._dirty.add(key)
            self._version += 1
            self._changed.add(key)
            self._enforce_budget(protect=key)
            self._publish()
            return entry.histogram

    def recalibrate_dirty(self) -> int:
        """Batched max-entropy pass over every dirty histogram.

        Concurrent callers (every statement's tick crosses here) are
        serialized by the archive lock; whoever arrives first drains the
        dirty set, so each histogram gets exactly one IPF pass per batch.
        """
        if not self._dirty:
            return 0
        with self._lock:
            recalibrated = 0
            for key in list(self._dirty):
                entry = self._entries.get(key)
                if entry is not None and entry.histogram.recalibrate():
                    recalibrated += 1
                    self._changed.add(key)
            self._dirty.clear()
            self.deferred_recalibrations += recalibrated
            if recalibrated:
                self._publish()
            return recalibrated

    def _create_histogram(
        self, table: str, columns: ColumnGroup, total: float, now: int
    ) -> AdaptiveGridHistogram:
        tbl = self.database.table(table)
        domain = Region(tuple(column_domain(tbl, c) for c in columns))
        return AdaptiveGridHistogram(
            domain,
            total=total,
            now=now,
            max_boundaries_per_dim=self.max_boundaries_per_dim,
            calibrate=self.calibrate,
        )

    # ------------------------------------------------------------------
    # Space management
    # ------------------------------------------------------------------
    def _master_cells(self) -> int:
        return sum(e.histogram.n_cells for e in self._entries.values())

    def _enforce_budget(self, protect: Tuple[str, ColumnGroup]) -> None:
        while self._master_cells() > self.cell_budget and len(self._entries) > 1:
            victim = self._pick_victim(protect)
            if victim is None:
                break
            del self._entries[victim]
            self._dirty.discard(victim)
            self.evictions += 1

    def _pick_victim(
        self, protect: Tuple[str, ColumnGroup]
    ) -> Optional[Tuple[str, ColumnGroup]]:
        candidates = [
            (key, entry)
            for key, entry in self._entries.items()
            if key != protect
        ]
        if not candidates:
            return None
        uniform = [
            (key, entry)
            for key, entry in candidates
            if entry.histogram.uniformity() <= UNIFORMITY_EVICTION_THRESHOLD
        ]
        pool = uniform if uniform else candidates
        # LRU among the pool.
        return min(pool, key=lambda item: item[1].histogram.last_used)[0]

    def drop(self, table: str, columns: Iterable[str]) -> bool:
        key = self._key(table, columns)
        with self._lock:
            self._dirty.discard(key)
            dropped = self._entries.pop(key, None) is not None
            if dropped:
                self._version += 1
                self._publish()
            return dropped

    def drop_table(self, table: str) -> int:
        with self._lock:
            keys = [k for k in self._entries if k[0] == table.lower()]
            for key in keys:
                del self._entries[key]
                self._dirty.discard(key)
            if keys:
                self._version += 1
                self._publish()
            return len(keys)

    @staticmethod
    def _key(table: str, columns: Iterable[str]) -> Tuple[str, ColumnGroup]:
        return table.lower(), tuple(sorted(c.lower() for c in columns))
