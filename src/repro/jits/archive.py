"""The QSS archive: materialized query-specific statistics.

A repository of adaptive single- and multi-dimensional histograms keyed by
(table, column group), updated under the maximum-entropy principle and
bounded by a space budget. Eviction follows the paper (Section 3.4): when
the dedicated space is full, remove the histograms that are almost
uniformly distributed (they say nothing the optimizer's default assumption
doesn't); ties broken by LRU.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..histograms import AdaptiveGridHistogram, Region
from ..storage import Database
from ..catalog import column_domain

ColumnGroup = Tuple[str, ...]

DEFAULT_CELL_BUDGET = 4096
# Histograms with uniformity deviation below this are "almost uniform" and
# evicted first.
UNIFORMITY_EVICTION_THRESHOLD = 0.25


@dataclass
class ArchiveEntry:
    table: str
    columns: ColumnGroup
    histogram: AdaptiveGridHistogram


class QSSArchive:
    """All materialized QSS histograms."""

    def __init__(
        self,
        database: Database,
        cell_budget: int = DEFAULT_CELL_BUDGET,
        max_boundaries_per_dim: int = 24,
        calibrate: bool = True,
        deferred_calibration: bool = False,
    ):
        self.database = database
        self.cell_budget = cell_budget
        self.max_boundaries_per_dim = max_boundaries_per_dim
        self.calibrate = calibrate  # ablation: max-entropy IPF on/off
        # Fast path: observe() only records constraints and marks the
        # histogram dirty; the IPF pass runs batched at tick()/migration
        # boundaries (or lazily on the first lookup of a dirty histogram).
        self.deferred_calibration = deferred_calibration
        self._entries: Dict[Tuple[str, ColumnGroup], ArchiveEntry] = {}
        self._dirty: set = set()
        self.evictions = 0
        # Bumped on every observe; plan caches key on it so cached plans
        # are invalidated when new QSS land.
        self.version = 0
        self.deferred_recalibrations = 0
        # One lock for the whole archive: concurrent compilations observe,
        # look up, and (deferred-calibration mode) recalibrate histograms;
        # the lock makes each such operation atomic and guarantees an IPF
        # pass over a dirty histogram runs exactly once. Reentrant because
        # observe() cascades into budget enforcement.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(
        self, table: str, columns: Iterable[str]
    ) -> Optional[AdaptiveGridHistogram]:
        key = self._key(table, columns)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if key in self._dirty:
                # Readers always see calibrated counts, even between batches.
                self._dirty.discard(key)
                if entry.histogram.recalibrate():
                    self.deferred_recalibrations += 1
            return entry.histogram

    def mark_used(self, table: str, columns: Iterable[str], now: int) -> None:
        with self._lock:
            entry = self._entries.get(self._key(table, columns))
            if entry is not None:
                entry.histogram.touch(now)

    def has(self, table: str, columns: Iterable[str]) -> bool:
        return self._key(table, columns) in self._entries

    def entries(self) -> List[ArchiveEntry]:
        with self._lock:
            return list(self._entries.values())

    @property
    def total_cells(self) -> int:
        with self._lock:
            return sum(e.histogram.n_cells for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def observe(
        self,
        table: str,
        columns: Iterable[str],
        region: Region,
        count: float,
        total: Optional[float],
        now: int,
    ) -> AdaptiveGridHistogram:
        """Fold an observed (region, count) fact into the archive.

        Creates the histogram on first touch (domain from current column
        min/max), then applies the max-entropy update. Regions must use the
        canonical (sorted) column order.
        """
        key = self._key(table, columns)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                histogram = self._create_histogram(
                    key[0], key[1], total if total is not None else count, now
                )
                entry = ArchiveEntry(
                    table=key[0], columns=key[1], histogram=histogram
                )
                self._entries[key] = entry
            entry.histogram.observe(
                region,
                count,
                total=total,
                now=now,
                calibrate_now=not self.deferred_calibration,
            )
            if self.deferred_calibration:
                self._dirty.add(key)
            self.version += 1
            self._enforce_budget(protect=key)
            return entry.histogram

    def recalibrate_dirty(self) -> int:
        """Batched max-entropy pass over every dirty histogram.

        Concurrent callers (every statement's tick crosses here) are
        serialized by the archive lock; whoever arrives first drains the
        dirty set, so each histogram gets exactly one IPF pass per batch.
        """
        with self._lock:
            recalibrated = 0
            for key in list(self._dirty):
                entry = self._entries.get(key)
                if entry is not None and entry.histogram.recalibrate():
                    recalibrated += 1
            self._dirty.clear()
            self.deferred_recalibrations += recalibrated
            return recalibrated

    def _create_histogram(
        self, table: str, columns: ColumnGroup, total: float, now: int
    ) -> AdaptiveGridHistogram:
        tbl = self.database.table(table)
        domain = Region(tuple(column_domain(tbl, c) for c in columns))
        return AdaptiveGridHistogram(
            domain,
            total=total,
            now=now,
            max_boundaries_per_dim=self.max_boundaries_per_dim,
            calibrate=self.calibrate,
        )

    # ------------------------------------------------------------------
    # Space management
    # ------------------------------------------------------------------
    def _enforce_budget(self, protect: Tuple[str, ColumnGroup]) -> None:
        while self.total_cells > self.cell_budget and len(self._entries) > 1:
            victim = self._pick_victim(protect)
            if victim is None:
                break
            del self._entries[victim]
            self._dirty.discard(victim)
            self.evictions += 1

    def _pick_victim(
        self, protect: Tuple[str, ColumnGroup]
    ) -> Optional[Tuple[str, ColumnGroup]]:
        candidates = [
            (key, entry)
            for key, entry in self._entries.items()
            if key != protect
        ]
        if not candidates:
            return None
        uniform = [
            (key, entry)
            for key, entry in candidates
            if entry.histogram.uniformity() <= UNIFORMITY_EVICTION_THRESHOLD
        ]
        pool = uniform if uniform else candidates
        # LRU among the pool.
        return min(pool, key=lambda item: item[1].histogram.last_used)[0]

    def drop(self, table: str, columns: Iterable[str]) -> bool:
        key = self._key(table, columns)
        with self._lock:
            self._dirty.discard(key)
            return self._entries.pop(key, None) is not None

    def drop_table(self, table: str) -> int:
        with self._lock:
            keys = [k for k in self._entries if k[0] == table.lower()]
            for key in keys:
                del self._entries[key]
                self._dirty.discard(key)
            return len(keys)

    @staticmethod
    def _key(table: str, columns: Iterable[str]) -> Tuple[str, ColumnGroup]:
        return table.lower(), tuple(sorted(c.lower() for c in columns))
