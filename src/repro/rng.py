"""Seeded randomness helpers.

Every stochastic component (data generation, sampling, workload generation)
takes an explicit ``numpy.random.Generator`` so experiments are reproducible
end to end from a single seed.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20070415  # ICDE 2007 conference date; any fixed value works.


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Create a deterministic generator from ``seed``."""
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *salt: int) -> np.random.Generator:
    """Derive an independent child generator.

    Used when a component needs its own stream that must not perturb the
    parent's sequence (e.g. per-table sampling inside a workload run).
    """
    seed = rng.integers(0, 2**63 - 1)
    mixed = int(seed)
    for s in salt:
        mixed = (mixed * 1000003) ^ (s & 0xFFFFFFFF)
    return np.random.default_rng(mixed & (2**63 - 1))
