"""Self-observing production plane: fingerprints, zone maps, advisor.

See :mod:`.plane` for the coordinating object the engine owns, and the
sibling modules for the three observers it fans out to.
"""

from .advisor import IndexAdvisor, predicate_kind
from .fingerprint import (
    SORT_KEYS,
    FingerprintRegistry,
    P2Quantile,
    StatementStats,
    fingerprint_statement,
    normalize_statement,
)
from .plane import ObservationPlane
from .zonemap import TableZoneMap, ZoneMapStore, build_column_zones

__all__ = [
    "SORT_KEYS",
    "FingerprintRegistry",
    "IndexAdvisor",
    "ObservationPlane",
    "P2Quantile",
    "StatementStats",
    "TableZoneMap",
    "ZoneMapStore",
    "build_column_zones",
    "fingerprint_statement",
    "normalize_statement",
    "predicate_kind",
]
