"""The observation plane: one object tying the three observers together.

The engine owns one :class:`ObservationPlane`; the session layer feeds
it one call per executed statement (after the statement's locks are
released) and the plane fans the observation out:

* the :class:`~.fingerprint.FingerprintRegistry` aggregates the
  statement under its literal-free fingerprint,
* the :class:`~.advisor.IndexAdvisor` receives predicate heat mined from
  the executed plan's scan nodes,
* the :class:`~.zonemap.ZoneMapStore` is shared with the parallel scan
  manager (which consults it inline during scans) and surfaces its
  pruning counters here.

Everything is observation-only at this layer — the single mutating path
(auto index DDL) happens inside ``advisor.maybe_tick``, outside any
statement lock scope and under the engine's exclusive lock.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..optimizer import plans
from .advisor import IndexAdvisor, predicate_kind
from .fingerprint import FingerprintRegistry, fingerprint_statement
from .zonemap import ZoneMapStore


def _statement_label(statement) -> str:
    name = type(statement).__name__
    if name.endswith("Statement"):
        name = name[: -len("Statement")]
    return name.upper()


class ObservationPlane:
    def __init__(
        self,
        fingerprint_capacity: int = 512,
        zone_rows: int = 4096,
        advisor: Optional[IndexAdvisor] = None,
    ):
        self.fingerprints = FingerprintRegistry(capacity=fingerprint_capacity)
        self.zone_maps = ZoneMapStore(zone_rows=zone_rows)
        self.advisor = advisor if advisor is not None else IndexAdvisor()

    # ------------------------------------------------------------------
    # Statement intake
    # ------------------------------------------------------------------
    def record_statement(
        self,
        statement,
        result,
        latency: float,
        lock_wait: float = 0.0,
        error: bool = False,
    ) -> None:
        """Record one executed (or failed) statement. Called with no
        engine locks held; ``result`` is None when execution failed."""
        key, text = fingerprint_statement(statement)
        if error or result is None:
            self.fingerprints.record(
                key,
                text,
                _statement_label(statement),
                latency=latency,
                lock_wait=lock_wait,
                error=True,
            )
            return
        rows_out = result.row_count
        rows_in = 0
        staleness = None
        collections = 0
        plan_cache_hit = False
        report = result.jits_report
        if report is not None:
            plan_cache_hit = bool(getattr(report, "plan_cache_hit", False))
            decisions = getattr(report, "decisions", None) or {}
            scores = [d.s2 for d in decisions.values()]
            if scores:
                staleness = max(scores)
            collections = len(report.tables_collected)
        if result.plan is not None:
            rows_in = self._mine_plan(result.plan)
        self.fingerprints.record(
            key,
            text,
            result.statement_type or _statement_label(statement),
            latency=latency,
            lock_wait=lock_wait,
            rows_out=rows_out,
            rows_in=rows_in,
            staleness=staleness,
            plan_cache_hit=plan_cache_hit,
            reopt_switches=len(result.reopt_events or ()),
            collections=collections,
        )

    def _mine_plan(self, plan) -> int:
        """Predicate heat for the advisor + total base rows read."""
        rows_in = 0
        for node in plan.walk():
            if isinstance(node, plans.SeqScan):
                base = float(
                    node.actual_base_rows
                    if node.actual_base_rows is not None
                    else node.base_rows
                )
                matched = float(node.actual_rows or 0)
                rows_in += int(base)
                for pred in node.predicates:
                    kind = predicate_kind(pred.op)
                    if kind is not None:
                        self.advisor.note_scan(
                            node.table_name, pred.column, kind, base, matched
                        )
            elif isinstance(node, plans.IndexScan):
                base = float(
                    node.actual_base_rows
                    if node.actual_base_rows is not None
                    else node.base_rows
                )
                rows_in += int(node.actual_rows or 0)
                self.advisor.note_index_use(
                    node.table_name,
                    node.index_column,
                    node.index_kind,
                    base,
                )
            elif isinstance(node, plans.IndexNLJoin):
                self.advisor.note_index_use(
                    node.inner_table,
                    node.inner_index_column,
                    "hash",
                    float(node.actual_probes or 0),
                )
        return rows_in

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def maybe_tick(self, engine) -> None:
        self.advisor.maybe_tick(engine)

    def release_table(self, table_name: str) -> None:
        self.zone_maps.release(table_name)
        self.advisor.release_table(table_name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def fingerprint_top(
        self, limit: int = 20, sort_by: str = "total_ms", offset: int = 0
    ):
        return self.fingerprints.top(limit=limit, sort_by=sort_by, offset=offset)

    def snapshot(self) -> Dict[str, object]:
        return {
            "fingerprints": self.fingerprints.summary(),
            "zone_maps": self.zone_maps.stats(),
            "advisor": self.advisor.snapshot(),
        }
