"""Statement fingerprints: literal-free normal forms plus a registry.

A *fingerprint* is a stable key for "the same statement up to its
constants": every :class:`~repro.sql.ast.Literal` is replaced with a
``?`` placeholder and IN-lists collapse to a single ``(?)`` marker, so
``WHERE tenant_id = 7`` and ``WHERE tenant_id = 2048`` — or an IN-list
of 3 values and one of 300 — aggregate under one key. The normal form
is rendered from the parsed AST (never from the raw SQL text), so
whitespace, literal spelling and keyword case differences all collapse
too.

The :class:`FingerprintRegistry` aggregates per-fingerprint execution
counters under one lock: exec count, rows in/out, p50/p95 latency via a
streaming P² quantile sketch (fixed memory, no sample buffers), lock
wait, statistics staleness observed at compile time, plan-cache/reopt
hits. It is bounded: beyond ``capacity`` fingerprints, the coldest
entries (fewest executions) are evicted and counted.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Optional, Tuple

from ..sql import ast

#: Sort keys accepted by :meth:`FingerprintRegistry.top`.
SORT_KEYS = (
    "executions",
    "total_ms",
    "p50_ms",
    "p95_ms",
    "rows_out",
    "rows_in",
    "lock_wait_ms",
    "staleness",
    "errors",
)


# ----------------------------------------------------------------------
# AST normalization
# ----------------------------------------------------------------------
def _expr(node: Optional[ast.Expr]) -> str:
    if node is None:
        return "*"
    if isinstance(node, ast.Literal):
        return "?"
    if isinstance(node, ast.ColumnRef):
        if node.qualifier:
            return f"{node.qualifier.lower()}.{node.name.lower()}"
        return node.name.lower()
    if isinstance(node, ast.BinaryArith):
        return f"({_expr(node.left)} {node.op} {_expr(node.right)})"
    if isinstance(node, ast.UnaryArith):
        return f"({node.op}{_expr(node.operand)})"
    if isinstance(node, ast.Aggregate):
        prefix = "DISTINCT " if node.distinct else ""
        return f"{node.func.value.upper()}({prefix}{_expr(node.argument)})"
    return type(node).__name__


def _bool(node: Optional[ast.BoolExpr]) -> str:
    if node is None:
        return ""
    if isinstance(node, ast.Comparison):
        return f"{_expr(node.left)} {node.op.value} {_expr(node.right)}"
    if isinstance(node, ast.BetweenExpr):
        word = "NOT BETWEEN" if node.negated else "BETWEEN"
        return f"{_expr(node.operand)} {word} ? AND ?"
    if isinstance(node, ast.InListExpr):
        # The whole point: IN-lists of any length are one shape.
        word = "NOT IN" if node.negated else "IN"
        return f"{_expr(node.operand)} {word} (?)"
    if isinstance(node, ast.AndExpr):
        return " AND ".join(f"({_bool(o)})" for o in node.operands)
    if isinstance(node, ast.OrExpr):
        return " OR ".join(f"({_bool(o)})" for o in node.operands)
    if isinstance(node, ast.NotExpr):
        return f"NOT ({_bool(node.operand)})"
    return type(node).__name__


def _from_item(item: ast.FromItem) -> str:
    if isinstance(item, ast.TableRef):
        name = item.name.lower()
        if item.alias and item.alias.lower() != name:
            return f"{name} {item.alias.lower()}"
        return name
    if isinstance(item, ast.DerivedTable):
        return f"({_select(item.select)}) {item.alias.lower()}"
    return type(item).__name__


def _select(node: ast.SelectStatement) -> str:
    parts: List[str] = ["SELECT"]
    if node.distinct:
        parts.append("DISTINCT")
    if node.star:
        parts.append("*")
    else:
        parts.append(
            ", ".join(
                _expr(item.expr)
                + (f" AS {item.alias.lower()}" if item.alias else "")
                for item in node.items
            )
        )
    parts.append("FROM " + ", ".join(_from_item(i) for i in node.from_items))
    if node.where is not None:
        parts.append("WHERE " + _bool(node.where))
    if node.group_by:
        parts.append("GROUP BY " + ", ".join(_expr(e) for e in node.group_by))
    if node.having is not None:
        parts.append("HAVING " + _bool(node.having))
    if node.order_by:
        parts.append(
            "ORDER BY "
            + ", ".join(
                _expr(o.expr) + (" DESC" if o.descending else "")
                for o in node.order_by
            )
        )
    if node.limit is not None:
        parts.append("LIMIT ?")
    return " ".join(parts)


def normalize_statement(statement: ast.Statement) -> str:
    """The literal-free normal form of one parsed statement."""
    if isinstance(statement, ast.SelectStatement):
        return _select(statement)
    if isinstance(statement, ast.InsertStatement):
        columns = (
            " (" + ", ".join(c.lower() for c in statement.columns) + ")"
            if statement.columns is not None
            else ""
        )
        # Multi-row inserts collapse to one shape regardless of row count.
        return f"INSERT INTO {statement.table.lower()}{columns} VALUES (?)"
    if isinstance(statement, ast.UpdateStatement):
        sets = ", ".join(
            f"{column.lower()} = {_expr(expr)}"
            for column, expr in statement.assignments
        )
        where = (
            f" WHERE {_bool(statement.where)}"
            if statement.where is not None
            else ""
        )
        return f"UPDATE {statement.table.lower()} SET {sets}{where}"
    if isinstance(statement, ast.DeleteStatement):
        where = (
            f" WHERE {_bool(statement.where)}"
            if statement.where is not None
            else ""
        )
        return f"DELETE FROM {statement.table.lower()}{where}"
    if isinstance(statement, ast.CreateTableStatement):
        return f"CREATE TABLE {statement.table.lower()}"
    if isinstance(statement, ast.DropTableStatement):
        return f"DROP TABLE {statement.table.lower()}"
    if isinstance(statement, ast.CreateIndexStatement):
        return (
            f"CREATE {statement.kind.upper()} INDEX ON "
            f"{statement.table.lower()} ({statement.column.lower()})"
        )
    return type(statement).__name__


def fingerprint_statement(statement: ast.Statement) -> Tuple[str, str]:
    """``(key, normal_form)`` for one parsed statement.

    The key is a short stable digest of the normal form — the identifier
    used on the wire and in the registry.
    """
    text = normalize_statement(statement)
    key = hashlib.blake2b(text.encode("utf-8"), digest_size=8).hexdigest()
    return key, text


# ----------------------------------------------------------------------
# Streaming quantiles (P² algorithm, Jain & Chlamtac 1985)
# ----------------------------------------------------------------------
class P2Quantile:
    """One streaming quantile estimate in O(1) memory.

    Five markers track the running min/max, the target quantile and its
    two flanking quantiles; marker heights move by parabolic (falling
    back to linear) interpolation as observations arrive. Exact below 5
    observations, an estimate afterwards — the shape the fingerprint
    registry needs (thousands of fingerprints, fixed memory each).
    """

    __slots__ = ("q", "count", "_heights", "_pos", "_desired", "_incr")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._incr = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        h = self._heights
        if self.count <= 5:
            h.append(x)
            if self.count == 5:
                h.sort()
            return
        pos = self._pos
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 3
            for i in range(1, 5):
                if x < h[i]:
                    k = i - 1
                    break
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._incr[i]
        for i in (1, 2, 3):
            diff = self._desired[i] - pos[i]
            if (diff >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                diff <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                d = 1.0 if diff >= 0.0 else -1.0
                candidate = self._parabolic(i, d)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, d)
                h[i] = candidate
                pos[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d)
            * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d)
            * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            ordered = sorted(self._heights)
            rank = self.q * (len(ordered) - 1)
            return ordered[int(round(rank))]
        return self._heights[2]


# ----------------------------------------------------------------------
# Per-fingerprint aggregates
# ----------------------------------------------------------------------
class StatementStats:
    """Aggregated execution counters for one fingerprint."""

    __slots__ = (
        "key",
        "text",
        "statement_type",
        "executions",
        "errors",
        "rows_out",
        "rows_in",
        "latency_total",
        "latency_p50",
        "latency_p95",
        "lock_wait_total",
        "staleness_last",
        "staleness_max",
        "plan_cache_hits",
        "reopt_switches",
        "collections",
    )

    def __init__(self, key: str, text: str, statement_type: str):
        self.key = key
        self.text = text
        self.statement_type = statement_type
        self.executions = 0
        self.errors = 0
        self.rows_out = 0
        self.rows_in = 0
        self.latency_total = 0.0
        self.latency_p50 = P2Quantile(0.50)
        self.latency_p95 = P2Quantile(0.95)
        self.lock_wait_total = 0.0
        self.staleness_last = 0.0
        self.staleness_max = 0.0
        self.plan_cache_hits = 0
        self.reopt_switches = 0
        self.collections = 0

    def snapshot(self, text_limit: int = 512) -> Dict[str, object]:
        """A JSON-serializable view (the wire/REPL row)."""
        text = self.text
        if len(text) > text_limit:
            text = text[: text_limit - 3] + "..."
        return {
            "key": self.key,
            "statement": text,
            "type": self.statement_type,
            "executions": self.executions,
            "errors": self.errors,
            "rows_out": self.rows_out,
            "rows_in": self.rows_in,
            "total_ms": round(self.latency_total * 1000.0, 3),
            "p50_ms": round(self.latency_p50.value() * 1000.0, 3),
            "p95_ms": round(self.latency_p95.value() * 1000.0, 3),
            "lock_wait_ms": round(self.lock_wait_total * 1000.0, 3),
            "staleness": round(self.staleness_last, 4),
            "staleness_max": round(self.staleness_max, 4),
            "plan_cache_hits": self.plan_cache_hits,
            "reopt_switches": self.reopt_switches,
            "collections": self.collections,
        }


def _sort_value(snapshot: Dict[str, object], sort_by: str):
    return snapshot.get(sort_by, 0)


class FingerprintRegistry:
    """Thread-safe, bounded map of fingerprint key -> aggregates."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._stats: Dict[str, StatementStats] = {}
        self.recorded = 0
        self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

    def record(
        self,
        key: str,
        text: str,
        statement_type: str,
        latency: float,
        lock_wait: float = 0.0,
        rows_out: int = 0,
        rows_in: int = 0,
        staleness: Optional[float] = None,
        plan_cache_hit: bool = False,
        reopt_switches: int = 0,
        collections: int = 0,
        error: bool = False,
    ) -> None:
        with self._lock:
            stats = self._stats.get(key)
            if stats is None:
                if len(self._stats) >= self.capacity:
                    self._evict_locked()
                stats = StatementStats(key, text, statement_type)
                self._stats[key] = stats
            self.recorded += 1
            stats.executions += 1
            stats.latency_total += latency
            stats.latency_p50.add(latency)
            stats.latency_p95.add(latency)
            stats.lock_wait_total += lock_wait
            if error:
                stats.errors += 1
                return
            stats.rows_out += int(rows_out)
            stats.rows_in += int(rows_in)
            if staleness is not None:
                stats.staleness_last = float(staleness)
                stats.staleness_max = max(
                    stats.staleness_max, float(staleness)
                )
            if plan_cache_hit:
                stats.plan_cache_hits += 1
            stats.reopt_switches += int(reopt_switches)
            stats.collections += int(collections)

    def _evict_locked(self) -> None:
        """Drop the coldest ~1/8 of entries (fewest executions)."""
        victims = sorted(
            self._stats.values(), key=lambda s: (s.executions, s.key)
        )[: max(1, self.capacity // 8)]
        for stats in victims:
            del self._stats[stats.key]
            self.evicted += 1

    def top(
        self,
        limit: int = 20,
        sort_by: str = "total_ms",
        offset: int = 0,
    ) -> List[Dict[str, object]]:
        """The top fingerprints by one sortable metric (see SORT_KEYS)."""
        if sort_by not in SORT_KEYS:
            raise ValueError(
                f"sort key must be one of {', '.join(SORT_KEYS)}; "
                f"got {sort_by!r}"
            )
        with self._lock:
            snapshots = [s.snapshot() for s in self._stats.values()]
        snapshots.sort(
            key=lambda s: (_sort_value(s, sort_by), s["key"]), reverse=True
        )
        offset = max(0, int(offset))
        limit = max(0, int(limit))
        return snapshots[offset : offset + limit]

    def get(self, key: str) -> Optional[Dict[str, object]]:
        with self._lock:
            stats = self._stats.get(key)
            return None if stats is None else stats.snapshot()

    def summary(self) -> Dict[str, object]:
        with self._lock:
            return {
                "fingerprints": len(self._stats),
                "capacity": self.capacity,
                "recorded": self.recorded,
                "evicted": self.evicted,
            }
