"""JIT index advisor: ``ShouldCollectStats`` pointed at indexes.

The paper's collection trigger scores each table with two signals —
``s1`` (how wrong statistics have been) and ``s2`` (how much the data
changed) — and collects when ``(s1 + s2) / 2`` crosses ``s_max``. The
advisor reuses that exact shape for secondary indexes, per
``(table, column, predicate-kind)`` heat cell:

* ``s1`` — **benefit**: the fraction of scanned base rows the predicate
  filtered away (EWMA). A predicate that keeps 1% of rows would let an
  index skip 99% of the scan; one that keeps everything gains nothing.
* ``s2`` — **frequency**: the fraction of the statement window that
  probed this cell (capped at 1). Cold predicates never justify index
  maintenance no matter how selective they are.

``score = (s1 + s2) / 2`` is blended across ticks (EWMA), which gives
hysteresis for free: one hot statement cannot trigger a create, and one
quiet window cannot trigger a drop. Creates fire at ``threshold``,
auto-drops only below the (lower) ``drop_threshold``, only for indexes
the advisor itself created, and only up to ``budget`` live auto-indexes.
Every decision lands in a bounded audit trail.

``mode='advise'`` runs the full scoring loop and audit but performs no
DDL — the dry-run the DBA reads before trusting ``'auto'``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..predicates.predicate import PredOp
from ..types import DataType

#: Predicate kinds and the physical index shape that serves each.
KIND_EQ = "eq"  # EQ / IN -> HashIndex
KIND_RANGE = "range"  # LT / LE / GT / GE / BETWEEN -> SortedIndex

_INDEX_KIND = {KIND_EQ: "hash", KIND_RANGE: "sorted"}
_PRED_KIND = {
    PredOp.EQ: KIND_EQ,
    PredOp.IN: KIND_EQ,
    PredOp.LT: KIND_RANGE,
    PredOp.LE: KIND_RANGE,
    PredOp.GT: KIND_RANGE,
    PredOp.GE: KIND_RANGE,
    PredOp.BETWEEN: KIND_RANGE,
    # NE filters almost nothing an index could serve; no heat.
}

#: EWMA blend factor across ticks (same weight for history and window).
_ALPHA = 0.5

_AUDIT_LIMIT = 256


def predicate_kind(op: PredOp) -> Optional[str]:
    return _PRED_KIND.get(op)


class _HeatCell:
    """Window counters + blended score for one (table, column, kind)."""

    __slots__ = (
        "table",
        "column",
        "kind",
        "probes",
        "rows_base",
        "rows_avoided",
        "index_uses",
        "score",
        "s1",
        "s2",
    )

    def __init__(self, table: str, column: str, kind: str):
        self.table = table
        self.column = column
        self.kind = kind
        self.probes = 0
        self.rows_base = 0.0
        self.rows_avoided = 0.0
        self.index_uses = 0
        self.score = 0.0
        self.s1 = 0.0
        self.s2 = 0.0

    def fold_window(self, interval: int) -> None:
        """Blend this window's signals into the running score and reset
        the window counters. An untouched window decays the score."""
        if self.probes > 0:
            s1 = (
                self.rows_avoided / self.rows_base
                if self.rows_base > 0
                else 0.0
            )
            s2 = min(self.probes / max(1, interval), 1.0)
            window = (s1 + s2) / 2.0
            self.s1 = s1
            self.s2 = s2
        else:
            window = 0.0
            self.s1 = 0.0
            self.s2 = 0.0
        self.score = (1.0 - _ALPHA) * self.score + _ALPHA * window
        self.probes = 0
        self.rows_base = 0.0
        self.rows_avoided = 0.0
        self.index_uses = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "table": self.table,
            "column": self.column,
            "kind": self.kind,
            "score": round(self.score, 4),
            "s1": round(self.s1, 4),
            "s2": round(self.s2, 4),
        }


class IndexAdvisor:
    """Predicate-heat scoring with auto create/drop under the LockManager.

    ``maybe_tick(engine)`` must be called *outside* any statement lock
    scope (the LockManager is not reentrant); the session layer calls it
    after releasing the statement's locks.
    """

    def __init__(
        self,
        mode: str = "off",
        interval: int = 32,
        threshold: float = 0.6,
        drop_threshold: float = 0.2,
        budget: int = 3,
    ):
        if mode not in ("off", "advise", "auto"):
            raise ValueError(
                f"auto_index mode must be off|advise|auto, got {mode!r}"
            )
        self.mode = mode
        self.interval = max(1, interval)
        self.threshold = threshold
        self.drop_threshold = drop_threshold
        self.budget = max(0, budget)
        self._lock = threading.Lock()
        self._tick_lock = threading.Lock()
        self._heat: Dict[Tuple[str, str, str], _HeatCell] = {}
        self._auto_created: Dict[Tuple[str, str, str], bool] = {}
        self._statements = 0
        self.ticks = 0
        self.created = 0
        self.dropped = 0
        self.advised = 0
        self.audit: deque = deque(maxlen=_AUDIT_LIMIT)

    # ------------------------------------------------------------------
    # Heat intake (called from the observation plane, no engine locks)
    # ------------------------------------------------------------------
    def note_scan(
        self,
        table: str,
        column: str,
        kind: str,
        base_rows: float,
        matched_rows: float,
    ) -> None:
        key = (table.lower(), column.lower(), kind)
        with self._lock:
            cell = self._heat.get(key)
            if cell is None:
                cell = self._heat[key] = _HeatCell(*key)
            cell.probes += 1
            cell.rows_base += max(0.0, float(base_rows))
            cell.rows_avoided += max(
                0.0, float(base_rows) - float(matched_rows)
            )

    def note_index_use(
        self, table: str, column: str, index_kind: str, base_rows: float
    ) -> None:
        """An IndexScan served this cell: full credit keeps the score hot
        so a used auto-index is never dropped for lack of SeqScan heat."""
        kind = KIND_EQ if index_kind == "hash" else KIND_RANGE
        key = (table.lower(), column.lower(), kind)
        with self._lock:
            cell = self._heat.get(key)
            if cell is None:
                cell = self._heat[key] = _HeatCell(*key)
            cell.probes += 1
            cell.index_uses += 1
            cell.rows_base += max(0.0, float(base_rows))
            cell.rows_avoided += max(0.0, float(base_rows))

    def release_table(self, table: str) -> None:
        """Forget a dropped table's heat and auto-index bookkeeping."""
        name = table.lower()
        with self._lock:
            for key in [k for k in self._heat if k[0] == name]:
                del self._heat[key]
            for key in [k for k in self._auto_created if k[0] == name]:
                del self._auto_created[key]

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def maybe_tick(self, engine) -> None:
        """Score the window every ``interval`` statements; apply (or, in
        advise mode, record) create/drop decisions."""
        if self.mode == "off":
            return
        with self._lock:
            self._statements += 1
            if self._statements < self.interval:
                return
            if not self._tick_lock.acquire(blocking=False):
                return  # another session is mid-tick; let it finish
            self._statements = 0
        try:
            self._tick(engine)
        finally:
            self._tick_lock.release()

    def _tick(self, engine) -> None:
        with self._lock:
            self.ticks += 1
            tick = self.ticks
            for cell in self._heat.values():
                cell.fold_window(self.interval)
            creates: List[_HeatCell] = []
            drops: List[_HeatCell] = []
            live = sum(1 for v in self._auto_created.values() if v)
            for key, cell in sorted(
                self._heat.items(), key=lambda kv: -kv[1].score
            ):
                if cell.score >= self.threshold and not self._auto_created.get(
                    key
                ):
                    if live + len(creates) < self.budget:
                        creates.append(cell)
                elif cell.score < self.drop_threshold and self._auto_created.get(
                    key
                ):
                    drops.append(cell)
        for cell in creates:
            self._apply_create(engine, cell, tick)
        for cell in drops:
            self._apply_drop(engine, cell, tick)

    def _eligible(self, engine, cell: _HeatCell) -> bool:
        database = engine.database
        if not database.has_table(cell.table):
            return False
        table = database.table(cell.table)
        try:
            dtype = table.schema.column(cell.column).dtype
        except Exception:
            return False
        if cell.kind == KIND_RANGE and dtype is DataType.STRING:
            # Dictionary codes do not follow string order; a sorted
            # index over codes would serve wrong ranges.
            return False
        indexes = database.indexes(cell.table)
        existing = (
            indexes.hash_on(cell.column)
            if cell.kind == KIND_EQ
            else indexes.sorted_on(cell.column)
        )
        return existing is None

    def _audit(self, action: str, cell: _HeatCell, tick: int) -> None:
        entry = {
            "tick": tick,
            "action": action,
            "table": cell.table,
            "column": cell.column,
            "index": _INDEX_KIND[cell.kind],
            "score": round(cell.score, 4),
            "s1": round(cell.s1, 4),
            "s2": round(cell.s2, 4),
        }
        with self._lock:
            self.audit.append(entry)

    def _apply_create(self, engine, cell: _HeatCell, tick: int) -> None:
        key = (cell.table, cell.column, cell.kind)
        if self.mode == "advise":
            if not self._eligible(engine, cell):
                return
            with self._lock:
                already = self._auto_created.get(key) is not None
                self._auto_created[key] = False  # advised, not created
            if not already:
                self.advised += 1
                self._audit("advise_create", cell, tick)
            return
        with engine.locks.exclusive():
            if not self._eligible(engine, cell):
                return
            if cell.kind == KIND_EQ:
                engine.database.create_hash_index(cell.table, cell.column)
            else:
                engine.database.create_sorted_index(cell.table, cell.column)
            if engine.plan_cache is not None:
                engine.plan_cache.clear()
        with self._lock:
            self._auto_created[key] = True
            self.created += 1
        self._audit("create", cell, tick)

    def _apply_drop(self, engine, cell: _HeatCell, tick: int) -> None:
        key = (cell.table, cell.column, cell.kind)
        if self.mode == "advise":
            with self._lock:
                if self._auto_created.pop(key, None) is None:
                    return
            self._audit("advise_drop", cell, tick)
            return
        kind = _INDEX_KIND[cell.kind]
        with engine.locks.exclusive():
            if not engine.database.has_table(cell.table):
                dropped = False
            else:
                dropped = engine.database.drop_index(
                    cell.table, kind, cell.column
                )
            if dropped and engine.plan_cache is not None:
                engine.plan_cache.clear()
        with self._lock:
            self._auto_created.pop(key, None)
        if dropped:
            self.dropped += 1
            self._audit("drop", cell, tick)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self, top: int = 10) -> Dict[str, object]:
        with self._lock:
            cells = sorted(
                self._heat.values(), key=lambda c: -c.score
            )[: max(0, top)]
            return {
                "mode": self.mode,
                "interval": self.interval,
                "threshold": self.threshold,
                "drop_threshold": self.drop_threshold,
                "budget": self.budget,
                "ticks": self.ticks,
                "created": self.created,
                "dropped": self.dropped,
                "advised": self.advised,
                "live_auto_indexes": sum(
                    1 for v in self._auto_created.values() if v
                ),
                "heat": [c.snapshot() for c in cells],
                "audit": list(self.audit),
            }
