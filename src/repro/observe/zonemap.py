"""Per-shard zone-map synopses for predicate-refuted shard skipping.

A *zone* is a fixed-size run of ``zone_rows`` consecutive rows. For each
column the synopsis keeps the per-zone min/max (over the physical array
the scan kernels see — numeric values, or dictionary codes for strings)
plus a small linear-counting NDV sketch. A scan's encoded predicates can
then *refute* zones — prove no row inside can match — and the parallel
manager shards only the surviving row ranges. Refutation is always
conservative: a zone is only dropped when the predicate is impossible
against its [min, max], so results stay byte-identical (property-tested
against the unpruned path).

Soundness under churn rests on the same discipline as the shared-memory
exports: a :class:`TableZoneMap` pins the table *object* (weakref) and
its mutation ``version``; any UDI bumps the version and the map is
rebuilt on next use, and a DROP+CREATE landing on the same name (or even
the same version number) fails the identity check. Dictionary-code
min/max stay sound for EQ/NE/IN because a value absent from [min, max]
in code space is absent from the zone, and range predicates on string
columns never reach the kernels (``encode_predicates`` returns None).
"""

from __future__ import annotations

import math
import threading
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Linear-counting sketch width (bits per zone per column).
NDV_BITS = 1024
NDV_WORDS = NDV_BITS // 64

DEFAULT_ZONE_ROWS = 4096

#: One column's built zones: (mins, maxs, bitmaps[(n_zones, NDV_WORDS)]).
ColumnZones = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: Pluggable sharded builder: (table, columns, zone_rows) -> per-column
#: zones, or None to decline (the store then builds in-process).
Builder = Callable[[object, Sequence[str], int], Optional[Dict[str, ColumnZones]]]


def _ndv_buckets(data: np.ndarray) -> np.ndarray:
    """Sketch bucket per value — the ``partition_codes`` canonicalization
    (float64 bit pattern, +0.0 kills the signed zero) and splitmix-style
    mixer, reduced mod :data:`NDV_BITS`."""
    as_float = np.asarray(data).astype(np.float64) + 0.0
    bits = as_float.view(np.uint64).copy()
    bits ^= bits >> np.uint64(33)
    bits *= np.uint64(0xFF51AFD7ED558CCD)  # wraps mod 2**64 by design
    bits ^= bits >> np.uint64(33)
    return (bits % np.uint64(NDV_BITS)).astype(np.int64)


def build_column_zones(data: np.ndarray, zone_rows: int) -> ColumnZones:
    """Zone min/max/ndv-sketch for one physical column array."""
    n = len(data)
    starts = np.arange(0, n, zone_rows)
    mins = np.minimum.reduceat(data, starts).astype(np.float64)
    maxs = np.maximum.reduceat(data, starts).astype(np.float64)
    if np.asarray(data).dtype.kind in "iu":
        # int64 -> float64 rounds above 2**53; widen one ULP outward so
        # the float bounds still enclose every true value (refutation
        # must stay conservative). Float data converts exactly.
        mins = np.nextafter(mins, -np.inf)
        maxs = np.nextafter(maxs, np.inf)
    buckets = _ndv_buckets(data)
    n_zones = len(starts)
    bitmaps = np.zeros((n_zones, NDV_WORDS), dtype=np.uint64)
    one = np.uint64(1)
    for z in range(n_zones):
        hit = np.unique(buckets[z * zone_rows : (z + 1) * zone_rows])
        np.bitwise_or.at(
            bitmaps[z], hit >> 6, one << (hit & 63).astype(np.uint64)
        )
    return mins, maxs, bitmaps


def ndv_from_bitmap(bitmap: np.ndarray) -> float:
    """Linear-counting estimate from an OR-combined sketch bitmap."""
    set_bits = int(np.unpackbits(bitmap.view(np.uint8)).sum())
    zeros = NDV_BITS - set_bits
    if zeros <= 0:
        return float(NDV_BITS)  # saturated: a lower bound
    return -NDV_BITS * math.log(zeros / NDV_BITS)


def refuted_zones(
    mins: np.ndarray, maxs: np.ndarray, pred
) -> Optional[np.ndarray]:
    """Boolean mask of zones the predicate proves empty, or None when the
    op never refutes. ``pred`` is a kernel-level ``PhysPredicate``."""
    op = pred.op
    n_zones = len(mins)
    if op in ("EQ", "IN"):
        if pred.empty:
            return np.ones(n_zones, dtype=bool)
        keep = np.zeros(n_zones, dtype=bool)
        for value in pred.values:
            keep |= (mins <= value) & (value <= maxs)
        return ~keep
    if op == "NE":
        if pred.empty:
            return None  # tautological: refutes nothing
        value = pred.values[0]
        return (mins == value) & (maxs == value)
    lo = pred.values[0]
    if op == "BETWEEN":
        hi = pred.values[1]
        return (maxs < lo) | (mins > hi)
    if op == "LT":
        return mins >= lo
    if op == "LE":
        return mins > lo
    if op == "GT":
        return maxs <= lo
    if op == "GE":
        return maxs < lo
    return None


class TableZoneMap:
    """Zone synopses for one pinned (table object, version) pair."""

    __slots__ = ("_table_ref", "version", "n_rows", "zone_rows", "columns")

    def __init__(self, table, zone_rows: int):
        # Under MVCC, scans hand us a TableSnapshot; the pin must be the
        # underlying live Table (its ``storage_identity``) so a map built
        # from one generation validates against the live table and every
        # later pinned generation at the same epoch.
        self._table_ref = weakref.ref(getattr(table, "storage_identity", table))
        self.version = table.version
        self.n_rows = table.row_count
        self.zone_rows = zone_rows
        self.columns: Dict[str, ColumnZones] = {}

    def valid_for(self, table) -> bool:
        """Same table *object*, same mutation epoch, same extent — the
        identity check that survives DROP+CREATE epoch-number reuse."""
        return (
            self._table_ref() is getattr(table, "storage_identity", table)
            and table.version == self.version
            and table.row_count == self.n_rows
        )

    @property
    def n_zones(self) -> int:
        return (self.n_rows + self.zone_rows - 1) // self.zone_rows

    def zone_range(self, zone: int) -> Tuple[int, int]:
        start = zone * self.zone_rows
        return start, min(start + self.zone_rows, self.n_rows)

    def ndv_estimate(self, column: str) -> Optional[float]:
        zones = self.columns.get(column.lower())
        if zones is None:
            return None
        combined = np.bitwise_or.reduce(zones[2], axis=0)
        return ndv_from_bitmap(combined)


class ZoneMapStore:
    """Engine-wide synopsis cache with pruning counters.

    Maps are built lazily, per column, on the first predicated scan that
    asks (and eagerly during RUNSTATS via :meth:`build`). ``builder``,
    when set, shards the build across the worker pool; the store falls
    back to an in-process build when it declines or is absent.
    """

    def __init__(
        self,
        zone_rows: int = DEFAULT_ZONE_ROWS,
        builder: Optional[Builder] = None,
    ):
        if zone_rows < 1:
            raise ValueError(f"zone_rows must be >= 1, got {zone_rows}")
        self.zone_rows = zone_rows
        self.builder = builder
        self._lock = threading.Lock()
        self._maps: Dict[str, TableZoneMap] = {}
        self.builds = 0
        self.column_builds = 0
        self.invalidations = 0
        self.scans_considered = 0
        self.scans_pruned = 0
        self.zones_considered = 0
        self.zones_skipped = 0
        self.rows_skipped = 0

    # ------------------------------------------------------------------
    # Build / lifecycle
    # ------------------------------------------------------------------
    def _map_for_locked(self, table) -> TableZoneMap:
        key = table.name.lower()
        zmap = self._maps.get(key)
        if zmap is not None and not zmap.valid_for(table):
            self.invalidations += 1
            zmap = None
        if zmap is None:
            zmap = TableZoneMap(table, self.zone_rows)
            self._maps[key] = zmap
            self.builds += 1
        return zmap

    def ensure(self, table, columns: Sequence[str]) -> Optional[TableZoneMap]:
        """The table's zone map with the given columns built; None for an
        empty table. Caller must hold at least a read lock on the table
        (every scan/RUNSTATS call site already does)."""
        if table.row_count <= 0:
            return None
        wanted = [c.lower() for c in columns]
        with self._lock:
            zmap = self._map_for_locked(table)
            missing = [c for c in wanted if c not in zmap.columns]
            if not missing:
                return zmap
            built: Optional[Dict[str, ColumnZones]] = None
            if self.builder is not None:
                built = self.builder(table, missing, self.zone_rows)
            if built is None:
                built = {
                    c: build_column_zones(table.column_data(c), self.zone_rows)
                    for c in missing
                }
            zmap.columns.update(built)
            self.column_builds += len(missing)
            return zmap

    def build(self, table, columns: Optional[Sequence[str]] = None) -> None:
        """Eagerly build zones for ``columns`` (default: every column) —
        the RUNSTATS hook."""
        if columns is None:
            columns = table.schema.column_names()
        self.ensure(table, columns)

    def get_valid(self, table) -> Optional[TableZoneMap]:
        """The table's current map if it is still pinned-valid, else None
        (no build, no invalidation side effects)."""
        with self._lock:
            zmap = self._maps.get(table.name.lower())
            if zmap is not None and zmap.valid_for(table):
                return zmap
            return None

    def release(self, table_name: str) -> None:
        """Forget a dropped table's synopses."""
        with self._lock:
            self._maps.pop(table_name.lower(), None)

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------
    def allowed_ranges(
        self, table, preds
    ) -> Optional[List[Tuple[int, int]]]:
        """Row ranges that survive refutation, in ascending order.

        Returns None when nothing is refuted (caller keeps its normal
        shard layout — including the adaptive profile path) and ``[]``
        when *every* zone is refuted. Consecutive surviving zones merge
        into one range, so the caller re-shards contiguous runs freely.
        """
        if not preds:
            return None
        zmap = self.ensure(table, [p.column for p in preds])
        if zmap is None:
            return None
        with self._lock:
            self.scans_considered += 1
        refuted = None
        for pred in preds:
            zones = zmap.columns.get(pred.column)
            if zones is None:
                continue
            mask = refuted_zones(zones[0], zones[1], pred)
            if mask is None:
                continue
            refuted = mask if refuted is None else (refuted | mask)
        if refuted is None or not refuted.any():
            return None
        n_zones = zmap.n_zones
        skipped = int(refuted.sum())
        starts = np.flatnonzero(refuted) * zmap.zone_rows
        stops = np.minimum(starts + zmap.zone_rows, zmap.n_rows)
        rows_gone = int((stops - starts).sum())
        with self._lock:
            self.scans_pruned += 1
            self.zones_considered += n_zones
            self.zones_skipped += skipped
            self.rows_skipped += rows_gone
        ranges: List[Tuple[int, int]] = []
        keep = ~refuted
        zone = 0
        while zone < n_zones:
            if not keep[zone]:
                zone += 1
                continue
            first = zone
            while zone < n_zones and keep[zone]:
                zone += 1
            ranges.append(
                (first * zmap.zone_rows, zmap.zone_range(zone - 1)[1])
            )
        return ranges

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def ndv_estimate(self, table, column: str) -> Optional[float]:
        zmap = self.get_valid(table)
        return None if zmap is None else zmap.ndv_estimate(column)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "tables": len(self._maps),
                "zone_rows": self.zone_rows,
                "builds": self.builds,
                "column_builds": self.column_builds,
                "invalidations": self.invalidations,
                "scans_considered": self.scans_considered,
                "scans_pruned": self.scans_pruned,
                "zones_considered": self.zones_considered,
                "zones_skipped": self.zones_skipped,
                "rows_skipped": self.rows_skipped,
            }
