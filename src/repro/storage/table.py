"""In-memory columnar table with UDI (update/delete/insert) accounting.

The UDI counter is the data-activity signal used by the JITS sensitivity
analysis (paper Section 3.3.1): the counter grows monotonically with every
modified row; statistics consumers snapshot it at collection time and later
compare ``table.udi_total`` against their snapshot.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import StorageError
from ..schema import TableSchema
from ..types import Value
from .column import Column
from .snapshot import (
    DEFAULT_CHUNK_ROWS,
    DEFAULT_SNAPSHOT_RETENTION,
    TableSnapshot,
)


class UDIShard:
    """A per-worker accumulator of UDI deltas.

    Concurrent sessions never write ``Table.udi_total`` directly: each
    session installs its shard for the duration of one statement (via
    :func:`udi_shard_scope`), the table mutators deposit their row deltas
    into it, and the session flushes the shard at the statement boundary
    while still holding the target table's write lock. Statistics readers
    therefore see UDI totals move in statement-atomic steps, never a
    half-applied statement.
    """

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        self._pending: Dict["Table", int] = {}

    def add(self, table: "Table", rows: int) -> None:
        self._pending[table] = self._pending.get(table, 0) + rows

    def pending_tables(self) -> List["Table"]:
        """Tables holding unflushed deltas — the statement's publish set
        (the session publishes their snapshots right after flushing)."""
        return list(self._pending.keys())

    def flush(self) -> int:
        """Apply all pending deltas; returns total rows flushed."""
        total = 0
        for table, rows in self._pending.items():
            table.apply_udi(rows)
            total += rows
        self._pending.clear()
        return total

    def __len__(self) -> int:
        return len(self._pending)


_shard_slot = threading.local()


def active_udi_shard() -> Optional[UDIShard]:
    """The shard installed for the current thread, if any."""
    return getattr(_shard_slot, "shard", None)


@contextmanager
def udi_shard_scope(shard: UDIShard):
    """Route this thread's UDI accounting through ``shard``.

    The caller is responsible for flushing the shard afterwards (the
    session layer does so at statement boundaries, under the write lock).
    """
    previous = getattr(_shard_slot, "shard", None)
    _shard_slot.shard = shard
    try:
        yield shard
    finally:
        _shard_slot.shard = previous


class Table:
    """A named collection of equal-length columns."""

    def __init__(
        self,
        schema: TableSchema,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        snapshot_retention: int = DEFAULT_SNAPSHOT_RETENTION,
    ):
        self.schema = schema
        self.chunk_rows = max(1, chunk_rows)
        self.snapshot_retention = max(1, snapshot_retention)
        self.columns: Dict[str, Column] = {
            c.name.lower(): Column(c.name, c.dtype, chunk_rows=self.chunk_rows)
            for c in schema.columns
        }
        # Monotone counters; never reset. ``version`` is the publication
        # epoch: it moves exactly when a new TableSnapshot publishes (at
        # the statement boundary for engine DML, per mutation for direct
        # API callers), never mid-statement — so caches keyed on it can
        # only ever see published generations.
        self.udi_total = 0  # rows touched by any INSERT/UPDATE/DELETE
        self.version = 0
        self._udi_lock = threading.Lock()
        # MVCC snapshot chain: the published generations, oldest first,
        # stamps non-decreasing. Guarded by _snap_lock (pin/unpin/publish
        # and retention trimming); _pending_mutations counts mutator calls
        # since the last publish.
        self._snap_lock = threading.Lock()
        self._pending_mutations = 0
        self._history: List[TableSnapshot] = []
        self._current: Optional[TableSnapshot] = None
        self.publish_snapshot(stamp=0)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def storage_identity(self) -> "Table":
        """Self — the common identity anchor with :class:`TableSnapshot`,
        so caches validate `presented.storage_identity` uniformly whether
        they were handed the live table or a pinned generation."""
        return self

    @property
    def row_count(self) -> int:
        first = next(iter(self.columns.values()))
        return len(first)

    def __len__(self) -> int:
        return self.row_count

    def column(self, name: str) -> Column:
        try:
            return self.columns[name.lower()]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column_data(self, name: str) -> np.ndarray:
        """Physical (encoded) values of a column as a numpy view."""
        return self.column(name).data

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert_row(self, values: Mapping[str, Value]) -> None:
        self.insert_rows([values])

    def insert_rows(self, rows: Sequence[Mapping[str, Value]]) -> None:
        """Insert dict-shaped rows; every column must be present."""
        if not rows:
            return
        names = self.schema.column_names()
        for row in rows:
            if len(row) != len(names):
                raise StorageError(
                    f"row has {len(row)} values, table {self.name!r} "
                    f"has {len(names)} columns"
                )
        for name in names:
            col = self.column(name)
            try:
                col.extend([_row_get(row, name) for row in rows])
            except KeyError:
                raise StorageError(
                    f"row is missing column {name!r} of table {self.name!r}"
                ) from None
        self._record_mutation(len(rows))

    def insert_columns(self, data: Mapping[str, Sequence[Value]]) -> None:
        """Bulk insert from column-oriented data (used by generators)."""
        names = {n.lower() for n in data}
        expected = {n.lower() for n in self.schema.column_names()}
        if names != expected:
            raise StorageError(
                f"column set mismatch for {self.name!r}: "
                f"got {sorted(names)}, expected {sorted(expected)}"
            )
        lengths = {len(v) for v in data.values()}
        if len(lengths) > 1:
            raise StorageError("insert_columns requires equal-length columns")
        n = lengths.pop() if lengths else 0
        if n == 0:
            return
        for name, values in data.items():
            col = self.column(name)
            if isinstance(values, np.ndarray) and col.dictionary is None:
                col.extend_physical(np.asarray(values))
            else:
                col.extend(list(values))
        self._record_mutation(n)

    def update_rows(self, rows: np.ndarray, assignments: Mapping[str, Value]) -> None:
        """Set ``column = value`` for each row position in ``rows``."""
        if len(rows) == 0:
            return
        for name, value in assignments.items():
            self.column(name).set_at(rows, value)
        self._record_mutation(len(rows))

    def apply_update(
        self, rows: np.ndarray, physical: Mapping[str, np.ndarray]
    ) -> None:
        """Set per-row *physical* values (used by UPDATE ... SET expr).

        Callers are responsible for encoding string values through the
        column's own dictionary; the engine's expression evaluator does.
        """
        if len(rows) == 0:
            return
        for name, values in physical.items():
            col = self.column(name)
            if len(values) != len(rows):
                raise StorageError("update value/row count mismatch")
            col.set_physical(rows, values)
        self._record_mutation(len(rows))

    def delete_rows(self, rows: np.ndarray) -> int:
        """Delete the given row positions; returns the number deleted."""
        n = self.row_count
        if len(rows) == 0:
            return 0
        keep = np.ones(n, dtype=bool)
        keep[rows] = False
        deleted = int(n - keep.sum())
        for col in self.columns.values():
            col.delete_rows(keep)
        self._record_mutation(deleted)
        return deleted

    # ------------------------------------------------------------------
    # Read helpers
    # ------------------------------------------------------------------
    def fetch_rows(
        self, rows: Optional[np.ndarray], columns: Iterable[str]
    ) -> List[tuple]:
        """Decode the requested rows/columns back to Python tuples."""
        decoded = [self.column(c).logical_values(rows) for c in columns]
        return list(zip(*decoded)) if decoded else []

    def udi_since(self, snapshot: int) -> int:
        """Rows modified since a ``udi_total`` snapshot."""
        return self.udi_total - snapshot

    # ------------------------------------------------------------------
    # UDI accounting
    # ------------------------------------------------------------------
    def _record_mutation(self, rows: int) -> None:
        """Account ``rows`` of UDI activity for the current statement.

        The version bump does NOT land here: it moved into
        :meth:`publish_snapshot`, so a statement that crashes mid-flight
        can never leave caches keyed to a version that was never
        published. With a session shard installed the UDI delta and the
        publish are both deferred to the statement boundary (the session
        flushes, then publishes, while still holding the table write
        lock); direct API callers — test fixtures, generators — publish
        immediately, preserving the historical bump-per-mutation
        semantics for code that never goes through a session.
        """
        self._pending_mutations += 1
        shard = active_udi_shard()
        if shard is not None:
            shard.add(self, rows)
        else:
            self.apply_udi(rows)
            self.publish_snapshot()

    def apply_udi(self, rows: int) -> None:
        """Fold a UDI delta into the monotone total."""
        with self._udi_lock:
            self.udi_total += rows

    # ------------------------------------------------------------------
    # MVCC snapshot chain
    # ------------------------------------------------------------------
    def publish_snapshot(self, stamp: Optional[int] = None) -> TableSnapshot:
        """Publish the current content as an immutable generation.

        No-op (returns the current snapshot) when nothing mutated since
        the last publish. ``stamp`` is the engine statement clock drawn
        at publish time; ``None`` (direct API callers without an engine)
        reuses the previous stamp, so setup-time bulk loads stay below
        every engine-issued clock value. Stamps are clamped monotone:
        DML on one table serializes on its write lock, so publish order
        is execution order, and the history stays sorted by stamp.
        """
        with self._snap_lock:
            current = self._current
            if current is not None and self._pending_mutations == 0:
                return current
            if current is not None:
                self.version += 1
            last_stamp = current.stamp if current is not None else 0
            if stamp is None:
                stamp = last_stamp
            stamp = max(stamp, last_stamp)
            snapshot = TableSnapshot(
                self,
                {name: col.snapshot() for name, col in self.columns.items()},
                version=self.version,
                stamp=stamp,
                udi_total=self.udi_total,
                row_count=self.row_count,
            )
            self._pending_mutations = 0
            self._history.append(snapshot)
            self._current = snapshot
            self._trim_locked()
            return snapshot

    def _trim_locked(self) -> None:
        """Drop the oldest unpinned generations beyond the retention
        window. Pinned generations (and the current one) are never
        dropped — the refcount is the GC soundness guarantee."""
        excess = len(self._history) - self.snapshot_retention
        if excess <= 0:
            return
        kept: List[TableSnapshot] = []
        for snap in self._history:
            if excess > 0 and snap.pins == 0 and snap is not self._current:
                excess -= 1
                continue
            kept.append(snap)
        self._history = kept

    @property
    def current_snapshot(self) -> TableSnapshot:
        with self._snap_lock:
            return self._current

    @property
    def snapshot_stamp(self) -> int:
        """Statement clock of the newest published generation."""
        with self._snap_lock:
            return self._current.stamp

    def snapshots(self) -> List[TableSnapshot]:
        """The retained generations, oldest first (introspection)."""
        with self._snap_lock:
            return list(self._history)

    def pin_current(self) -> TableSnapshot:
        """Pin the newest published generation (reader statement start)."""
        with self._snap_lock:
            snap = self._current
            snap.pins += 1
            return snap

    def pin_as_of(self, stamp: int) -> TableSnapshot:
        """Pin the newest generation published at or before ``stamp``.

        Raises :class:`StorageError` when the retention window no longer
        holds a generation that old (or ``stamp`` predates the table).
        """
        with self._snap_lock:
            for snap in reversed(self._history):
                if snap.stamp <= stamp:
                    snap.pins += 1
                    return snap
        raise StorageError(
            f"no snapshot of table {self.name!r} at or before statement "
            f"clock {stamp} is retained (retention window "
            f"{self.snapshot_retention})"
        )

    def unpin(self, snapshot: TableSnapshot) -> None:
        """Release one pin; an unpinned generation outside the retention
        window is dropped on the next publish."""
        with self._snap_lock:
            snapshot.pins = max(0, snapshot.pins - 1)


def _row_get(row: Mapping[str, Value], name: str) -> Value:
    """Case-insensitive dict access for row mappings."""
    if name in row:
        return row[name]
    lowered = name.lower()
    for key, value in row.items():
        if key.lower() == lowered:
            return value
    raise KeyError(name)
