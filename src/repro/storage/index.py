"""Secondary indexes over table columns.

Two physical shapes are provided:

* :class:`HashIndex` — equality lookups (``code -> row positions``).
* :class:`SortedIndex` — an ``argsort`` permutation supporting range scans
  via binary search.

Indexes rebuild lazily: each index remembers the table version it was built
against and rebuilds on first use after any mutation. That mirrors the cost
profile of real systems closely enough for the optimizer's purposes (index
maintenance is not what the paper measures).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .table import Table


class _LazyIndex:
    def __init__(self, table: Table, column: str):
        self.table = table
        self.column = column
        self._built_version = -1
        # Lazy rebuilds happen on first use after a mutation — which, for
        # SELECT scans, is the *reader* side of the engine's RW lock. The
        # build lock keeps two concurrent readers from interleaving a
        # rebuild; double-checked so the steady state stays lock-free.
        self._build_lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"{self.kind}_{self.table.name}_{self.column}".lower()

    kind = "index"

    def _ensure(self) -> None:
        version = self.table.column(self.column).version
        if self._built_version == version:
            return
        with self._build_lock:
            if self._built_version != version:
                self._build()
                self._built_version = version

    def _build(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class HashIndex(_LazyIndex):
    """Equality index: physical value -> array of row positions.

    Integer columns with a compact value range use a dense counting-sort
    layout (O(1) probes, O(n) build); anything else falls back to a
    Python dict of buckets.
    """

    kind = "hash"
    _DENSE_SPAN_FACTOR = 8
    _DENSE_SPAN_MIN = 1 << 16

    def __init__(self, table: Table, column: str):
        super().__init__(table, column)
        self._buckets: Dict[Union[int, float], np.ndarray] = {}
        self._dense = False
        self._dense_min = 0
        self._dense_span = 0
        self._starts = np.empty(0, dtype=np.int64)
        self._order = np.empty(0, dtype=np.int64)
        self._n_distinct = 0
        self._empty = np.empty(0, dtype=np.int64)

    def _build(self) -> None:
        data = self.table.column_data(self.column)
        if len(data) and np.issubdtype(data.dtype, np.integer):
            kmin = int(data.min())
            span = int(data.max()) - kmin + 1
            if span <= max(self._DENSE_SPAN_FACTOR * len(data), self._DENSE_SPAN_MIN):
                counts = np.bincount(data - kmin, minlength=span)
                self._starts = np.zeros(span + 1, dtype=np.int64)
                np.cumsum(counts, out=self._starts[1:])
                self._order = np.argsort(data - kmin, kind="stable")
                self._dense = True
                self._dense_min = kmin
                self._dense_span = span
                self._n_distinct = int((counts > 0).sum())
                self._buckets = {}
                return
        self._dense = False
        order = np.argsort(data, kind="stable")
        sorted_vals = data[order]
        boundaries = np.flatnonzero(np.diff(sorted_vals)) + 1
        starts = np.concatenate(([0], boundaries)) if len(data) else []
        ends = np.concatenate((boundaries, [len(sorted_vals)])) if len(data) else []
        # A stable argsort keeps equal keys in row order, so each slice is
        # already sorted by row position.
        self._buckets = {
            sorted_vals[s].item(): order[s:e] for s, e in zip(starts, ends)
        }
        self._n_distinct = len(self._buckets)

    def lookup(self, physical_value: Union[int, float]) -> np.ndarray:
        """Row positions whose column equals the physical value."""
        self._ensure()
        if self._dense:
            key = int(physical_value) - self._dense_min
            if key < 0 or key >= self._dense_span or physical_value != int(
                physical_value
            ):
                return self._empty
            return self._order[self._starts[key] : self._starts[key + 1]]
        rows = self._buckets.get(physical_value)
        if rows is None:
            return self._empty
        return rows

    def n_distinct(self) -> int:
        self._ensure()
        return self._n_distinct


class SortedIndex(_LazyIndex):
    """Order index supporting range lookups with binary search."""

    kind = "sorted"

    def __init__(self, table: Table, column: str):
        super().__init__(table, column)
        self._perm = np.empty(0, dtype=np.int64)
        self._sorted = np.empty(0)

    def _build(self) -> None:
        data = self.table.column_data(self.column)
        self._perm = np.argsort(data, kind="stable")
        self._sorted = data[self._perm]

    def range_lookup(
        self,
        low: Optional[float],
        high: Optional[float],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row positions with column value inside the given range."""
        self._ensure()
        lo = 0
        hi = len(self._sorted)
        if low is not None:
            side = "left" if low_inclusive else "right"
            lo = int(np.searchsorted(self._sorted, low, side=side))
        if high is not None:
            side = "right" if high_inclusive else "left"
            hi = int(np.searchsorted(self._sorted, high, side=side))
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        return np.sort(self._perm[lo:hi])


class IndexSet:
    """All indexes declared on one table, keyed by (kind, column)."""

    def __init__(self, table: Table):
        self.table = table
        self._indexes: Dict[Tuple[str, str], _LazyIndex] = {}

    def create_hash(self, column: str) -> HashIndex:
        key = ("hash", column.lower())
        if key not in self._indexes:
            self.table.column(column)  # validate column exists
            self._indexes[key] = HashIndex(self.table, column)
        return self._indexes[key]  # type: ignore[return-value]

    def create_sorted(self, column: str) -> SortedIndex:
        key = ("sorted", column.lower())
        if key not in self._indexes:
            self.table.column(column)
            self._indexes[key] = SortedIndex(self.table, column)
        return self._indexes[key]  # type: ignore[return-value]

    def drop(self, kind: str, column: str) -> bool:
        """Remove the (kind, column) index; True if one existed."""
        return self._indexes.pop((kind, column.lower()), None) is not None

    def hash_on(self, column: str) -> Optional[HashIndex]:
        return self._indexes.get(("hash", column.lower()))  # type: ignore[return-value]

    def sorted_on(self, column: str) -> Optional[SortedIndex]:
        return self._indexes.get(("sorted", column.lower()))  # type: ignore[return-value]

    def all(self):
        return list(self._indexes.values())

    def declared(self):
        """The (kind, column) keys currently declared — what a
        :class:`~repro.storage.snapshot.SnapshotIndexSet` mirrors."""
        return list(self._indexes.keys())
