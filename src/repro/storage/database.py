"""The database: a named set of tables plus their indexes.

This is the engine's physical root object. The system catalog
(:mod:`repro.catalog`) holds *statistics about* these tables; the database
holds the tables themselves.

The table dict is not internally synchronized: the engine's
:class:`~repro.engine.locks.LockManager` guarantees that structural
mutations (create/drop table, index builds) only run database-exclusive,
while per-table statements hold the database lock in shared mode — so a
statement's name lookups here never race a structural change.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Mapping, Optional

from ..errors import CatalogError
from ..schema import TableSchema
from .index import IndexSet
from .snapshot import (
    DEFAULT_CHUNK_ROWS,
    DEFAULT_SNAPSHOT_RETENTION,
    TableSnapshot,
)
from .table import Table


class Database:
    """Named tables and their index sets."""

    def __init__(
        self,
        name: str = "repro",
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        snapshot_retention: int = DEFAULT_SNAPSHOT_RETENTION,
    ):
        self.name = name
        self.chunk_rows = chunk_rows
        self.snapshot_retention = snapshot_retention
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, IndexSet] = {}
        # Per-thread MVCC read view: while installed, name lookups for
        # the pinned tables resolve to their TableSnapshot generation —
        # the executor, optimizer, JITS sampling and parallel manager all
        # go through table()/indexes(), so one view covers the whole read
        # pipeline without threading snapshots through every call.
        self._view = threading.local()

    def configure_snapshots(
        self,
        chunk_rows: Optional[int] = None,
        snapshot_retention: Optional[int] = None,
    ) -> None:
        """Engine-config wiring. ``chunk_rows`` applies to tables created
        from now on (a live column's COW bookkeeping is keyed to its
        chunking); ``snapshot_retention`` also retunes existing tables."""
        if chunk_rows is not None:
            self.chunk_rows = chunk_rows
        if snapshot_retention is not None:
            self.snapshot_retention = snapshot_retention
            for table in self._tables.values():
                table.snapshot_retention = max(1, snapshot_retention)

    @contextmanager
    def read_view(self, snapshots: Mapping[str, TableSnapshot]):
        """Resolve this thread's lookups of the given tables to the given
        pinned generations for the duration of the scope. Nestable (the
        previous view is restored); unlisted tables resolve live."""
        previous = getattr(self._view, "snapshots", None)
        self._view.snapshots = snapshots
        try:
            yield
        finally:
            self._view.snapshots = previous

    def _viewed(self, key: str) -> Optional[TableSnapshot]:
        view = getattr(self._view, "snapshots", None)
        if view is None:
            return None
        return view.get(key)

    def create_table(self, schema: TableSchema) -> Table:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(
            schema,
            chunk_rows=self.chunk_rows,
            snapshot_retention=self.snapshot_retention,
        )
        self._tables[key] = table
        self._indexes[key] = IndexSet(table)
        # Primary keys get a hash index automatically: that is what makes
        # PK-FK joins cheap, as in any real system.
        if schema.primary_key is not None:
            self._indexes[key].create_hash(schema.primary_key)
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        del self._indexes[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def live_table(self, name: str) -> Table:
        """The live table, ignoring any installed read view (the pinning
        code itself must see the mutable object, not a generation)."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def table(self, name: str):
        key = name.lower()
        viewed = self._viewed(key)
        if viewed is not None:
            return viewed
        try:
            return self._tables[key]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def indexes(self, name: str):
        key = name.lower()
        viewed = self._viewed(key)
        if viewed is not None:
            live = self._indexes.get(key)
            return viewed.index_view(live.declared() if live is not None else ())
        try:
            return self._indexes[key]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def table_names(self) -> List[str]:
        return [t.schema.name for t in self._tables.values()]

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def total_rows(self) -> int:
        return sum(t.row_count for t in self._tables.values())

    def find_index_for_equality(self, table: str, column: str):
        """Hash index on (table, column) if one exists."""
        return self.indexes(table).hash_on(column)

    def find_index_for_range(self, table: str, column: str):
        """Sorted index on (table, column) if one exists."""
        return self.indexes(table).sorted_on(column)

    def create_hash_index(self, table: str, column: str):
        return self.indexes(table).create_hash(column)

    def create_sorted_index(self, table: str, column: str):
        return self.indexes(table).create_sorted(column)

    def drop_index(self, table: str, kind: str, column: str) -> bool:
        """Remove one (kind, column) index; True if it existed."""
        return self.indexes(table).drop(kind, column)
