"""The database: a named set of tables plus their indexes.

This is the engine's physical root object. The system catalog
(:mod:`repro.catalog`) holds *statistics about* these tables; the database
holds the tables themselves.

The table dict is not internally synchronized: the engine's
:class:`~repro.engine.locks.LockManager` guarantees that structural
mutations (create/drop table, index builds) only run database-exclusive,
while per-table statements hold the database lock in shared mode — so a
statement's name lookups here never race a structural change.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import CatalogError
from ..schema import TableSchema
from .index import IndexSet
from .table import Table


class Database:
    """Named tables and their index sets."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, IndexSet] = {}

    def create_table(self, schema: TableSchema) -> Table:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        self._indexes[key] = IndexSet(table)
        # Primary keys get a hash index automatically: that is what makes
        # PK-FK joins cheap, as in any real system.
        if schema.primary_key is not None:
            self._indexes[key].create_hash(schema.primary_key)
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        del self._indexes[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def indexes(self, name: str) -> IndexSet:
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def table_names(self) -> List[str]:
        return [t.schema.name for t in self._tables.values()]

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def total_rows(self) -> int:
        return sum(t.row_count for t in self._tables.values())

    def find_index_for_equality(self, table: str, column: str):
        """Hash index on (table, column) if one exists."""
        return self.indexes(table).hash_on(column)

    def find_index_for_range(self, table: str, column: str):
        """Sorted index on (table, column) if one exists."""
        return self.indexes(table).sorted_on(column)

    def create_hash_index(self, table: str, column: str):
        return self.indexes(table).create_hash(column)

    def create_sorted_index(self, table: str, column: str):
        return self.indexes(table).create_sorted(column)

    def drop_index(self, table: str, kind: str, column: str) -> bool:
        """Remove one (kind, column) index; True if it existed."""
        return self.indexes(table).drop(kind, column)
