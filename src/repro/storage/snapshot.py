"""MVCC column snapshots: immutable, epoch-stamped table versions.

This module extends the RCU pattern the statistics stores already use
(archive/history/catalog publish immutable snapshots; readers load one
epoch with a plain attribute read) to the data columns themselves:

* A :class:`ColumnSnapshot` is an immutable view of one column at one
  publication epoch. It is chunked: the column's physical array is cut
  into fixed-size runs of ``chunk_rows`` rows, and a writer publishing a
  new generation copies **only the chunks it touched** — untouched chunk
  arrays are shared *by object identity* across generations, so hot DML
  on a large table pays per-statement cost proportional to the rows it
  modified, not to the table size.
* A :class:`TableSnapshot` bundles one generation of every column plus
  the frozen ``row_count`` / ``udi_total`` / ``version`` (epoch) and the
  engine statement-clock ``stamp`` it was published at. It exposes the
  same read surface as a live :class:`~repro.storage.table.Table`
  (``column`` / ``column_data`` / ``fetch_rows`` / ``schema`` / ...), so
  the executor, optimizer, JITS sampling, predicate kernels, shared-
  memory exports and zone maps all run against it unchanged.
* :class:`SnapshotIndexSet` rebuilds declared secondary indexes lazily
  from the snapshot's immutable arrays. Index structures are cached on
  the :class:`ColumnSnapshot` itself, so a column untouched across ten
  generations builds its index once and every generation (and every
  concurrently pinned reader) shares it.

Readers *pin* a snapshot for the duration of one statement (see
``Table.pin_current`` / ``pin_as_of``); pinning is a refcount under the
table's snapshot lock, and the bounded retention window never trims a
pinned generation — ``AS OF`` time travel and mid-scan process workers
keep their arrays alive for exactly as long as they need them.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..errors import StorageError
from ..types import DataType, Value

#: Default copy-on-write chunk size (rows). 64Ki rows keeps a touched
#: int64/float64 chunk at 512 KiB — small enough that point DML is cheap,
#: large enough that full-column materialization is a handful of memcpys.
DEFAULT_CHUNK_ROWS = 1 << 16

#: Default bounded retention window: how many published generations a
#: table keeps reachable for ``AS OF`` before unpinned ones are GC'd.
DEFAULT_SNAPSHOT_RETENTION = 8


class ColumnSnapshot:
    """One immutable generation of one column.

    ``chunks`` is the ground truth (read-only numpy arrays; all but the
    last hold exactly ``chunk_rows`` values). ``data`` materializes a
    contiguous array lazily and caches it, so the first scan of a
    generation pays the concatenation and every later scan — including
    other reader threads pinning the same generation — reuses it.
    """

    __slots__ = (
        "name",
        "dtype",
        "dictionary",
        "chunks",
        "size",
        "version",
        "_np_dtype",
        "_data",
        "_hash_index",
        "_sorted_index",
    )

    def __init__(
        self,
        name: str,
        dtype: DataType,
        dictionary,
        chunks: List[np.ndarray],
        size: int,
        version: int,
        np_dtype: np.dtype,
    ):
        self.name = name
        self.dtype = dtype
        # Shared with the live column: string dictionaries are append-only
        # (codes never change meaning), so decode stays GIL-safe here.
        self.dictionary = dictionary
        self.chunks = chunks
        self.size = size
        # The live column's mutation version at publish time: identical
        # data across generations keeps an identical version, which is
        # what lets cached index structures carry over.
        self.version = version
        self._np_dtype = np_dtype
        self._data: Optional[np.ndarray] = None
        self._hash_index = None
        self._sorted_index = None

    def __len__(self) -> int:
        return self.size

    @property
    def data(self) -> np.ndarray:
        """Contiguous physical values; lazily materialized, then cached.

        A benign race between two readers materializing concurrently
        costs one redundant copy; the attribute store is atomic.
        """
        out = self._data
        if out is None:
            if not self.chunks:
                out = np.empty(0, dtype=self._np_dtype)
            elif len(self.chunks) == 1:
                out = self.chunks[0]
            else:
                out = np.concatenate(self.chunks)
            out.setflags(write=False)
            self._data = out
        return out

    # -- the read-side surface shared with Column ----------------------
    def lookup_value(self, value: Value) -> Union[int, float, None]:
        value = self.dtype.validate(value)
        if self.dictionary is not None:
            return self.dictionary.find_code(value)  # type: ignore[arg-type]
        return value  # type: ignore[return-value]

    def decode_value(self, physical: Union[int, float]) -> Value:
        if self.dictionary is not None:
            return self.dictionary.decode(int(physical))
        if self.dtype is DataType.INT:
            return int(physical)
        return float(physical)

    def logical_values(self, rows: Optional[np.ndarray] = None) -> List[Value]:
        phys = self.data if rows is None else self.data[rows]
        if self.dictionary is not None:
            return self.dictionary.decode_many(phys)
        if self.dtype is DataType.INT:
            return [int(v) for v in phys]
        return [float(v) for v in phys]


class _ColumnTableAdapter:
    """Minimal table-like shim so the lazy index classes can build over a
    single frozen :class:`ColumnSnapshot` without referencing any table
    generation (which would chain generations alive through the index
    cache)."""

    __slots__ = ("name", "_column")

    def __init__(self, table_name: str, column: ColumnSnapshot):
        self.name = table_name
        self._column = column

    def column(self, _name: str) -> ColumnSnapshot:
        return self._column

    def column_data(self, _name: str) -> np.ndarray:
        return self._column.data


class SnapshotIndexSet:
    """Read-only index set over one :class:`TableSnapshot`.

    Mirrors the lookup surface of :class:`~repro.storage.index.IndexSet`
    (``hash_on`` / ``sorted_on`` / ``all``). Declared (kind, column)
    pairs are captured from the live set on first access; the physical
    structures build lazily from the snapshot's immutable arrays and are
    cached on the column snapshots, so they are shared across every
    generation whose column is byte-identical (same object).
    """

    def __init__(self, snapshot: "TableSnapshot", declared: Iterable[Tuple[str, str]]):
        self._snapshot = snapshot
        self._declared = frozenset(
            (kind, column.lower()) for kind, column in declared
        )

    def declared(self) -> frozenset:
        return self._declared

    def hash_on(self, column: str):
        return self._get("hash", column.lower())

    def sorted_on(self, column: str):
        return self._get("sorted", column.lower())

    def all(self) -> List[object]:
        return [self._get(kind, column) for kind, column in self._declared]

    def drop(self, kind: str, column: str) -> bool:  # pragma: no cover
        raise StorageError("snapshot index sets are read-only")

    create_hash = create_sorted = drop

    def _get(self, kind: str, column: str):
        if (kind, column) not in self._declared:
            return None
        col = self._snapshot.column(column)
        slot = "_hash_index" if kind == "hash" else "_sorted_index"
        index = getattr(col, slot)
        if index is None:
            # Imported here: index.py imports table.py imports this module.
            from .index import HashIndex, SortedIndex

            adapter = _ColumnTableAdapter(self._snapshot.name, col)
            cls = HashIndex if kind == "hash" else SortedIndex
            index = cls(adapter, column)
            # Benign race: two readers may build twice; last store wins
            # and both structures answer identically.
            setattr(col, slot, index)
        return index


class TableSnapshot:
    """One immutable published generation of a table.

    Presents the live table's read surface, so every consumer that does
    ``database.table(name)`` under a read view transparently operates on
    the pinned generation. ``version`` is the publication epoch (the
    table's ``version`` counter at publish), ``stamp`` the engine
    statement clock drawn at publish time — ``AS OF <clock>`` resolves
    against stamps.
    """

    def __init__(
        self,
        source,
        columns: Dict[str, ColumnSnapshot],
        version: int,
        stamp: int,
        udi_total: int,
        row_count: int,
    ):
        self._source = source  # the live Table (storage identity)
        self.schema = source.schema
        self.columns = columns
        self.version = version
        self.stamp = stamp
        self.udi_total = udi_total
        self._row_count = row_count
        # Pin refcount; guarded by the source table's snapshot lock.
        self.pins = 0
        self._indexes: Optional[SnapshotIndexSet] = None
        self._index_lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        return self._row_count

    def __len__(self) -> int:
        return self._row_count

    @property
    def storage_identity(self):
        """The live :class:`Table` this generation belongs to. Caches
        (zone maps, exports) key on it so a DROP+CREATE under the same
        name never validates against the old table's synopses."""
        return self._source

    @property
    def chunk_rows(self) -> int:
        return self._source.chunk_rows

    def column(self, name: str) -> ColumnSnapshot:
        try:
            return self.columns[name.lower()]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column_data(self, name: str) -> np.ndarray:
        return self.column(name).data

    def fetch_rows(
        self, rows: Optional[np.ndarray], columns: Iterable[str]
    ) -> List[tuple]:
        decoded = [self.column(c).logical_values(rows) for c in columns]
        return list(zip(*decoded)) if decoded else []

    def udi_since(self, snapshot: int) -> int:
        return self.udi_total - snapshot

    def index_view(self, declared: Iterable[Tuple[str, str]]) -> SnapshotIndexSet:
        """The snapshot's lazy index set; built once, then cached (so a
        table dropped while this generation stays pinned keeps serving
        the indexes it had)."""
        indexes = self._indexes
        if indexes is None:
            with self._index_lock:
                indexes = self._indexes
                if indexes is None:
                    indexes = SnapshotIndexSet(self, declared)
                    self._indexes = indexes
        return indexes

    def release(self) -> None:
        """Unpin this generation (see ``Table.unpin``)."""
        self._source.unpin(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TableSnapshot({self.name!r}, epoch={self.version}, "
            f"stamp={self.stamp}, rows={self._row_count}, pins={self.pins})"
        )
