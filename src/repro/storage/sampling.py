"""Row sampling used by RUNSTATS and by JITS statistics collection.

The paper (Section 4, citing [1, 8, 12]) relies on the result that a fixed
sample size — independent of table size — suffices for accurate statistics,
so :func:`fixed_size_sample` is the primary entry point. A Bernoulli sampler
is provided for rate-based sampling.
"""

from __future__ import annotations

import numpy as np

from .table import Table

DEFAULT_SAMPLE_SIZE = 2000


def fixed_size_sample(
    table: Table, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random sample of row positions, without replacement.

    Returns all rows when the table is smaller than ``size``. The result is
    sorted so downstream columnar access stays cache-friendly.
    """
    n = table.row_count
    if size <= 0:
        return np.empty(0, dtype=np.int64)
    if n <= size:
        return np.arange(n, dtype=np.int64)
    if n >= size * 10:
        # Draw with replacement: O(size) instead of O(n). With <=10%
        # sampling fraction collisions are rare, but they do happen, and a
        # duplicated position would double-weight its row in every mask; so
        # dedupe and top up until the sample really holds ``size`` distinct
        # positions. This keeps the per-query collection overhead
        # independent of table size, which is the paper's premise for JIT
        # collection being affordable.
        rows = np.unique(rng.integers(0, n, size=size, dtype=np.int64))
        while len(rows) < size:
            extra = rng.integers(0, n, size=size - len(rows), dtype=np.int64)
            rows = np.unique(np.concatenate([rows, extra]))
        return rows  # np.unique already sorts
    rows = rng.choice(n, size=size, replace=False).astype(np.int64)
    return np.sort(rows)


def bernoulli_sample(
    table: Table, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Include each row independently with probability ``rate``."""
    n = table.row_count
    if rate <= 0.0 or n == 0:
        return np.empty(0, dtype=np.int64)
    if rate >= 1.0:
        return np.arange(n, dtype=np.int64)
    mask = rng.random(n) < rate
    return np.flatnonzero(mask).astype(np.int64)


class SampleView:
    """A sampled subset of a table, presented column-by-column.

    Keeps the scale factor around so observed counts can be extrapolated to
    the full table (``estimate_count``).
    """

    def __init__(self, table: Table, rows: np.ndarray):
        self.table = table
        self.rows = rows
        self.sample_size = len(rows)
        self.population_size = table.row_count

    @property
    def scale(self) -> float:
        if self.sample_size == 0:
            return 0.0
        return self.population_size / self.sample_size

    def column_data(self, name: str) -> np.ndarray:
        return self.table.column_data(name)[self.rows]

    def estimate_count(self, sample_matches: int) -> float:
        """Extrapolate a count observed on the sample to the full table."""
        return sample_matches * self.scale

    def estimate_selectivity(self, sample_matches: int) -> float:
        if self.sample_size == 0:
            return 0.0
        return sample_matches / self.sample_size
