"""Shared-memory column export for process-parallel scans.

The parent engine exports a table's physical column arrays into
``multiprocessing.shared_memory`` segments; worker processes attach by
name and wrap the buffers in zero-copy numpy views. Exports are
epoch-stamped with the snapshot epoch (``version`` — bumped once per
published MVCC generation), so:

* the parent re-exports a table only when its data epoch moved — a
  read-heavy workload pays the copy once, not per scan — and retains a
  small window of epochs so MVCC readers pinned to different snapshot
  generations each dispatch against their own epoch's segments;
* workers cache their attachments per table and re-attach only when a
  task arrives carrying a different export id — a process-global
  counter stamped into every :class:`TablePayload`, so a DROP/CREATE
  cycle that happens to land on the same epoch number still forces a
  re-attach (:class:`WorkerAttachments`);
* an in-flight scan always sees the exact rows its statement locked:
  the statement's table lock keeps the epoch stable for the duration,
  and workers operate on the pinned copy, never the live buffers.

Lifetime (Linux): segments live under ``/dev/shm`` with the ``rjits``
prefix. The registry unlinks a table's stale segments when re-exporting
and unlinks everything on ``close()`` (also registered via ``atexit``);
an unlinked segment's memory survives until the last worker unmaps it,
so eviction never races an in-flight task. Workers attach with
``multiprocessing.resource_tracker`` registration suppressed — on 3.11
the tracker counts attaches as ownership, and since forkserver children
share the parent's tracker process, an attach would first shadow and
then (on unregister) erase the parent's own registration of the
segment it still owns.
"""

from __future__ import annotations

import atexit
import contextlib
import itertools
import os
import secrets
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import StorageError

#: Prefix of every segment name this module creates (leak checks key on it).
SHM_PREFIX = "rjits"

# Segment names must be unique across every registry in this process
# (several engines can coexist in one interpreter) and must not collide
# with stale /dev/shm files left by a crashed run that recycled our pid,
# so they carry a per-process random token plus a process-global counter.
_NAME_TOKEN = secrets.token_hex(4)
_SEG_SEQ = itertools.count(1)

# Export identity: epoch numbers restart at 0 for a re-created table, so
# payloads additionally carry a process-global monotone id that changes
# on every (re-)export; worker caches key on it, never on the epoch.
_EXPORT_IDS = itertools.count(1)


class ShmError(StorageError):
    """Shared-memory export/attach failure (callers fall back in-process)."""


@dataclass(frozen=True)
class ColumnSegment:
    """Picklable descriptor of one exported column."""

    column: str  # lower-case column name
    shm_name: str
    dtype: str  # numpy dtype string
    length: int


@dataclass(frozen=True)
class TablePayload:
    """Picklable descriptor of one table export, pinned to a data epoch.

    ``export_id`` is the cache-validity key: unlike ``epoch`` (which is
    per-Table and restarts at 0 when a table is dropped and re-created
    under the same name), it is unique per export within the process.
    """

    table: str
    epoch: int
    n_rows: int
    segments: Tuple[ColumnSegment, ...]
    export_id: int = 0


def list_segments() -> List[str]:
    """Names of live repro-owned segments in ``/dev/shm`` (leak checks)."""
    try:
        return sorted(
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SHM_PREFIX)
        )
    except OSError:  # non-Linux hosts: no listing, leak checks are no-ops
        return []


@contextlib.contextmanager
def _no_tracker_registration():
    """Suppress resource-tracker registration while attaching.

    Attaching registers the segment as if we owned it; the parent is the
    owner and does its own unlink. Worse, forkserver children share the
    parent's tracker process, so a worker-side register/unregister pair
    would strip the parent's registration out from under it. (Python
    3.13's ``track=False`` makes this explicit; 3.11 needs the patch.)
    """
    original = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        yield
    finally:
        resource_tracker.register = original


class _TableExport:
    """Parent-side handles for one exported table epoch."""

    def __init__(self, payload: TablePayload,
                 handles: List[shared_memory.SharedMemory]):
        self.payload = payload
        self.handles = handles

    @property
    def epoch(self) -> int:
        return self.payload.epoch

    def close(self) -> None:
        for shm in self.handles:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()  # also unregisters from the resource tracker
            except FileNotFoundError:
                pass
            except Exception:
                pass
        self.handles = []


#: How many distinct export epochs the registry keeps live per table.
#: Under MVCC several readers can be pinned to different snapshot
#: generations at once; retaining a small window lets each dispatch
#: against its own epoch's segments without thrashing re-exports.
EXPORT_EPOCHS_RETAINED = 4


class ShmRegistry:
    """Parent-side registry of table exports, keyed by (table, epoch).

    Per table the registry keeps up to :data:`EXPORT_EPOCHS_RETAINED`
    epochs alive in LRU order — MVCC readers pinned to different snapshot
    generations each reuse the export matching their pinned epoch. The
    oldest epoch's segments are unlinked on eviction; workers still
    mapping them keep the memory until they unmap (Linux semantics), so
    eviction never corrupts an in-flight task.
    """

    def __init__(self) -> None:
        # name -> (weakref to the owning live Table, epoch -> export).
        # The identity check is what keeps a reader pinned to a dropped
        # table's generation from being served a re-created table's
        # arrays when the new table's epoch numbering collides with the
        # pinned epoch (epochs restart at 0 on CREATE).
        self._exports: Dict[
            str,
            Tuple["weakref.ref", "OrderedDict[int, _TableExport]"],
        ] = {}
        self._lock = threading.RLock()
        self._closed = False
        self.exports = 0  # tables (re-)exported, for stats_snapshot
        atexit.register(self.close)

    def export(self, table) -> TablePayload:
        """Export ``table`` (or reuse the cached export for its epoch).

        ``table`` may be a live Table or a pinned TableSnapshot; either
        way ``version`` is the snapshot epoch the arrays belong to.
        """
        with self._lock:
            if self._closed:
                raise ShmError("shared-memory registry is closed")
            name = table.name.lower()
            epoch = table.version
            identity = getattr(table, "storage_identity", table)
            entry = self._exports.get(name)
            if entry is not None and entry[0]() is not identity:
                # Same name, different storage (DROP + CREATE, or a
                # pinned generation of the dropped table resurfacing):
                # an epoch-number hit here would serve the wrong arrays.
                for export in entry[1].values():
                    export.close()
                entry = None
            if entry is None:
                entry = (weakref.ref(identity), OrderedDict())
                self._exports[name] = entry
            per_table = entry[1]
            current = per_table.get(epoch)
            if current is not None:
                per_table.move_to_end(epoch)
                return current.payload
            export = self._build(table, name, epoch)
            per_table[epoch] = export
            self.exports += 1
            while len(per_table) > EXPORT_EPOCHS_RETAINED:
                _, oldest = per_table.popitem(last=False)
                oldest.close()
            return export.payload

    def _build(self, table, name: str, epoch: int) -> _TableExport:
        handles: List[shared_memory.SharedMemory] = []
        segments: List[ColumnSegment] = []
        try:
            for column in table.schema.column_names():
                column = column.lower()
                data = table.column_data(column)
                shm_name = (
                    f"{SHM_PREFIX}{os.getpid()}x{_NAME_TOKEN}"
                    f"x{next(_SEG_SEQ)}"
                )
                shm = shared_memory.SharedMemory(
                    create=True, name=shm_name, size=max(1, data.nbytes)
                )
                handles.append(shm)
                view = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
                view[:] = data
                segments.append(
                    ColumnSegment(
                        column=column,
                        shm_name=shm_name,
                        dtype=data.dtype.str,
                        length=len(data),
                    )
                )
        except Exception as exc:
            for shm in handles:
                try:
                    shm.close()
                    shm.unlink()
                except Exception:
                    pass
            raise ShmError(f"exporting table {name!r} failed: {exc}") from exc
        payload = TablePayload(
            table=name,
            epoch=epoch,
            n_rows=table.row_count,
            segments=tuple(segments),
            export_id=next(_EXPORT_IDS),
        )
        return _TableExport(payload, handles)

    def release(self, table_name: str) -> None:
        """Unlink one table's segments, all epochs (e.g. after DROP TABLE).

        Dropping the whole per-table map matters for correctness, not
        just hygiene: a re-created table restarts its epoch numbering, so
        a stale entry could otherwise satisfy the new table's export from
        the old table's arrays.
        """
        with self._lock:
            entry = self._exports.pop(table_name.lower(), None)
        if entry is not None:
            for export in entry[1].values():
                export.close()

    def close(self) -> None:
        """Unlink every segment; idempotent, also runs at interpreter exit."""
        with self._lock:
            self._closed = True
            entries, self._exports = list(self._exports.values()), {}
        for _, per_table in entries:
            for export in per_table.values():
                export.close()


class WorkerAttachments:
    """Worker-side attachment cache: one entry per table, evicted when a
    task's payload carries a different export id (a new epoch, or the
    same table name re-created and re-exported)."""

    def __init__(self) -> None:
        self._tables: Dict[
            str,
            Tuple[int, List[shared_memory.SharedMemory], Dict[str, np.ndarray]],
        ] = {}

    def arrays(self, payload: TablePayload) -> Dict[str, np.ndarray]:
        cached = self._tables.get(payload.table)
        if cached is not None:
            export_id, handles, arrays = cached
            if export_id == payload.export_id:
                return arrays
            self._detach(handles)
            del self._tables[payload.table]
        handles = []
        arrays: Dict[str, np.ndarray] = {}
        try:
            for segment in payload.segments:
                with _no_tracker_registration():
                    shm = shared_memory.SharedMemory(name=segment.shm_name)
                handles.append(shm)
                arrays[segment.column] = np.ndarray(
                    (segment.length,),
                    dtype=np.dtype(segment.dtype),
                    buffer=shm.buf,
                )
        except Exception as exc:
            self._detach(handles)
            raise ShmError(
                f"attaching to table {payload.table!r} "
                f"(epoch {payload.epoch}) failed: {exc}"
            ) from exc
        self._tables[payload.table] = (payload.export_id, handles, arrays)
        return arrays

    @staticmethod
    def _detach(handles: List[shared_memory.SharedMemory]) -> None:
        for shm in handles:
            try:
                shm.close()
            except Exception:
                pass

    def close(self) -> None:
        for _, handles, _ in self._tables.values():
            self._detach(handles)
        self._tables = {}
