"""Columnar in-memory storage engine.

Public surface: :class:`Database`, :class:`Table`, index classes and the
sampling helpers. Everything above this layer (catalog, optimizer, executor)
talks to tables through these objects.
"""

from .column import Column
from .database import Database
from .dictionary import MISSING_CODE, StringDictionary
from .index import HashIndex, IndexSet, SortedIndex
from .sampling import (
    DEFAULT_SAMPLE_SIZE,
    SampleView,
    bernoulli_sample,
    fixed_size_sample,
)
from .snapshot import (
    DEFAULT_CHUNK_ROWS,
    DEFAULT_SNAPSHOT_RETENTION,
    ColumnSnapshot,
    SnapshotIndexSet,
    TableSnapshot,
)
from .shm import (
    SHM_PREFIX,
    ColumnSegment,
    ShmError,
    ShmRegistry,
    TablePayload,
    WorkerAttachments,
    list_segments,
)
from .table import Table, UDIShard, active_udi_shard, udi_shard_scope

__all__ = [
    "Column",
    "Database",
    "StringDictionary",
    "MISSING_CODE",
    "HashIndex",
    "SortedIndex",
    "IndexSet",
    "Table",
    "TableSnapshot",
    "ColumnSnapshot",
    "SnapshotIndexSet",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_SNAPSHOT_RETENTION",
    "UDIShard",
    "active_udi_shard",
    "udi_shard_scope",
    "SampleView",
    "fixed_size_sample",
    "bernoulli_sample",
    "DEFAULT_SAMPLE_SIZE",
    "SHM_PREFIX",
    "ColumnSegment",
    "ShmError",
    "ShmRegistry",
    "TablePayload",
    "WorkerAttachments",
    "list_segments",
]
