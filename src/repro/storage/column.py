"""Physical column storage.

A :class:`Column` is a growable numpy array. INT and STRING columns are
``int64`` (strings hold dictionary codes); FLOAT columns are ``float64``.
Amortized O(1) appends are implemented with capacity doubling.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..errors import StorageError
from ..types import DataType, Value
from .dictionary import StringDictionary
from .snapshot import DEFAULT_CHUNK_ROWS, ColumnSnapshot

_INITIAL_CAPACITY = 16


def _physical_dtype(dtype: DataType) -> np.dtype:
    if dtype is DataType.FLOAT:
        return np.dtype(np.float64)
    return np.dtype(np.int64)


class Column:
    """One growable typed column."""

    def __init__(
        self,
        name: str,
        dtype: DataType,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ):
        self.name = name
        self.dtype = dtype
        self._buf = np.empty(_INITIAL_CAPACITY, dtype=_physical_dtype(dtype))
        self._size = 0
        self.dictionary: Optional[StringDictionary] = (
            StringDictionary() if dtype is DataType.STRING else None
        )
        # Bumped on every mutation of THIS column; indexes key their cache
        # invalidation off it so updates to other columns don't force
        # rebuilds.
        self.version = 0
        # Copy-on-write bookkeeping for MVCC snapshots: which chunk
        # indices were touched since the last published generation, plus
        # that generation's chunk arrays (clean ones are reused by object
        # identity when the next generation publishes).
        if chunk_rows < 1:
            raise StorageError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.chunk_rows = chunk_rows
        self._dirty: set = set()
        self._last_chunks: List[np.ndarray] = []
        self._last_snapshot: Optional[ColumnSnapshot] = None

    def __len__(self) -> int:
        return self._size

    @property
    def data(self) -> np.ndarray:
        """A view of the live physical values (codes for strings)."""
        return self._buf[: self._size]

    def _reserve(self, extra: int) -> None:
        need = self._size + extra
        if need <= len(self._buf):
            return
        capacity = max(len(self._buf), _INITIAL_CAPACITY)
        while capacity < need:
            capacity *= 2
        buf = np.empty(capacity, dtype=self._buf.dtype)
        buf[: self._size] = self._buf[: self._size]
        self._buf = buf

    def encode_value(self, value: Value) -> Union[int, float]:
        """Validate and convert a logical value to its physical form."""
        value = self.dtype.validate(value)
        if self.dictionary is not None:
            return self.dictionary.encode(value)  # type: ignore[arg-type]
        return value  # type: ignore[return-value]

    def lookup_value(self, value: Value) -> Union[int, float, None]:
        """Physical form of ``value`` without mutating the dictionary.

        Returns ``None`` when a string value is not present in the
        dictionary (the matching predicate is then unsatisfiable).
        """
        value = self.dtype.validate(value)
        if self.dictionary is not None:
            code = self.dictionary.find_code(value)  # type: ignore[arg-type]
            return code
        return value  # type: ignore[return-value]

    def decode_value(self, physical: Union[int, float]) -> Value:
        if self.dictionary is not None:
            return self.dictionary.decode(int(physical))
        if self.dtype is DataType.INT:
            return int(physical)
        return float(physical)

    # ------------------------------------------------------------------
    # Copy-on-write chunk tracking
    # ------------------------------------------------------------------
    def _mark_range(self, start: int, stop: int) -> None:
        """Mark chunks covering rows [start, stop) as touched."""
        if stop <= start:
            return
        cr = self.chunk_rows
        self._dirty.update(range(start // cr, (stop - 1) // cr + 1))

    def _mark_rows(self, rows: np.ndarray) -> None:
        if len(rows) == 0:
            return
        cr = self.chunk_rows
        touched = np.unique(np.asarray(rows, dtype=np.int64) // cr)
        self._dirty.update(int(c) for c in touched)

    def append(self, value: Value) -> None:
        self._reserve(1)
        self._buf[self._size] = self.encode_value(value)
        self._size += 1
        self._mark_range(self._size - 1, self._size)
        self.version += 1

    def extend(self, values: Sequence[Value]) -> None:
        self._reserve(len(values))
        start = self._size
        for value in values:
            self._buf[self._size] = self.encode_value(value)
            self._size += 1
        self._mark_range(start, self._size)
        self.version += 1

    def extend_physical(self, physical: np.ndarray) -> None:
        """Bulk-append already-encoded physical values (fast path)."""
        if physical.dtype != self._buf.dtype:
            physical = physical.astype(self._buf.dtype)
        self._reserve(len(physical))
        self._buf[self._size : self._size + len(physical)] = physical
        self._mark_range(self._size, self._size + len(physical))
        self._size += len(physical)
        self.version += 1

    def set_at(self, rows: np.ndarray, value: Value) -> None:
        """Overwrite the given row positions with one logical value."""
        self._buf[: self._size][rows] = self.encode_value(value)
        self._mark_rows(rows)
        self.version += 1

    def set_physical(self, rows: np.ndarray, values: np.ndarray) -> None:
        """Overwrite row positions with per-row physical values."""
        self._buf[: self._size][rows] = values
        self._mark_rows(rows)
        self.version += 1

    def delete_rows(self, keep_mask: np.ndarray) -> None:
        """Compact the column down to the rows where ``keep_mask`` is True."""
        if len(keep_mask) != self._size:
            raise StorageError("delete mask length mismatch")
        kept = self._buf[: self._size][keep_mask]
        # Every row from the first deletion onward shifts position, so
        # the chunks from there to the (new, shorter) end are all dirty.
        holes = np.flatnonzero(~np.asarray(keep_mask, dtype=bool))
        self._buf = kept.copy()
        self._size = len(kept)
        if len(holes):
            self._mark_range(int(holes[0]), self._size)
            # A delete shrinking into an earlier chunk still dirties the
            # chunk the first hole landed in, even when it is now the
            # (shorter) tail chunk.
            self._dirty.add(int(holes[0]) // self.chunk_rows)
        self.version += 1

    def snapshot(self) -> ColumnSnapshot:
        """Publish this column's current content as an immutable generation.

        Untouched chunks are carried over from the previous generation by
        object identity; touched ones (and any chunk whose extent changed)
        are copied out of the live buffer as read-only arrays. When
        nothing changed at all, the previous :class:`ColumnSnapshot`
        object itself is returned, so downstream caches (materialized
        data, index structures) carry across generations for free.
        """
        cr = self.chunk_rows
        n = self._size
        n_chunks = (n + cr - 1) // cr
        prev = self._last_chunks
        last = self._last_snapshot
        if (
            last is not None
            and not self._dirty
            and last.size == n
            and len(prev) == n_chunks
        ):
            return last
        chunks: List[np.ndarray] = []
        for i in range(n_chunks):
            expected = min((i + 1) * cr, n) - i * cr
            carried = prev[i] if i < len(prev) else None
            if (
                i not in self._dirty
                and carried is not None
                and len(carried) == expected
            ):
                chunks.append(carried)
                continue
            arr = self._buf[i * cr : i * cr + expected].copy()
            arr.setflags(write=False)
            chunks.append(arr)
        self._last_chunks = chunks
        self._dirty.clear()
        snap = ColumnSnapshot(
            self.name,
            self.dtype,
            self.dictionary,
            chunks,
            n,
            self.version,
            self._buf.dtype,
        )
        self._last_snapshot = snap
        return snap

    def logical_values(self, rows: Optional[np.ndarray] = None) -> List[Value]:
        """Decode rows back to Python values (for result fetch)."""
        phys = self.data if rows is None else self.data[rows]
        if self.dictionary is not None:
            return self.dictionary.decode_many(phys)
        if self.dtype is DataType.INT:
            return [int(v) for v in phys]
        return [float(v) for v in phys]
