"""Physical column storage.

A :class:`Column` is a growable numpy array. INT and STRING columns are
``int64`` (strings hold dictionary codes); FLOAT columns are ``float64``.
Amortized O(1) appends are implemented with capacity doubling.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..errors import StorageError
from ..types import DataType, Value
from .dictionary import StringDictionary

_INITIAL_CAPACITY = 16


def _physical_dtype(dtype: DataType) -> np.dtype:
    if dtype is DataType.FLOAT:
        return np.dtype(np.float64)
    return np.dtype(np.int64)


class Column:
    """One growable typed column."""

    def __init__(self, name: str, dtype: DataType):
        self.name = name
        self.dtype = dtype
        self._buf = np.empty(_INITIAL_CAPACITY, dtype=_physical_dtype(dtype))
        self._size = 0
        self.dictionary: Optional[StringDictionary] = (
            StringDictionary() if dtype is DataType.STRING else None
        )
        # Bumped on every mutation of THIS column; indexes key their cache
        # invalidation off it so updates to other columns don't force
        # rebuilds.
        self.version = 0

    def __len__(self) -> int:
        return self._size

    @property
    def data(self) -> np.ndarray:
        """A view of the live physical values (codes for strings)."""
        return self._buf[: self._size]

    def _reserve(self, extra: int) -> None:
        need = self._size + extra
        if need <= len(self._buf):
            return
        capacity = max(len(self._buf), _INITIAL_CAPACITY)
        while capacity < need:
            capacity *= 2
        buf = np.empty(capacity, dtype=self._buf.dtype)
        buf[: self._size] = self._buf[: self._size]
        self._buf = buf

    def encode_value(self, value: Value) -> Union[int, float]:
        """Validate and convert a logical value to its physical form."""
        value = self.dtype.validate(value)
        if self.dictionary is not None:
            return self.dictionary.encode(value)  # type: ignore[arg-type]
        return value  # type: ignore[return-value]

    def lookup_value(self, value: Value) -> Union[int, float, None]:
        """Physical form of ``value`` without mutating the dictionary.

        Returns ``None`` when a string value is not present in the
        dictionary (the matching predicate is then unsatisfiable).
        """
        value = self.dtype.validate(value)
        if self.dictionary is not None:
            code = self.dictionary.find_code(value)  # type: ignore[arg-type]
            return code
        return value  # type: ignore[return-value]

    def decode_value(self, physical: Union[int, float]) -> Value:
        if self.dictionary is not None:
            return self.dictionary.decode(int(physical))
        if self.dtype is DataType.INT:
            return int(physical)
        return float(physical)

    def append(self, value: Value) -> None:
        self._reserve(1)
        self._buf[self._size] = self.encode_value(value)
        self._size += 1
        self.version += 1

    def extend(self, values: Sequence[Value]) -> None:
        self._reserve(len(values))
        for value in values:
            self._buf[self._size] = self.encode_value(value)
            self._size += 1
        self.version += 1

    def extend_physical(self, physical: np.ndarray) -> None:
        """Bulk-append already-encoded physical values (fast path)."""
        if physical.dtype != self._buf.dtype:
            physical = physical.astype(self._buf.dtype)
        self._reserve(len(physical))
        self._buf[self._size : self._size + len(physical)] = physical
        self._size += len(physical)
        self.version += 1

    def set_at(self, rows: np.ndarray, value: Value) -> None:
        """Overwrite the given row positions with one logical value."""
        self._buf[: self._size][rows] = self.encode_value(value)
        self.version += 1

    def set_physical(self, rows: np.ndarray, values: np.ndarray) -> None:
        """Overwrite row positions with per-row physical values."""
        self._buf[: self._size][rows] = values
        self.version += 1

    def delete_rows(self, keep_mask: np.ndarray) -> None:
        """Compact the column down to the rows where ``keep_mask`` is True."""
        if len(keep_mask) != self._size:
            raise StorageError("delete mask length mismatch")
        kept = self._buf[: self._size][keep_mask]
        self._buf = kept.copy()
        self._size = len(kept)
        self.version += 1

    def logical_values(self, rows: Optional[np.ndarray] = None) -> List[Value]:
        """Decode rows back to Python values (for result fetch)."""
        phys = self.data if rows is None else self.data[rows]
        if self.dictionary is not None:
            return self.dictionary.decode_many(phys)
        if self.dtype is DataType.INT:
            return [int(v) for v in phys]
        return [float(v) for v in phys]
