"""Dictionary encoding for string columns.

Every string column stores int64 *codes*; the dictionary maps codes to the
string values. This is the paper's "mapping function" that represents
categorical and character data as numerical values so histograms can
interpolate over them (Section 3.1).

Codes are assigned in insertion order, so range semantics over codes are
only meaningful for equality / IN predicates — which is how the engine uses
them. ``sort_permutation`` gives a lexicographic view when an ORDER BY needs
real string ordering.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import StorageError

MISSING_CODE = -1  # returned by lookup() for values not in the dictionary


class StringDictionary:
    """Bidirectional mapping between string values and int64 codes."""

    def __init__(self, values: Iterable[str] = ()):
        self._values: List[str] = []
        self._codes: Dict[str, int] = {}
        for v in values:
            self.encode(v)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: str) -> bool:
        return value in self._codes

    def encode(self, value: str) -> int:
        """Return the code for ``value``, adding it if unseen."""
        if not isinstance(value, str):
            raise StorageError(f"dictionary values must be str, got {value!r}")
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._values.append(value)
            self._codes[value] = code
        return code

    def encode_many(self, values: Iterable[str]) -> np.ndarray:
        return np.fromiter(
            (self.encode(v) for v in values), dtype=np.int64, count=-1
        )

    def lookup(self, value: str) -> int:
        """Return the code for ``value`` or :data:`MISSING_CODE`."""
        return self._codes.get(value, MISSING_CODE)

    def decode(self, code: int) -> str:
        if 0 <= code < len(self._values):
            return self._values[code]
        raise StorageError(f"code {code} not in dictionary of size {len(self)}")

    def decode_many(self, codes: np.ndarray) -> List[str]:
        values = self._values
        # tolist() converts the whole array to Python ints in C, avoiding
        # a numpy-scalar __index__ round-trip per element.
        return [values[c] for c in np.asarray(codes, dtype=np.int64).tolist()]

    def values(self) -> List[str]:
        """All values, ordered by code."""
        return list(self._values)

    def sort_permutation(self) -> np.ndarray:
        """``perm`` such that ``values[perm]`` is lexicographically sorted."""
        return np.array(
            sorted(range(len(self._values)), key=self._values.__getitem__),
            dtype=np.int64,
        )

    def rank_of(self, code: int) -> int:
        """Lexicographic rank of ``code`` among the dictionary values."""
        value = self.decode(code)
        return sum(1 for v in self._values if v < value)

    def copy(self) -> "StringDictionary":
        clone = StringDictionary()
        clone._values = list(self._values)
        clone._codes = dict(self._codes)
        return clone

    def find_code(self, value: str) -> Optional[int]:
        code = self._codes.get(value)
        return code

    def find_codes(self, values: Iterable[str]) -> np.ndarray:
        """Codes for a value list in one pass (:data:`MISSING_CODE` for
        absent values) — the batch form of :meth:`find_code`."""
        get = self._codes.get
        values = list(values)
        return np.fromiter(
            (get(v, MISSING_CODE) for v in values),
            dtype=np.int64,
            count=len(values),
        )
