"""Logical data types shared by the storage engine, catalog and optimizer.

The engine stores every column as a numpy array of a *physical* type:

* ``INT``    -> ``int64``
* ``FLOAT``  -> ``float64``
* ``STRING`` -> ``int64`` dictionary codes (see
  :class:`repro.storage.dictionary.StringDictionary`)

Mapping categorical data to numeric codes is exactly the "mapping function"
the paper relies on so that histograms can interpolate over any column
(Section 3.1).
"""

from __future__ import annotations

import enum
from typing import Union

Value = Union[int, float, str]


class DataType(enum.Enum):
    """Logical column type."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.FLOAT)

    def validate(self, value: Value) -> Value:
        """Coerce ``value`` to this logical type, raising ``TypeError``.

        Booleans are rejected explicitly: in Python ``bool`` is a subclass
        of ``int`` and silently accepting them leads to confusing tables.
        """
        if isinstance(value, bool):
            raise TypeError(f"boolean value {value!r} is not a valid {self.value}")
        if self is DataType.INT:
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            raise TypeError(f"{value!r} is not a valid INT")
        if self is DataType.FLOAT:
            if isinstance(value, (int, float)):
                return float(value)
            raise TypeError(f"{value!r} is not a valid FLOAT")
        if isinstance(value, str):
            return value
        raise TypeError(f"{value!r} is not a valid STRING")


def comparable(dtype: DataType, value: Value) -> bool:
    """Whether ``value`` can be compared against a column of type ``dtype``."""
    if isinstance(value, bool):
        return False
    if dtype.is_numeric:
        return isinstance(value, (int, float))
    return isinstance(value, str)
