"""repro — reproduction of "Collecting and Maintaining Just-in-Time
Statistics" (El-Helw, Ilyas, Lau, Markl, Zuzarte; ICDE 2007).

A pure-Python mini relational engine (storage, catalog, SQL, cost-based
optimizer, vectorized executor) carrying a full implementation of JITS:
compile-time query analysis, sensitivity analysis, sampling-based
statistics collection, a maximum-entropy QSS archive, and statistics
migration.

Quickstart::

    from repro import Engine, EngineConfig
    from repro.workload import build_car_database

    db, _ = build_car_database(scale=0.002, seed=0)
    engine = Engine(db, EngineConfig.with_jits(s_max=0.5))
    result = engine.execute(
        "SELECT o.name, c.price FROM car c, owner o "
        "WHERE c.ownerid = o.id AND c.make = 'Toyota' AND c.model = 'Camry'"
    )
    print(result.rows[:5], result.timings)
"""

from .engine import Engine, EngineConfig, QueryResult, StatsMode
from .cancel import CancelToken
from .errors import (
    BindingError,
    CatalogError,
    ConfigError,
    ExecutionError,
    PlanningError,
    ReproError,
    SqlSyntaxError,
    StatementCancelledError,
    StatisticsError,
    StorageError,
)
from .jits import JITSConfig, JustInTimeStatistics
from .schema import ColumnDef, ForeignKey, TableSchema, make_schema
from .storage import Database, Table
from .types import DataType

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "EngineConfig",
    "StatsMode",
    "QueryResult",
    "JITSConfig",
    "JustInTimeStatistics",
    "Database",
    "Table",
    "DataType",
    "TableSchema",
    "ColumnDef",
    "ForeignKey",
    "make_schema",
    "CancelToken",
    "ReproError",
    "SqlSyntaxError",
    "StatementCancelledError",
    "ConfigError",
    "CatalogError",
    "BindingError",
    "StorageError",
    "PlanningError",
    "ExecutionError",
    "StatisticsError",
    "__version__",
]
