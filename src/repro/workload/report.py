"""Reporting helpers: box-plot statistics, scatter splits, ASCII tables.

These render the same artifacts the paper's figures show — five-number
summaries (Figure 3), improvement/degradation splits of per-query scatter
plots (Figures 4/5), and per-phase averages for the s_max sweep (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class BoxStats:
    """Five-number summary (what a box plot depicts)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @staticmethod
    def of(values: Sequence[float]) -> "BoxStats":
        if not values:
            return BoxStats(0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(list(values), dtype=np.float64)
        return BoxStats(
            minimum=float(arr.min()),
            q1=float(np.quantile(arr, 0.25)),
            median=float(np.quantile(arr, 0.5)),
            q3=float(np.quantile(arr, 0.75)),
            maximum=float(arr.max()),
        )

    def row(self, unit: float = 1000.0) -> Tuple[float, float, float, float, float]:
        """(min, q1, median, q3, max) scaled (default: to milliseconds)."""
        return (
            self.minimum * unit,
            self.q1 * unit,
            self.median * unit,
            self.q3 * unit,
            self.maximum * unit,
        )


@dataclass
class ScatterSplit:
    """Improvement/degradation split of paired per-query times."""

    improved: int
    degraded: int
    unchanged: int
    mean_ratio: float  # geometric mean of candidate/baseline
    total_candidate: float
    total_baseline: float

    @staticmethod
    def of(
        candidate: Sequence[float],
        baseline: Sequence[float],
        tolerance: float = 0.05,
    ) -> "ScatterSplit":
        if len(candidate) != len(baseline):
            raise ValueError("paired series must have equal length")
        cand = np.asarray(list(candidate), dtype=np.float64)
        base = np.asarray(list(baseline), dtype=np.float64)
        ratio = cand / np.maximum(base, 1e-12)
        improved = int((ratio < 1.0 - tolerance).sum())
        degraded = int((ratio > 1.0 + tolerance).sum())
        unchanged = len(ratio) - improved - degraded
        return ScatterSplit(
            improved=improved,
            degraded=degraded,
            unchanged=unchanged,
            mean_ratio=float(np.exp(np.mean(np.log(np.maximum(ratio, 1e-12))))),
            total_candidate=float(cand.sum()),
            total_baseline=float(base.sum()),
        )

    @property
    def improvement_fraction(self) -> float:
        total = self.improved + self.degraded + self.unchanged
        return self.improved / total if total else 0.0


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width ASCII table."""
    text_rows = [
        [f"{v:.2f}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(values: Sequence[str]) -> str:
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in text_rows)
    return "\n".join(lines)


def ascii_box_plot(labels: Sequence[str], stats: Sequence[BoxStats], width: int = 60) -> str:
    """Rough ASCII rendition of Figure 3's box plot."""
    top = max((s.maximum for s in stats), default=1.0) or 1.0

    def pos(value: float) -> int:
        return min(width - 1, int(round(value / top * (width - 1))))

    lines = []
    for label, s in zip(labels, stats):
        row = [" "] * width
        for i in range(pos(s.minimum), pos(s.maximum) + 1):
            row[i] = "-"
        for i in range(pos(s.q1), pos(s.q3) + 1):
            row[i] = "="
        row[pos(s.median)] = "|"
        lines.append(f"{label:>10} {''.join(row)}")
    lines.append(f"{'':>10} 0{' ' * (width - 8)}{top * 1000:.0f}ms")
    return "\n".join(lines)


def summarize_settings(
    reports: Dict, unit: float = 1000.0
) -> str:
    """Figure 3 style table over WorkloadRunReport values keyed by setting."""
    headers = ["setting", "min", "q1", "median", "q3", "max", "mean", "total"]
    rows = []
    for setting, report in reports.items():
        totals = report.select_totals()
        box = BoxStats.of(totals)
        name = getattr(setting, "value", str(setting))
        rows.append(
            [
                name,
                *(round(v, 2) for v in box.row(unit)),
                round(float(np.mean(totals)) * unit, 2) if totals else 0.0,
                round(report.elapsed * unit, 1),
            ]
        )
    return format_table(headers, rows)
