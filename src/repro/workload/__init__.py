"""Workload substrate: data generator, query generator, runner, reports."""

from .cargen import (
    DEFAULT_SCALE,
    PAPER_SIZES,
    GeneratorProfile,
    build_car_database,
    scaled_sizes,
)
from .queries import (
    DEFAULT_STATEMENTS,
    GeneratedWorkload,
    WorkloadGenerator,
    WorkloadOptions,
    generate_workload,
    mixed_client_streams,
)
from .report import (
    BoxStats,
    ScatterSplit,
    ascii_box_plot,
    format_table,
    summarize_settings,
)
from .runner import (
    QueryRecord,
    Setting,
    WorkloadRunReport,
    make_engine_for_setting,
    run_all_settings,
    run_setting,
    run_workload,
)

__all__ = [
    "build_car_database",
    "scaled_sizes",
    "GeneratorProfile",
    "PAPER_SIZES",
    "DEFAULT_SCALE",
    "generate_workload",
    "WorkloadGenerator",
    "WorkloadOptions",
    "GeneratedWorkload",
    "DEFAULT_STATEMENTS",
    "mixed_client_streams",
    "Setting",
    "QueryRecord",
    "WorkloadRunReport",
    "make_engine_for_setting",
    "run_workload",
    "run_setting",
    "run_all_settings",
    "BoxStats",
    "ScatterSplit",
    "format_table",
    "ascii_box_plot",
    "summarize_settings",
]
