"""Synthetic car-insurance database (paper Section 4, Table 2).

Four relations — CAR, OWNER, DEMOGRAPHICS, ACCIDENTS — with the paper's
primary-key-to-foreign-key relationships and, crucially, *correlated
attributes* (Make <-> Model, City <-> Country, salary <-> city, price <->
make/year): the correlations are what break the independence assumption
and create the estimation errors JITS fixes.

Table sizes follow Table 2 scaled by ``scale`` (the paper ran on DB2 with
millions of rows; the pure-Python engine runs the same shapes at a smaller
scale — see DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..rng import make_rng
from ..schema import ForeignKey, make_schema
from ..storage import Database
from ..types import DataType

# Paper Table 2 row counts.
PAPER_SIZES = {
    "car": 1_430_798,
    "owner": 1_000_000,
    "demographics": 1_000_000,
    "accidents": 4_289_980,
}

DEFAULT_SCALE = 0.01

MAKES_MODELS: Dict[str, List[str]] = {
    "Toyota": ["Camry", "Corolla", "RAV4", "Prius", "Sienna"],
    "Honda": ["Civic", "Accord", "CRV", "Odyssey"],
    "Ford": ["F150", "Focus", "Escape", "Mustang"],
    "Chevrolet": ["Silverado", "Malibu", "Impala"],
    "BMW": ["328i", "535i", "X5"],
    "Mercedes": ["C300", "E350"],
    "Volkswagen": ["Jetta", "Golf", "Passat"],
    "Nissan": ["Altima", "Sentra", "Rogue"],
    "Hyundai": ["Elantra", "Sonata"],
    "Mazda": ["Mazda3", "CX5"],
}

# City -> (country, salary multiplier): city functionally determines the
# country and biases salary — two of the correlations the paper relies on.
CITIES: Dict[str, Tuple[str, float]] = {
    "Ottawa": ("CA", 1.00),
    "Toronto": ("CA", 1.25),
    "Waterloo": ("CA", 1.10),
    "Montreal": ("CA", 0.95),
    "Vancouver": ("CA", 1.20),
    "NewYork": ("US", 1.45),
    "Boston": ("US", 1.35),
    "Chicago": ("US", 1.15),
    "Austin": ("US", 1.05),
    "Seattle": ("US", 1.30),
}

# Make -> price multiplier (luxury correlation).
PRICE_FACTOR = {
    "Toyota": 1.0, "Honda": 1.0, "Ford": 0.9, "Chevrolet": 0.9,
    "BMW": 2.2, "Mercedes": 2.4, "Volkswagen": 1.1, "Nissan": 0.95,
    "Hyundai": 0.8, "Mazda": 0.85,
}

EDUCATION = ["highschool", "college", "bachelor", "master", "phd"]
GENDERS = ["F", "M"]
COLORS = ["white", "black", "silver", "blue", "red", "green"]
YEAR_LOW, YEAR_HIGH = 1995, 2007  # paper era


@dataclass
class GeneratorProfile:
    """Metadata the workload generator needs to produce correlated values."""

    scale: float
    sizes: Dict[str, int]
    makes: List[str] = field(default_factory=lambda: list(MAKES_MODELS))
    models_by_make: Dict[str, List[str]] = field(
        default_factory=lambda: {k: list(v) for k, v in MAKES_MODELS.items()}
    )
    cities: List[str] = field(default_factory=lambda: list(CITIES))
    country_of_city: Dict[str, str] = field(
        default_factory=lambda: {c: CITIES[c][0] for c in CITIES}
    )
    year_range: Tuple[int, int] = (YEAR_LOW, YEAR_HIGH)
    salary_range: Tuple[float, float] = (1_000.0, 250_000.0)
    price_range: Tuple[float, float] = (500.0, 120_000.0)
    damage_range: Tuple[float, float] = (100.0, 50_000.0)


def scaled_sizes(scale: float) -> Dict[str, int]:
    return {
        name: max(20, int(round(count * scale)))
        for name, count in PAPER_SIZES.items()
    }


def build_car_database(
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    with_indexes: bool = True,
) -> Tuple[Database, GeneratorProfile]:
    """Generate the 4-table database; returns (database, profile)."""
    rng = make_rng(seed)
    sizes = scaled_sizes(scale)
    database = Database("cardb")
    _create_schemas(database)

    _fill_owner(database, sizes["owner"], rng)
    _fill_demographics(database, sizes["demographics"], sizes["owner"], rng)
    _fill_car(database, sizes["car"], sizes["owner"], rng)
    _fill_accidents(database, sizes["accidents"], sizes["car"], rng)

    if with_indexes:
        # FK hash indexes and range indexes an operational DBA would build.
        database.create_hash_index("car", "ownerid")
        database.create_hash_index("demographics", "ownerid")
        database.create_hash_index("accidents", "carid")
        database.create_sorted_index("car", "price")
        database.create_sorted_index("car", "year")
        database.create_sorted_index("demographics", "salary")
        database.create_sorted_index("accidents", "damage")

    return database, GeneratorProfile(scale=scale, sizes=sizes)


def _create_schemas(database: Database) -> None:
    database.create_table(
        make_schema(
            "owner",
            [
                ("id", DataType.INT),
                ("name", DataType.STRING),
                ("age", DataType.INT),
                ("gender", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    database.create_table(
        make_schema(
            "demographics",
            [
                ("id", DataType.INT),
                ("ownerid", DataType.INT),
                ("city", DataType.STRING),
                ("country", DataType.STRING),
                ("salary", DataType.FLOAT),
                ("education", DataType.STRING),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("ownerid", "owner", "id")],
        )
    )
    database.create_table(
        make_schema(
            "car",
            [
                ("id", DataType.INT),
                ("ownerid", DataType.INT),
                ("make", DataType.STRING),
                ("model", DataType.STRING),
                ("year", DataType.INT),
                ("price", DataType.FLOAT),
                ("color", DataType.STRING),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("ownerid", "owner", "id")],
        )
    )
    database.create_table(
        make_schema(
            "accidents",
            [
                ("id", DataType.INT),
                ("carid", DataType.INT),
                ("driver", DataType.STRING),
                ("damage", DataType.FLOAT),
                ("year", DataType.INT),
                ("severity", DataType.INT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("carid", "car", "id")],
        )
    )


def _zipf_choice(rng: np.random.Generator, options: int, n: int) -> np.ndarray:
    """Skewed categorical choice (rank-1/k weights) — realistic popularity."""
    weights = 1.0 / np.arange(1, options + 1)
    weights /= weights.sum()
    return rng.choice(options, size=n, p=weights)


def _fill_owner(database: Database, n: int, rng: np.random.Generator) -> None:
    ages = np.clip(rng.normal(42, 14, n), 16, 95).astype(np.int64)
    database.table("owner").insert_columns(
        {
            "id": np.arange(n, dtype=np.int64),
            "name": [f"owner_{i}" for i in range(n)],
            "age": ages,
            "gender": [GENDERS[int(g)] for g in rng.integers(0, 2, n)],
        }
    )


def _fill_demographics(
    database: Database, n: int, n_owners: int, rng: np.random.Generator
) -> None:
    city_names = list(CITIES)
    city_idx = _zipf_choice(rng, len(city_names), n)
    cities = [city_names[i] for i in city_idx]
    countries = [CITIES[c][0] for c in cities]
    base_salary = rng.lognormal(mean=10.6, sigma=0.5, size=n)
    multipliers = np.array([CITIES[c][1] for c in cities])
    salary = np.clip(base_salary * multipliers, 1_000.0, 250_000.0)
    database.table("demographics").insert_columns(
        {
            "id": np.arange(n, dtype=np.int64),
            "ownerid": rng.permutation(n_owners)[:n]
            if n <= n_owners
            else rng.integers(0, n_owners, n),
            "city": cities,
            "country": countries,
            "salary": salary,
            "education": [
                EDUCATION[int(e)] for e in _zipf_choice(rng, len(EDUCATION), n)
            ],
        }
    )


def _fill_car(
    database: Database, n: int, n_owners: int, rng: np.random.Generator
) -> None:
    makes = list(MAKES_MODELS)
    make_idx = _zipf_choice(rng, len(makes), n)
    make_values = [makes[i] for i in make_idx]
    model_values = []
    for make in make_values:
        models = MAKES_MODELS[make]
        weights = 1.0 / np.arange(1, len(models) + 1)
        weights /= weights.sum()
        model_values.append(models[int(rng.choice(len(models), p=weights))])
    years = rng.integers(YEAR_LOW, YEAR_HIGH + 1, n)
    age_factor = 1.0 - (YEAR_HIGH - years) * 0.06
    price_factor = np.array([PRICE_FACTOR[m] for m in make_values])
    prices = np.clip(
        rng.lognormal(mean=9.8, sigma=0.45, size=n) * age_factor * price_factor,
        500.0,
        120_000.0,
    )
    database.table("car").insert_columns(
        {
            "id": np.arange(n, dtype=np.int64),
            "ownerid": rng.integers(0, n_owners, n),
            "make": make_values,
            "model": model_values,
            "year": years,
            "price": prices,
            "color": [COLORS[int(c)] for c in _zipf_choice(rng, len(COLORS), n)],
        }
    )


def _fill_accidents(
    database: Database, n: int, n_cars: int, rng: np.random.Generator
) -> None:
    severity = np.clip(rng.poisson(1.6, n) + 1, 1, 5).astype(np.int64)
    # Damage grows with severity: a cross-table-free correlation for
    # single-table multi-predicate queries.
    damage = np.clip(
        rng.lognormal(mean=7.2, sigma=0.7, size=n) * (severity**1.4),
        100.0,
        50_000.0,
    )
    database.table("accidents").insert_columns(
        {
            "id": np.arange(n, dtype=np.int64),
            "carid": rng.integers(0, n_cars, n),
            "driver": [f"driver_{int(d)}" for d in rng.integers(0, max(10, n // 4), n)],
            "damage": damage,
            "year": rng.integers(YEAR_LOW, YEAR_HIGH + 1, n),
            "severity": severity,
        }
    )
