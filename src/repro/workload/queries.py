"""Workload generation (paper Section 4.2).

Produces a mixed OLAP/operational workload over the car database: single-
and multi-table decision-support queries with *correlated* predicate pairs
(Make/Model, City/Country, severity/damage) plus interleaved INSERT /
UPDATE / DELETE statements "to simulate a real-world operational database".

The default statement count is 840, matching the paper's workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..rng import make_rng
from .cargen import GeneratorProfile

DEFAULT_STATEMENTS = 840
DEFAULT_DML_FRACTION = 0.2


@dataclass
class WorkloadOptions:
    n_statements: int = DEFAULT_STATEMENTS
    dml_fraction: float = DEFAULT_DML_FRACTION
    seed: int = 7
    # Fraction of make/model (and city/country) pairs drawn *consistently*
    # with the data's correlation; the rest are deliberately mismatched
    # (actual selectivity ~ 0 — the other way independence assumptions fail).
    consistent_pair_fraction: float = 0.85


@dataclass
class GeneratedWorkload:
    statements: List[str]
    kinds: List[str]  # "select" | "insert" | "update" | "delete"

    def selects(self) -> List[str]:
        return [s for s, k in zip(self.statements, self.kinds) if k == "select"]

    def __len__(self) -> int:
        return len(self.statements)


class WorkloadGenerator:
    """Seeded generator of correlated-predicate workloads."""

    def __init__(self, profile: GeneratorProfile, options: Optional[WorkloadOptions] = None):
        self.profile = profile
        self.options = options or WorkloadOptions()
        self.rng = make_rng(self.options.seed)
        self._next_accident_id = profile.sizes["accidents"]
        self._next_car_id = profile.sizes["car"]

    # ------------------------------------------------------------------
    # Parameter sampling
    # ------------------------------------------------------------------
    def _make_model(self) -> Tuple[str, str]:
        profile = self.profile
        make = profile.makes[int(self.rng.integers(0, len(profile.makes)))]
        if self.rng.random() < self.options.consistent_pair_fraction:
            models = profile.models_by_make[make]
            model = models[int(self.rng.integers(0, len(models)))]
        else:
            other = profile.makes[int(self.rng.integers(0, len(profile.makes)))]
            models = profile.models_by_make[other]
            model = models[int(self.rng.integers(0, len(models)))]
        return make, model

    def _city_country(self) -> Tuple[str, str]:
        profile = self.profile
        city = profile.cities[int(self.rng.integers(0, len(profile.cities)))]
        if self.rng.random() < self.options.consistent_pair_fraction:
            country = profile.country_of_city[city]
        else:
            country = "US" if profile.country_of_city[city] == "CA" else "CA"
        return city, country

    def _salary_floor(self) -> int:
        return int(self.rng.choice([5_000, 20_000, 40_000, 60_000, 90_000]))

    def _year_floor(self) -> int:
        low, high = self.profile.year_range
        return int(self.rng.integers(low, high))

    def _price_floor(self) -> int:
        return int(self.rng.choice([2_000, 5_000, 10_000, 20_000, 40_000]))

    def _severity(self) -> int:
        return int(self.rng.integers(1, 6))

    def _damage_range(self) -> Tuple[int, int]:
        low = int(self.rng.choice([500, 1_000, 5_000, 10_000]))
        return low, low * int(self.rng.choice([2, 4, 8]))

    # ------------------------------------------------------------------
    # Query templates
    # ------------------------------------------------------------------
    # DSS-style mix: multi-table joins dominate (the paper positions JITS
    # for "complex, long-running queries such as those used in OLAP and
    # Decision Support Systems", Section 3.5).
    _TEMPLATE_WEIGHTS = (1, 2, 4, 1, 1, 3, 3, 3, 1)

    def _select_statement(self) -> str:
        weights = np.asarray(self._TEMPLATE_WEIGHTS, dtype=np.float64)
        template = int(self.rng.choice(len(weights), p=weights / weights.sum()))
        if template == 0:
            make, model = self._make_model()
            year = self._year_floor()
            return (
                f"SELECT id, price FROM car "
                f"WHERE make = '{make}' AND model = '{model}' AND year > {year}"
            )
        if template == 1:
            make, model = self._make_model()
            return (
                f"SELECT o.name, c.price FROM car c, owner o "
                f"WHERE c.ownerid = o.id AND c.make = '{make}' "
                f"AND c.model = '{model}' AND c.price > {self._price_floor()}"
            )
        if template == 2:
            # The paper's Section 4.1 query shape: 4-table join with
            # correlated predicates on two tables.
            make, model = self._make_model()
            city, country = self._city_country()
            return (
                f"SELECT o.name, a.driver, a.damage "
                f"FROM car c, accidents a, demographics d, owner o "
                f"WHERE d.ownerid = o.id AND a.carid = c.id "
                f"AND c.ownerid = o.id AND c.make = '{make}' "
                f"AND c.model = '{model}' AND d.city = '{city}' "
                f"AND d.country = '{country}' AND d.salary > {self._salary_floor()}"
            )
        if template == 3:
            city, country = self._city_country()
            lo = self._salary_floor()
            return (
                f"SELECT d.city, COUNT(*) AS n, AVG(d.salary) AS avg_salary "
                f"FROM demographics d "
                f"WHERE d.country = '{country}' AND d.salary > {lo} "
                f"GROUP BY d.city ORDER BY n DESC"
            )
        if template == 4:
            severity = self._severity()
            lo, hi = self._damage_range()
            return (
                f"SELECT a.id, a.damage FROM accidents a "
                f"WHERE a.severity = {severity} "
                f"AND a.damage BETWEEN {lo} AND {hi}"
            )
        if template == 5:
            severity = self._severity()
            lo, hi = self._damage_range()
            return (
                f"SELECT c.make, COUNT(*) AS n FROM car c, accidents a "
                f"WHERE a.carid = c.id AND a.severity >= {severity} "
                f"AND a.damage > {lo} GROUP BY c.make ORDER BY n DESC LIMIT 5"
            )
        if template == 6:
            make, model = self._make_model()
            severity = self._severity()
            return (
                f"SELECT o.name, a.damage FROM car c, accidents a, owner o "
                f"WHERE a.carid = c.id AND c.ownerid = o.id "
                f"AND c.make = '{make}' AND c.model = '{model}' "
                f"AND a.severity >= {severity} ORDER BY a.damage DESC LIMIT 10"
            )
        if template == 7:
            city, country = self._city_country()
            make, _ = self._make_model()
            return (
                f"SELECT d.city, c.make, COUNT(*) AS n "
                f"FROM car c, owner o, demographics d "
                f"WHERE c.ownerid = o.id AND d.ownerid = o.id "
                f"AND d.city = '{city}' AND d.country = '{country}' "
                f"AND c.make = '{make}' GROUP BY d.city, c.make"
            )
        threshold = int(self.rng.choice([50, 100, 200]))
        return (
            f"SELECT v.make, v.n FROM "
            f"(SELECT make AS make, COUNT(*) AS n FROM car GROUP BY make) AS v "
            f"WHERE v.n > {threshold} ORDER BY v.n DESC"
        )

    # ------------------------------------------------------------------
    # DML templates (data churn)
    # ------------------------------------------------------------------
    def _dml_statement(self) -> Tuple[str, str]:
        """Data churn. Deliberately *directional* (prices inflate, salaries
        rise, skewed batches of new rows arrive) so statistics collected at
        the start of the workload drift out of date, as in Section 4.2."""
        choice = int(self.rng.integers(0, 6))
        if choice == 0:
            make, _ = self._make_model()
            factor = float(self.rng.choice([1.05, 1.09, 1.13]))
            return (
                f"UPDATE car SET price = price * {factor} WHERE make = '{make}'",
                "update",
            )
        if choice == 1:
            city, _ = self._city_country()
            bump = int(self.rng.choice([1500, 3000, 6000]))
            return (
                f"UPDATE demographics SET salary = salary + {bump} "
                f"WHERE city = '{city}'",
                "update",
            )
        if choice == 2:
            severity = self._severity()
            return (
                f"UPDATE accidents SET damage = damage * 1.15 "
                f"WHERE severity = {severity}",
                "update",
            )
        if choice == 3:
            # A skewed batch of new accidents: severe and expensive, so the
            # severity/damage joint distribution shifts over the workload.
            rows = []
            n_cars = self.profile.sizes["car"]
            low, high = self.profile.year_range
            for _ in range(100):
                rid = self._next_accident_id
                self._next_accident_id += 1
                carid = int(self.rng.integers(0, n_cars))
                severity = int(self.rng.integers(3, 6))
                damage = round(float(self.rng.uniform(8_000, 50_000)), 2)
                year = int(self.rng.integers(low, high + 1))
                rows.append(
                    f"({rid}, {carid}, 'driver_{rid % 997}', {damage}, "
                    f"{year}, {severity})"
                )
            return (
                "INSERT INTO accidents (id, carid, driver, damage, year, "
                "severity) VALUES " + ", ".join(rows),
                "insert",
            )
        if choice == 4:
            # A fleet purchase: one hot (make, model) pair floods in, so
            # equality selectivities on CAR drift.
            make = self.profile.makes[int(self.rng.integers(0, 3))]
            models = self.profile.models_by_make[make]
            model = models[0]
            n_owners = self.profile.sizes["owner"]
            low, high = self.profile.year_range
            rows = []
            for _ in range(60):
                rid = self._next_car_id
                self._next_car_id += 1
                ownerid = int(self.rng.integers(0, n_owners))
                year = int(self.rng.integers(high - 2, high + 1))
                price = round(float(self.rng.uniform(18_000, 45_000)), 2)
                rows.append(
                    f"({rid}, {ownerid}, '{make}', '{model}', {year}, "
                    f"{price}, 'white')"
                )
            return (
                "INSERT INTO car (id, ownerid, make, model, year, price, "
                "color) VALUES " + ", ".join(rows),
                "insert",
            )
        start = int(self.rng.integers(0, max(1, self._next_accident_id - 400)))
        return (
            f"DELETE FROM accidents WHERE id BETWEEN {start} AND {start + 150}",
            "delete",
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def generate(self) -> GeneratedWorkload:
        statements: List[str] = []
        kinds: List[str] = []
        for _ in range(self.options.n_statements):
            if self.rng.random() < self.options.dml_fraction:
                sql, kind = self._dml_statement()
            else:
                sql, kind = self._select_statement(), "select"
            statements.append(sql)
            kinds.append(kind)
        return GeneratedWorkload(statements=statements, kinds=kinds)


def generate_workload(
    profile: GeneratorProfile, options: Optional[WorkloadOptions] = None
) -> GeneratedWorkload:
    return WorkloadGenerator(profile, options).generate()


# ----------------------------------------------------------------------
# Multi-client serving streams
# ----------------------------------------------------------------------
#: First accident id used by client-private DML ranges: far above any id
#: the generator or the interleaved workload DML will ever touch.
CLIENT_DML_BASE_ID = 5_000_000

_SERVING_SELECTS = [
    "SELECT COUNT(*) FROM car WHERE make = 'Toyota' AND model = 'Camry'",
    "SELECT id, price FROM car WHERE price < 20000 AND year > 1999",
    "SELECT COUNT(*) FROM demographics WHERE city = 'Ottawa' AND salary > 5000",
    "SELECT o.id, COUNT(*) FROM owner o, car c WHERE c.ownerid = o.id "
    "AND c.year > 2000 GROUP BY o.id",
    "SELECT make, COUNT(*) FROM car WHERE year >= 1998 GROUP BY make",
    "SELECT AVG(price) FROM car WHERE make = 'Ford'",
]


def mixed_client_streams(
    n_clients: int = 4,
    per_client: int = 12,
    seed: int = 11,
    base_id: int = CLIENT_DML_BASE_ID,
) -> List[List[str]]:
    """Per-client statement streams whose results are interleaving-free.

    Each client mixes decision-support SELECTs over car/owner/demographics
    (tables no stream writes) with INSERT/UPDATE/DELETE confined to a
    client-private ``accidents`` id range, plus SELECTs over only that
    range. Any concurrent interleaving of the streams therefore yields
    byte-identical per-statement results to a sequential run — the
    correctness oracle for the network server's mixed workload tests.
    """
    rng = make_rng(seed)
    span = 10 * per_client
    streams: List[List[str]] = []
    for client in range(n_clients):
        lo = base_id + client * span
        next_id = lo
        stream: List[str] = []
        for turn in range(per_client):
            roll = turn % 4
            if roll == 0:
                values = []
                for _ in range(3):
                    carid = int(rng.integers(0, 5))
                    damage = round(float(rng.uniform(500, 9000)), 2)
                    values.append(
                        f"({next_id}, {carid}, 'client{client}', {damage}, "
                        f"{int(rng.integers(1995, 2007))}, "
                        f"{int(rng.integers(1, 4))})"
                    )
                    next_id += 1
                stream.append(
                    "INSERT INTO accidents (id, carid, driver, damage, "
                    "year, severity) VALUES " + ", ".join(values)
                )
            elif roll == 1:
                stream.append(
                    "UPDATE accidents SET damage = damage + 250.0 "
                    f"WHERE id >= {lo} AND id < {lo + span}"
                )
            elif roll == 2:
                stream.append(
                    "SELECT COUNT(*), SUM(damage) FROM accidents "
                    f"WHERE id >= {lo} AND id < {lo + span}"
                )
            else:
                stream.append(
                    _SERVING_SELECTS[
                        int(rng.integers(0, len(_SERVING_SELECTS)))
                    ]
                )
        stream.append(
            f"DELETE FROM accidents WHERE id >= {lo} AND id < {lo + span} "
            "AND severity >= 3"
        )
        stream.append(
            "SELECT COUNT(*) FROM accidents "
            f"WHERE id >= {lo} AND id < {lo + span}"
        )
        streams.append(stream)
    return streams
