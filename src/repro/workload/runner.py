"""Workload runner: execute a statement stream under one engine setting.

Reproduces the four experiment settings of paper Section 4.2:

1. ``NOSTATS``   — JITS disabled, no initial statistics;
2. ``GENERAL``   — JITS disabled, RUNSTATS on all tables up front;
3. ``WORKLOAD``  — JITS disabled, general + column-group statistics for all
                   groups occurring in the workload;
4. ``JITS``      — JITS enabled, no initial statistics.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..engine import Engine, EngineConfig, StatsMode
from .cargen import DEFAULT_SCALE, GeneratorProfile, build_car_database
from .queries import GeneratedWorkload


class Setting(enum.Enum):
    NOSTATS = "nostats"
    GENERAL = "general"
    WORKLOAD = "workload"
    JITS = "jits"


@dataclass
class QueryRecord:
    """Per-statement timing (seconds) plus the deterministic work metric."""

    index: int
    kind: str
    compile_time: float
    execution_time: float
    fetch_time: float
    rows: int
    modeled_cost: float = 0.0  # executed plan re-costed with actuals

    @property
    def total_time(self) -> float:
        return self.compile_time + self.execution_time + self.fetch_time


@dataclass
class WorkloadRunReport:
    setting: str
    records: List[QueryRecord] = field(default_factory=list)
    setup_seconds: float = 0.0  # upfront statistics collection

    def select_records(self) -> List[QueryRecord]:
        return [r for r in self.records if r.kind == "select"]

    def select_totals(self) -> List[float]:
        return [r.total_time for r in self.select_records()]

    def select_modeled_costs(self) -> List[float]:
        """Deterministic plan-quality series (machine-noise free)."""
        return [r.modeled_cost for r in self.select_records()]

    @property
    def total_modeled_cost(self) -> float:
        return sum(self.select_modeled_costs())

    @property
    def elapsed(self) -> float:
        return sum(r.total_time for r in self.records)

    @property
    def avg_compile(self) -> float:
        selects = self.select_records()
        if not selects:
            return 0.0
        return sum(r.compile_time for r in selects) / len(selects)

    @property
    def avg_execution(self) -> float:
        selects = self.select_records()
        if not selects:
            return 0.0
        return sum(r.execution_time for r in selects) / len(selects)

    @property
    def avg_total(self) -> float:
        selects = self.select_records()
        if not selects:
            return 0.0
        return sum(r.total_time for r in selects) / len(selects)


def make_engine_for_setting(
    setting: Setting,
    scale: float = DEFAULT_SCALE,
    data_seed: int = 0,
    workload: Optional[GeneratedWorkload] = None,
    s_max: float = 0.5,
    sample_size: int = 2000,
    engine_seed: int = 1,
    migration_interval: int = 50,
) -> Engine:
    """Fresh database + engine prepared for one experiment setting."""
    database, _ = build_car_database(scale=scale, seed=data_seed)
    if setting is Setting.JITS:
        config = EngineConfig.with_jits(
            s_max=s_max,
            sample_size=sample_size,
            migration_interval=migration_interval,
        )
    else:
        config = EngineConfig.traditional()
    config.seed = engine_seed
    engine = Engine(database, config)
    if setting is Setting.GENERAL:
        engine.apply_stats_mode(StatsMode.GENERAL)
    elif setting is Setting.WORKLOAD:
        statements = workload.selects() if workload is not None else []
        engine.apply_stats_mode(StatsMode.WORKLOAD, statements)
    return engine


def run_workload(
    engine: Engine,
    workload: GeneratedWorkload,
    setting_name: str = "",
    workers: int = 1,
) -> WorkloadRunReport:
    """Execute every statement; returns per-statement timings.

    With ``workers > 1``, consecutive runs of SELECT statements are
    dispatched through ``engine.execute_many`` (each worker thread is
    one client session); DML/DDL stays serialized between the SELECT
    batches, preserving the workload's read/write ordering. Records
    come back in the workload's original statement order either way.
    """
    report = WorkloadRunReport(setting=setting_name)

    def record(index: int, kind: str, result) -> None:
        report.records.append(
            QueryRecord(
                index=index,
                kind=kind,
                compile_time=result.compile_time,
                execution_time=result.execution_time,
                fetch_time=result.fetch_time,
                rows=result.row_count,
                modeled_cost=result.modeled_execution_cost(),
            )
        )

    statements = list(zip(workload.statements, workload.kinds))
    if workers <= 1:
        for index, (sql, kind) in enumerate(statements):
            record(index, kind, engine.execute(sql))
        return report

    def flush_selects(batch: List[int]) -> None:
        results = engine.execute_many(
            [statements[i][0] for i in batch], workers=workers
        )
        for index, result in zip(batch, results):
            record(index, statements[index][1], result)

    pending: List[int] = []
    for index, (sql, kind) in enumerate(statements):
        if kind == "select":
            pending.append(index)
            continue
        if pending:
            flush_selects(pending)
            pending = []
        record(index, kind, engine.execute(sql))
    if pending:
        flush_selects(pending)
    report.records.sort(key=lambda r: r.index)
    return report


def run_setting(
    setting: Setting,
    workload: GeneratedWorkload,
    scale: float = DEFAULT_SCALE,
    data_seed: int = 0,
    s_max: float = 0.5,
    sample_size: int = 2000,
    workers: int = 1,
) -> WorkloadRunReport:
    """Build the engine for a setting, time the setup, run the workload."""
    setup_started = time.perf_counter()
    engine = make_engine_for_setting(
        setting,
        scale=scale,
        data_seed=data_seed,
        workload=workload,
        s_max=s_max,
        sample_size=sample_size,
    )
    setup = time.perf_counter() - setup_started
    report = run_workload(
        engine, workload, setting_name=setting.value, workers=workers
    )
    report.setup_seconds = setup
    return report


def run_all_settings(
    workload: GeneratedWorkload,
    scale: float = DEFAULT_SCALE,
    data_seed: int = 0,
    s_max: float = 0.5,
    settings: Sequence[Setting] = tuple(Setting),
) -> Dict[Setting, WorkloadRunReport]:
    return {
        setting: run_setting(
            setting, workload, scale=scale, data_seed=data_seed, s_max=s_max
        )
        for setting in settings
    }
