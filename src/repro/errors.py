"""Exception hierarchy for the engine.

All engine errors derive from :class:`ReproError` so callers can catch one
base class; the leaf classes mirror the classic DBMS error families.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration value (engine, JITS or server knobs)."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class CatalogError(ReproError):
    """Unknown table/column, duplicate definition, or schema mismatch."""


class BindingError(ReproError):
    """A query references a column or table that cannot be resolved."""


class StorageError(ReproError):
    """Invalid physical operation on a table (bad row shape, bad type...)."""


class PlanningError(ReproError):
    """The optimizer could not produce a plan for the query."""


class ExecutionError(ReproError):
    """A plan failed while executing."""


class StatisticsError(ReproError):
    """Invalid statistics operation (bad histogram, bad constraint...)."""


class StatementCancelledError(ReproError):
    """The statement was cancelled while executing (cooperative cancel).

    Raised at the next morsel/checkpoint boundary after the statement's
    :class:`~repro.cancel.CancelToken` is set. The session that ran the
    statement stays usable: lock scopes unwind through context managers
    and the UDI shard flushes in the statement's ``finally``.
    """
