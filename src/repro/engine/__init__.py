"""Engine facade: configuration, results and the execute() pipeline."""

from .config import EngineConfig, StatsMode
from .engine import Engine
from .result import PHASE_COMPILE, PHASE_EXECUTE, PHASE_FETCH, QueryResult

__all__ = [
    "Engine",
    "EngineConfig",
    "StatsMode",
    "QueryResult",
    "PHASE_COMPILE",
    "PHASE_EXECUTE",
    "PHASE_FETCH",
]
