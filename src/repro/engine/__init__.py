"""Engine facade: configuration, results and the execute() pipeline."""

from .config import EngineConfig, StatsMode
from .engine import Engine
from .locks import AtomicCounter, LockManager, RWLock
from .result import PHASE_COMPILE, PHASE_EXECUTE, PHASE_FETCH, QueryResult
from .session import Session

__all__ = [
    "Engine",
    "EngineConfig",
    "StatsMode",
    "Session",
    "AtomicCounter",
    "LockManager",
    "RWLock",
    "QueryResult",
    "PHASE_COMPILE",
    "PHASE_EXECUTE",
    "PHASE_FETCH",
]
