"""Engine-level plan cache keyed by query template + statistics epochs.

The last stage of the compilation fast path: when the same query template
arrives again and no statistics the original plan was costed with have
moved — per-table UDI epochs, the table's sample epoch, the QSS archive
version (new QSS landing invalidates), the catalog version (RUNSTATS or
migration landing invalidates) — the whole parse-bind-JITS-optimize
pipeline after parsing is skipped and the previously optimized plan is
re-executed. Plans hold no row positions, only logical operators over
current table state, so re-execution against mutated data stays correct;
the epoch fingerprint exists to bound *plan-quality* staleness, not
result correctness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..optimizer.optimizer import OptimizedQuery

DEFAULT_PLAN_CACHE_SIZE = 64


@dataclass
class CachedPlan:
    fingerprint: Tuple
    optimized: OptimizedQuery
    tables: Tuple[str, ...]


class PlanCache:
    """Bounded LRU from query template to an optimized plan.

    One entry per template: a fingerprint mismatch means the statistics
    moved since the plan was built, so the stale entry is dropped and the
    caller recompiles (and re-stores).
    """

    def __init__(self, max_entries: int = DEFAULT_PLAN_CACHE_SIZE):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        # Concurrent SELECT readers probe and store; LRU bookkeeping
        # mutates the map even on hits.
        self._lock = threading.Lock()

    def lookup(
        self, template: str, fingerprint: Tuple
    ) -> Optional[OptimizedQuery]:
        with self._lock:
            entry = self._entries.get(template)
            if entry is None:
                self.misses += 1
                return None
            if entry.fingerprint != fingerprint:
                del self._entries[template]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(template)
            self.hits += 1
            return entry.optimized

    def store(
        self,
        template: str,
        fingerprint: Tuple,
        optimized: OptimizedQuery,
        tables: Tuple[str, ...],
    ) -> None:
        with self._lock:
            self._entries[template] = CachedPlan(
                fingerprint=fingerprint, optimized=optimized, tables=tables
            )
            self._entries.move_to_end(template)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def drop_table(self, table_name: str) -> None:
        name = table_name.lower()
        with self._lock:
            for template in [
                t for t, e in self._entries.items() if name in e.tables
            ]:
                del self._entries[template]
                self.invalidations += 1

    def clear(self) -> None:
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
