"""Engine configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..jits import JITSConfig
from ..rng import DEFAULT_SEED


class StatsMode(enum.Enum):
    """Initial-statistics settings used in the paper's experiments."""

    NONE = "none"  # no statistics at all (Section 4.2 setting 1)
    GENERAL = "general"  # RUNSTATS basic + distribution (setting 2)
    WORKLOAD = "workload"  # general + all workload column groups (setting 3)


@dataclass
class EngineConfig:
    """All engine knobs in one place."""

    jits: JITSConfig = field(default_factory=lambda: JITSConfig(enabled=False))
    seed: int = DEFAULT_SEED
    # A constant per-query fetch overhead, mimicking the paper's note that
    # "total time ... also includes the fetch time, which is the same in
    # all cases". Wall-clock decode time is added on top.
    fetch_overhead: float = 0.0

    @staticmethod
    def traditional() -> "EngineConfig":
        """A classic optimizer: no JITS."""
        return EngineConfig(jits=JITSConfig(enabled=False))

    @staticmethod
    def with_jits(
        s_max: float = 0.5,
        sample_size: int = 2000,
        always_collect: bool = False,
        materialize_enabled: bool = True,
        migration_interval: int = 50,
    ) -> "EngineConfig":
        return EngineConfig(
            jits=JITSConfig(
                enabled=True,
                s_max=s_max,
                sample_size=sample_size,
                always_collect=always_collect,
                materialize_enabled=materialize_enabled,
                migration_interval=migration_interval,
            )
        )
