"""Engine configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..jits import JITSConfig
from ..rng import DEFAULT_SEED


class StatsMode(enum.Enum):
    """Initial-statistics settings used in the paper's experiments."""

    NONE = "none"  # no statistics at all (Section 4.2 setting 1)
    GENERAL = "general"  # RUNSTATS basic + distribution (setting 2)
    WORKLOAD = "workload"  # general + all workload column groups (setting 3)


@dataclass
class EngineConfig:
    """All engine knobs in one place."""

    jits: JITSConfig = field(default_factory=lambda: JITSConfig(enabled=False))
    seed: int = DEFAULT_SEED
    # A constant per-query fetch overhead, mimicking the paper's note that
    # "total time ... also includes the fetch time, which is the same in
    # all cases". Wall-clock decode time is added on top.
    fetch_overhead: float = 0.0
    # Plan cache (the top of the compilation fast path). Off by default:
    # a cached plan skips the whole JITS pipeline, so workloads that study
    # per-query statistics collection should not silently stop collecting.
    plan_cache_enabled: bool = False
    plan_cache_size: int = 64
    # Fraction of a table's cardinality worth of UDI activity that moves
    # the table into a new statistics epoch (and invalidates cached plans
    # referencing it).
    plan_staleness: float = 0.05
    # Thread-pool width for execute_many()/execute_streams() when the
    # caller does not pass one. 1 keeps those APIs fully sequential.
    default_workers: int = 4
    # Lock granularity for statement execution. "table" (default) gives
    # every statement the two-level database+table hierarchy, so DML on
    # disjoint tables runs concurrently; "database" degrades to the
    # pre-existing single database-level RWLock (every write exclusive) —
    # kept as the baseline for the lock-granularity benchmark.
    lock_granularity: str = "table"
    # Simulated durable-commit latency (seconds) added inside a write
    # statement's lock span, modeling the fsync/log-force a persistent
    # engine pays before releasing locks. 0.0 (default) disables it; the
    # concurrency benchmarks set it so lock-hold overlap is measurable on
    # hosts with few cores (same spirit as fetch_overhead above).
    commit_latency: float = 0.0
    # Process-parallel scans (default off). With scan_workers > 0 the
    # engine keeps a forkserver worker pool attached to shared-memory
    # column exports; predicate scans, DML WHERE targeting, JITS sample
    # selectivity evaluation and RUNSTATS column passes shard across the
    # workers once the scanned row count reaches parallel_threshold_rows.
    # Any pool/shm failure falls back in-process with a warning.
    scan_workers: int = 0
    parallel_threshold_rows: int = 32768
    # Modeled per-row scan cost (seconds) paid inside the scan kernels —
    # the scan-path analogue of commit_latency, making worker overlap
    # measurable on few-core hosts. With scan_workers=0 the cost is still
    # paid in-process: that is the parallel-scan benchmark's sequential
    # baseline, so both engines do identical modeled work.
    scan_cost_per_row: float = 0.0
    # Mid-query adaptive re-optimization (default off). At pipeline
    # breakers (hash-join build complete, join output materialized, and —
    # in eager mode — group-by/sort inputs) the executor compares the
    # observed cardinality against the optimizer's estimate; when the
    # error ratio reaches reopt_threshold the materialized intermediate
    # is registered as an ephemeral base table with exact statistics and
    # the remaining join graph is re-planned. "conservative" triggers on
    # underestimates only (the direction that turns nested-loop probes
    # into disasters); "eager" also re-plans on overestimates and checks
    # aggregate/sort inputs. reopt_max_rounds bounds re-entries per
    # statement. "off" reproduces today's plans byte-identically.
    reopt: str = "off"
    reopt_threshold: float = 8.0
    reopt_max_rounds: int = 2
    # Self-observing production plane (default off). With observe=True the
    # engine keeps a statement-fingerprint registry (literal-free normal
    # forms with p50/p95/lock-wait/staleness aggregates), per-shard
    # zone-map synopses that let parallel scans skip refuted shards
    # (results stay byte-identical; pruning only drops provably-empty row
    # ranges), and the JIT index advisor's heat tracking. auto_index
    # escalates the advisor: "advise" scores and audits index decisions
    # without DDL, "auto" creates/drops secondary indexes under the
    # exclusive lock, capped at auto_index_budget live auto-indexes, with
    # hysteresis between the create and (lower) drop thresholds. Setting
    # auto_index != "off" implies the observation plane.
    # Attach columnar output vectors (private snapshots of the SELECT's
    # result columns) to QueryResult.vectors. The v2 streaming wire
    # protocol serializes results straight from these buffers; embedded
    # row-oriented callers can turn the copy off.
    stream_vectors: bool = True
    # MVCC snapshot reads (default on). Every mutating statement publishes
    # an immutable epoch-stamped TableSnapshot (copy-on-write chunks of
    # chunk_rows rows; only touched chunks are copied). With mvcc=True
    # SELECT/EXPLAIN/RUNSTATS pin a snapshot at statement start instead of
    # taking per-table read locks, so readers never block on (or block) a
    # writer, and ``SELECT ... AS OF <clock>`` serves any generation still
    # inside the snapshot_retention window. With mvcc=False reads take the
    # blocking per-table lock path (the benchmark baseline); snapshots are
    # still published (version keying for zone maps / shm exports relies
    # on them) but never pinned by readers.
    mvcc: bool = True
    chunk_rows: int = 65536
    snapshot_retention: int = 8
    observe: bool = False
    observe_fingerprints: int = 512
    zone_map_rows: int = 4096
    auto_index: str = "off"
    auto_index_budget: int = 3
    auto_index_interval: int = 32
    auto_index_threshold: float = 0.6
    auto_index_drop_threshold: float = 0.2

    def __post_init__(self) -> None:
        if self.lock_granularity not in ("table", "database"):
            raise ConfigError(
                "lock_granularity must be 'table' or 'database', "
                f"got {self.lock_granularity!r}"
            )
        if self.commit_latency < 0.0:
            raise ConfigError(
                f"commit_latency must be >= 0, got {self.commit_latency}"
            )
        if self.default_workers < 1:
            raise ConfigError(
                f"default_workers must be >= 1, got {self.default_workers}"
            )
        if self.plan_cache_size <= 0:
            raise ConfigError(
                f"plan_cache_size must be positive, got {self.plan_cache_size}"
            )
        if self.plan_staleness <= 0.0:
            raise ConfigError(
                f"plan_staleness must be positive, got {self.plan_staleness}"
            )
        if self.fetch_overhead < 0.0:
            raise ConfigError(
                f"fetch_overhead must be >= 0, got {self.fetch_overhead}"
            )
        if self.scan_workers < 0:
            raise ConfigError(
                f"scan_workers must be >= 0, got {self.scan_workers}"
            )
        if self.parallel_threshold_rows < 1:
            raise ConfigError(
                "parallel_threshold_rows must be >= 1, "
                f"got {self.parallel_threshold_rows}"
            )
        if self.scan_cost_per_row < 0.0:
            raise ConfigError(
                f"scan_cost_per_row must be >= 0, got {self.scan_cost_per_row}"
            )
        if self.reopt not in ("off", "conservative", "eager"):
            raise ConfigError(
                "reopt must be 'off', 'conservative' or 'eager', "
                f"got {self.reopt!r}"
            )
        if self.reopt_threshold <= 1.0:
            raise ConfigError(
                f"reopt_threshold must be > 1, got {self.reopt_threshold}"
            )
        if self.reopt_max_rounds < 1:
            raise ConfigError(
                f"reopt_max_rounds must be >= 1, got {self.reopt_max_rounds}"
            )
        if self.chunk_rows < 1:
            raise ConfigError(
                f"chunk_rows must be >= 1, got {self.chunk_rows}"
            )
        if self.snapshot_retention < 1:
            raise ConfigError(
                f"snapshot_retention must be >= 1, got {self.snapshot_retention}"
            )
        if self.observe_fingerprints < 1:
            raise ConfigError(
                "observe_fingerprints must be >= 1, "
                f"got {self.observe_fingerprints}"
            )
        if self.zone_map_rows < 1:
            raise ConfigError(
                f"zone_map_rows must be >= 1, got {self.zone_map_rows}"
            )
        if self.auto_index not in ("off", "advise", "auto"):
            raise ConfigError(
                "auto_index must be 'off', 'advise' or 'auto', "
                f"got {self.auto_index!r}"
            )
        if self.auto_index_budget < 0:
            raise ConfigError(
                f"auto_index_budget must be >= 0, got {self.auto_index_budget}"
            )
        if self.auto_index_interval < 1:
            raise ConfigError(
                "auto_index_interval must be >= 1, "
                f"got {self.auto_index_interval}"
            )
        if not 0.0 < self.auto_index_threshold <= 1.0:
            raise ConfigError(
                "auto_index_threshold must be in (0, 1], "
                f"got {self.auto_index_threshold}"
            )
        if not 0.0 <= self.auto_index_drop_threshold < self.auto_index_threshold:
            raise ConfigError(
                "auto_index_drop_threshold must be in [0, auto_index_threshold), "
                f"got {self.auto_index_drop_threshold}"
            )

    @staticmethod
    def traditional() -> "EngineConfig":
        """A classic optimizer: no JITS."""
        return EngineConfig(jits=JITSConfig(enabled=False))

    @staticmethod
    def with_jits(
        s_max: float = 0.5,
        sample_size: int = 2000,
        always_collect: bool = False,
        materialize_enabled: bool = True,
        migration_interval: int = 50,
        plan_cache_enabled: bool = False,
    ) -> "EngineConfig":
        return EngineConfig(
            jits=JITSConfig(
                enabled=True,
                s_max=s_max,
                sample_size=sample_size,
                always_collect=always_collect,
                materialize_enabled=materialize_enabled,
                migration_interval=migration_interval,
            ),
            plan_cache_enabled=plan_cache_enabled,
        )

    @staticmethod
    def fastpath(
        s_max: float = 0.5,
        sample_size: int = 2000,
        migration_interval: int = 50,
    ) -> "EngineConfig":
        """JITS with every compilation cache turned on, plan cache included."""
        return EngineConfig.with_jits(
            s_max=s_max,
            sample_size=sample_size,
            migration_interval=migration_interval,
            plan_cache_enabled=True,
        )
