"""Concurrency primitives for the multi-client engine.

Three building blocks back the session layer:

* :class:`AtomicCounter` — the engine's logical statement clock. Every
  statement draws a unique, monotonically increasing timestamp from it;
  under concurrency the draw order *is* the serialization order of the
  JITS bookkeeping (``now`` values never repeat or go backwards).
* :class:`RWLock` — a writer-preferring reader–writer lock, used both as
  the database *structure* lock and as each table's data lock.
* :class:`LockManager` — the two-level hierarchy the engine actually
  acquires through. Every statement first takes the database lock in a
  shared ("intent") mode, then the per-table locks it needs in sorted
  name order; database-exclusive mode (DDL, RUNSTATS, statistics setup)
  takes only the database lock in write mode and therefore excludes
  every other statement.

Deadlock freedom: the database lock is always acquired before any table
lock, table locks are always acquired in sorted name order, and no code
path acquires a second batch of locks while holding a first — so the
wait-for graph cannot contain a cycle. Writer preference at both levels
means neither a waiting exclusive operation nor a waiting table writer
can be starved by a stream of readers. Nothing here is reentrant — the
engine acquires exactly one lock scope per statement.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional


class AtomicCounter:
    """A monotone integer counter safe to bump from many threads."""

    __slots__ = ("_lock", "_value")

    def __init__(self, initial: int = 0):
        self._lock = threading.Lock()
        self._value = initial

    def next(self) -> int:
        """Increment and return the new value (a unique timestamp)."""
        with self._lock:
            self._value += 1
            return self._value

    def add(self, n: int) -> int:
        """Add ``n`` and return the new value."""
        with self._lock:
            self._value += n
            return self._value

    @property
    def value(self) -> int:
        return self._value


class RWLock:
    """A writer-preferring reader–writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone. A waiting writer blocks *new* readers, so writers cannot
    starve under read-heavy traffic. Not reentrant on either side.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Context managers
    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class LockManager:
    """Two-level (database, table) lock hierarchy for statement execution.

    Scopes, from weakest to strongest:

    * :meth:`read_tables` — SELECT/EXPLAIN: database shared + read locks
      on every referenced table. Concurrent with everything except
      writers on the same tables and exclusive operations.
    * :meth:`write_tables` — DML: database shared + write locks on the
      target tables (sorted order). DML on *disjoint* tables runs
      concurrently; DML on the same table serializes.
    * :meth:`exclusive` — DDL, RUNSTATS and statistics setup: the
      database lock in write mode. Excludes every other statement, so
      cross-table invariants (the table dict itself, whole-database
      statistics passes) never see partial state.

    With ``granular=False`` the manager degrades to the pre-existing
    database-level behaviour (reads share one lock, every write is
    exclusive) — the baseline the lock-granularity benchmark compares
    against.

    With ``snapshot_reads=True`` (MVCC mode) the read scope stops taking
    per-table locks entirely: readers operate on a pinned immutable
    :class:`~repro.storage.snapshot.TableSnapshot`, so only the database
    intent lock is needed (DDL still excludes readers — the table *dict*
    is not versioned, only table contents are). SELECTs then never block
    on, nor block, a concurrent writer's per-table exclusive lock.
    """

    def __init__(self, granular: bool = True, snapshot_reads: bool = False):
        self.granular = granular
        self.snapshot_reads = snapshot_reads
        # Database lock: shared ("intent") mode for per-table statements,
        # write mode for exclusive operations.
        self.database = RWLock()
        self._table_locks: Dict[str, RWLock] = {}
        self._registry = threading.Lock()

    def table_lock(self, name: str) -> RWLock:
        """The lock for one table, created on first use.

        Locks are keyed by lower-cased name and never discarded — a
        dropped-and-recreated table reuses its lock, which is harmless
        and keeps the registry race-free.
        """
        key = name.lower()
        lock = self._table_locks.get(key)
        if lock is None:
            with self._registry:
                lock = self._table_locks.setdefault(key, RWLock())
        return lock

    def _sorted_locks(self, names: Iterable[str]) -> List[RWLock]:
        return [self.table_lock(n) for n in sorted({n.lower() for n in names})]

    @contextmanager
    def read_tables(self, names: Optional[Iterable[str]]):
        """Reader scope over ``names``; ``None`` falls back to exclusive.

        The fallback covers statements whose table set cannot be
        determined before binding (unknown tables, odd FROM shapes) —
        they are about to raise a binding error anyway, and exclusive
        mode is always safe.
        """
        if names is None:
            with self.database.write_locked():
                yield
            return
        if self.snapshot_reads:
            # MVCC read path: the caller pins table snapshots, so no data
            # lock is needed — just exclude structural (DDL) changes.
            with self.database.read_locked():
                yield
            return
        if not self.granular:
            with self.database.read_locked():
                yield
            return
        self.database.acquire_read()
        held: List[RWLock] = []
        try:
            for lock in self._sorted_locks(names):
                lock.acquire_read()
                held.append(lock)
            yield
        finally:
            for lock in reversed(held):
                lock.release_read()
            self.database.release_read()

    @contextmanager
    def write_tables(self, names: Iterable[str]):
        """Writer scope over ``names`` (DML); sorted-order acquisition."""
        if not self.granular:
            with self.database.write_locked():
                yield
            return
        self.database.acquire_read()
        held: List[RWLock] = []
        try:
            for lock in self._sorted_locks(names):
                lock.acquire_write()
                held.append(lock)
            yield
        finally:
            for lock in reversed(held):
                lock.release_write()
            self.database.release_read()

    @contextmanager
    def exclusive(self):
        """Database-exclusive scope (DDL, RUNSTATS, statistics setup)."""
        with self.database.write_locked():
            yield
