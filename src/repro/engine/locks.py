"""Concurrency primitives for the multi-client engine.

Two building blocks back the session layer:

* :class:`AtomicCounter` — the engine's logical statement clock. Every
  statement draws a unique, monotonically increasing timestamp from it;
  under concurrency the draw order *is* the serialization order of the
  JITS bookkeeping (``now`` values never repeat or go backwards).
* :class:`RWLock` — the database-level reader–writer lock. SELECT and
  EXPLAIN compile and execute concurrently as readers (the hot numpy
  kernels release the GIL); DML, DDL, RUNSTATS and statistics migration
  take the writer side and run exclusively.

The RW lock is writer-preferring: once a writer is waiting, new readers
queue behind it, so a stream of SELECTs cannot starve DML. Neither side
is reentrant — the engine acquires the lock exactly once per statement
and never nests acquisitions (see the lock-order notes in the README's
concurrency section).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class AtomicCounter:
    """A monotone integer counter safe to bump from many threads."""

    __slots__ = ("_lock", "_value")

    def __init__(self, initial: int = 0):
        self._lock = threading.Lock()
        self._value = initial

    def next(self) -> int:
        """Increment and return the new value (a unique timestamp)."""
        with self._lock:
            self._value += 1
            return self._value

    def add(self, n: int) -> int:
        """Add ``n`` and return the new value."""
        with self._lock:
            self._value += n
            return self._value

    @property
    def value(self) -> int:
        return self._value


class RWLock:
    """A writer-preferring reader–writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone. A waiting writer blocks *new* readers, so writers cannot
    starve under read-heavy traffic. Not reentrant on either side.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Context managers
    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
