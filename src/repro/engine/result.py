"""Query results with per-phase timings."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..executor.feedback import FeedbackRecord
from ..executor.reopt import ReoptEvent
from ..jits import CompilationReport
from ..optimizer.plans import PlanNode
from ..types import Value

PHASE_COMPILE = "compile"
PHASE_EXECUTE = "execute"
PHASE_FETCH = "fetch"


@dataclass
class QueryResult:
    """Outcome of one statement."""

    statement_type: str  # select / insert / update / delete / ddl
    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[Value, ...]] = field(default_factory=list)
    affected_rows: int = 0
    timings: Dict[str, float] = field(default_factory=dict)
    plan: Optional[PlanNode] = None
    jits_report: Optional[CompilationReport] = None
    feedback: List[FeedbackRecord] = field(default_factory=list)
    # Mid-query plan switches (empty unless EngineConfig.reopt fired).
    reopt_events: List[ReoptEvent] = field(default_factory=list)
    # Columnar output (one ColumnVector per column, aligned with
    # ``columns``), attached for SELECTs when EngineConfig.stream_vectors
    # is on. The arrays are private copies snapshotted inside the
    # statement's lock scope, so the v2 wire protocol can serialize them
    # after the locks release without racing concurrent DML.
    vectors: Optional[list] = None
    # MVCC provenance: the snapshot generations this statement observed
    # (SELECT: the pinned read view) or published (DML: the generations
    # its mutations became visible at), as ``{table: (epoch, stamp)}``.
    # The stamp is the engine statement clock an ``AS OF`` query can
    # replay this exact state with.
    snapshots: Optional[Dict[str, Tuple[int, int]]] = None

    @property
    def row_count(self) -> int:
        return len(self.rows) if self.rows else self.affected_rows

    @property
    def compile_time(self) -> float:
        return self.timings.get(PHASE_COMPILE, 0.0)

    @property
    def execution_time(self) -> float:
        return self.timings.get(PHASE_EXECUTE, 0.0)

    @property
    def fetch_time(self) -> float:
        return self.timings.get(PHASE_FETCH, 0.0)

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())

    def explain(self) -> str:
        if self.plan is None:
            return f"<{self.statement_type}>"
        return self.plan.explain()

    def modeled_execution_cost(self) -> float:
        """Deterministic plan-quality metric: the executed plan re-costed
        with its actual cardinalities (see ``actual_plan_cost``)."""
        if self.plan is None:
            return 0.0
        from ..optimizer.plans import actual_plan_cost

        return actual_plan_cost(self.plan)
