"""The engine facade: the full compile/execute pipeline of Figure 1.

``Engine.execute(sql)`` runs parse -> rewrite -> bind (QGM) -> JITS
(query analysis, sensitivity analysis, statistics collection) -> plan
generation & costing -> execution -> fetch -> feedback -> migration tick,
and reports wall-clock time per phase exactly the way the paper's Table 3
does (compilation / execution / fetch).

The engine is thread-safe and serves many clients at once. Each client
holds a :class:`~repro.engine.session.Session` (``engine.session()``);
``engine.execute(sql)`` runs on a built-in default session for
single-client use. Concurrency control is a two-level lock hierarchy
(:class:`~repro.engine.locks.LockManager`: database intent lock +
per-table reader–writer locks, database-exclusive only for DDL and
whole-database statistics passes) plus RCU-published statistics stores,
so the optimizer's statistics reads are lock-free — see the README's
concurrency-model section.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..catalog import (
    SystemCatalog,
    collect_workload_statistics,
    run_runstats,
)
from ..errors import BindingError, ConfigError, ExecutionError, ReproError
from ..executor import PlanExecutor, collect_feedback
from ..executor.expr import eval_expr
from ..executor.parallel import ParallelScanManager
from ..executor.reopt import (
    CheckpointHit,
    ReoptEvent,
    ReoptState,
    ReoptTelemetry,
)
from ..executor.vector import Batch, ColumnVector, batch_from_table
from ..jits import (
    CompilationReport,
    JustInTimeStatistics,
    analyze_query,
    table_stats_epoch,
)
from ..observe import IndexAdvisor, ObservationPlane
from ..optimizer import Optimizer, StatsContext
from ..predicates import group_mask
from ..rng import make_rng
from ..schema import ColumnDef, TableSchema
from ..sql import ast, build_query_graph, parse
from ..sql.qgm import QueryBlock
from ..storage import Database, TableSnapshot
from ..types import DataType
from .config import EngineConfig, StatsMode
from .locks import AtomicCounter, LockManager, RWLock
from .plancache import PlanCache
from .result import PHASE_COMPILE, PHASE_EXECUTE, PHASE_FETCH, QueryResult
from .session import Session


class Engine:
    """One database engine instance."""

    def __init__(
        self,
        database: Optional[Database] = None,
        config: Optional[EngineConfig] = None,
    ):
        self.database = database if database is not None else Database()
        self.config = config or EngineConfig.traditional()
        # MVCC snapshot knobs: chunk size applies to tables created from
        # here on; the retention window retunes existing tables too.
        self.database.configure_snapshots(
            chunk_rows=self.config.chunk_rows,
            snapshot_retention=self.config.snapshot_retention,
        )
        self.catalog = SystemCatalog()
        self.rng = make_rng(self.config.seed)
        # Self-observing production plane (fingerprints + zone maps +
        # index advisor). auto_index != "off" implies observation: the
        # advisor scores fingerprint-derived predicate heat.
        observe_active = (
            self.config.observe or self.config.auto_index != "off"
        )
        self.observe: Optional[ObservationPlane] = (
            ObservationPlane(
                fingerprint_capacity=self.config.observe_fingerprints,
                zone_rows=self.config.zone_map_rows,
                advisor=IndexAdvisor(
                    mode=self.config.auto_index,
                    interval=self.config.auto_index_interval,
                    threshold=self.config.auto_index_threshold,
                    drop_threshold=self.config.auto_index_drop_threshold,
                    budget=self.config.auto_index_budget,
                ),
            )
            if observe_active
            else None
        )
        # Process-parallel scan machinery. Also built (poolless) when only
        # the modeled scan cost is set — the sequential baseline of the
        # parallel-scan benchmark, running the same sharded kernels
        # in-process — or when the observe plane is on, so zone-map
        # pruning has a ranged dispatch path to hook into.
        self.parallel: Optional[ParallelScanManager] = (
            ParallelScanManager(
                workers=self.config.scan_workers,
                threshold_rows=self.config.parallel_threshold_rows,
                cost_per_row=self.config.scan_cost_per_row,
                zone_maps=(
                    self.observe.zone_maps
                    if self.observe is not None
                    else None
                ),
            )
            if (
                self.config.scan_workers > 0
                or self.config.scan_cost_per_row > 0.0
                or observe_active
            )
            else None
        )
        self.jits = JustInTimeStatistics(
            self.database,
            self.catalog,
            self.config.jits,
            self.rng,
            parallel=self.parallel,
        )
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(self.config.plan_cache_size)
            if self.config.plan_cache_enabled
            else None
        )
        # Mid-query re-optimization counters (per-engine, thread-safe).
        self.reopt_telemetry: Optional[ReoptTelemetry] = (
            ReoptTelemetry() if self.config.reopt != "off" else None
        )
        # Logical statement clock: every statement draws a unique,
        # monotone timestamp; the draw order is the serialization order
        # of the JITS bookkeeping.
        self._clock = AtomicCounter()
        self._statements = AtomicCounter()
        self._session_ids = AtomicCounter()
        # Two-level lock hierarchy: database intent lock + per-table
        # locks. SELECT/EXPLAIN read-lock their tables, DML write-locks
        # its target, DDL/RUNSTATS take the database exclusively.
        self.locks = LockManager(
            granular=self.config.lock_granularity == "table",
            snapshot_reads=self.config.mvcc,
        )
        self._default_session = Session(self, session_id=0)

    @property
    def rwlock(self) -> RWLock:
        """The database-level lock (compatibility alias).

        Holding it in write mode still excludes every statement — table
        locks are only taken under a shared database lock — so external
        pause/drain code keeps working unchanged.
        """
        return self.locks.database

    @property
    def clock(self) -> int:
        """Current logical statement timestamp (monotone)."""
        return self._clock.value

    @property
    def statements_executed(self) -> int:
        return self._statements.value

    # ------------------------------------------------------------------
    # MVCC read views
    # ------------------------------------------------------------------
    @contextmanager
    def read_view(
        self,
        tables: Optional[Iterable[str]],
        as_of: Optional[int] = None,
    ):
        """Pin one snapshot generation per table for a reader statement.

        Yields ``{name: TableSnapshot}`` (or ``None`` when MVCC is off or
        the table set is unknown — the caller then runs on live tables
        under whatever locks it holds). While the scope is active the
        current thread's ``database.table()`` lookups resolve to the
        pinned generations, so the whole read pipeline — binder, JITS
        sampling, optimizer, executor, parallel scans — observes one
        immutable statement-consistent state. ``as_of`` pins, per table,
        the newest generation whose publish stamp is <= the given
        statement clock (time travel); pinned generations are refcounted
        and released on exit.
        """
        if tables is None or not self.config.mvcc:
            if as_of is not None:
                raise ExecutionError(
                    "AS OF requires MVCC snapshots (EngineConfig.mvcc=True) "
                    "and a resolvable table set"
                )
            yield None
            return
        pinned: Dict[str, TableSnapshot] = {}
        try:
            for name in tables:
                live = self.database.live_table(name)
                pinned[name.lower()] = (
                    live.pin_current()
                    if as_of is None
                    else live.pin_as_of(as_of)
                )
            with self.database.read_view(pinned):
                yield pinned
        finally:
            for snap in pinned.values():
                snap.release()

    # ------------------------------------------------------------------
    # Sessions and statement dispatch
    # ------------------------------------------------------------------
    def session(self) -> Session:
        """A new client session; one per concurrent client thread."""
        return Session(self, self._session_ids.next())

    def shutdown(self) -> None:
        """Release external resources (worker pool, shared memory).

        Idempotent; also runs via atexit hooks inside the parallel
        manager, but tests and long-lived embedders should call it so
        /dev/shm segments are unlinked promptly.
        """
        if self.parallel is not None:
            self.parallel.close()

    def execute(self, sql: str) -> QueryResult:
        """Execute one SQL statement and report per-phase timings.

        Runs on the engine's built-in default session; concurrent
        clients should each call :meth:`session` instead.
        """
        return self._default_session.execute(sql)

    def execute_many(
        self,
        statements: Sequence[str],
        workers: Optional[int] = None,
    ) -> List[QueryResult]:
        """Execute independent statements across a thread pool.

        Each statement is one client request; results come back aligned
        with the input order. Each worker thread runs its own session,
        so UDI shards never interleave within a statement.
        """
        if not statements:
            return []
        workers = self._resolve_workers(workers)
        if workers <= 1 or len(statements) <= 1:
            return [self.execute(sql) for sql in statements]
        thread_state = threading.local()

        def run(indexed: Tuple[int, str]) -> Tuple[int, QueryResult]:
            index, sql = indexed
            session = getattr(thread_state, "session", None)
            if session is None:
                session = self.session()
                thread_state.session = session
            return index, session.execute(sql)

        results: List[Optional[QueryResult]] = [None] * len(statements)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for index, result in pool.map(run, enumerate(statements)):
                results[index] = result
        return results  # type: ignore[return-value]

    def execute_streams(
        self,
        streams: Sequence[Sequence[str]],
        workers: Optional[int] = None,
    ) -> List[List[QueryResult]]:
        """Execute per-client statement streams concurrently.

        Every stream keeps its internal order (it runs on one session);
        different streams interleave. Returns one result list per
        stream, aligned with the input.
        """
        if not streams:
            return []
        workers = self._resolve_workers(workers, default=len(streams))
        if workers <= 1 or len(streams) <= 1:
            return [self.session().execute_all(s) for s in streams]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda s: self.session().execute_all(s), streams)
            )

    def _resolve_workers(
        self, workers: Optional[int], default: Optional[int] = None
    ) -> int:
        if workers is None:
            workers = (
                default
                if default is not None
                else self.config.default_workers
            )
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        return workers

    def _dispatch_write(
        self, statement: ast.Statement, parse_time: float, now: int
    ) -> QueryResult:
        """Run a non-SELECT statement. Caller holds its lock scope."""
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(statement, parse_time)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(statement, parse_time)
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement, parse_time)
        if isinstance(statement, ast.CreateTableStatement):
            return self._execute_create_table(statement, parse_time)
        if isinstance(statement, ast.DropTableStatement):
            self.database.drop_table(statement.table)
            self.catalog.clear_table(statement.table)
            self.jits.drop_table(statement.table)
            if self.plan_cache is not None:
                self.plan_cache.drop_table(statement.table)
            if self.parallel is not None:
                self.parallel.release_table(statement.table)
            if self.observe is not None:
                self.observe.release_table(statement.table)
            return QueryResult(
                statement_type="ddl", timings={PHASE_COMPILE: parse_time}
            )
        if isinstance(statement, ast.CreateIndexStatement):
            if statement.kind == "sorted":
                self.database.create_sorted_index(statement.table, statement.column)
            else:
                self.database.create_hash_index(statement.table, statement.column)
            # New access paths change what the optimizer would pick.
            if self.plan_cache is not None:
                self.plan_cache.clear()
            return QueryResult(
                statement_type="ddl", timings={PHASE_COMPILE: parse_time}
            )
        raise ReproError(f"unsupported statement {type(statement).__name__}")

    def explain(self, sql: str) -> str:
        """Plan text for a SELECT without executing it."""
        return self._default_session.explain(sql)

    def _stats_epochs(self) -> Tuple[int, int, int, int]:
        """The (catalog, archive, history, residual) publication epochs."""
        jits = self.jits
        return (
            self.catalog.version,
            jits.archive.version,
            jits.history.version,
            jits.residual_store.version,
        )

    def stats_snapshot(self) -> Dict[str, object]:
        """A JSON-serializable snapshot of engine/JITS counters.

        Reads one consistent RCU epoch: the statistics stores publish
        immutable snapshots, so this seqlock-style loop — read the epoch
        tuple, build, re-read, retry if any store published meanwhile —
        never returns a torn view across archive/history/catalog. Under
        sustained writes it falls back to the last attempt rather than
        spinning forever.
        """
        for _ in range(8):
            before = self._stats_epochs()
            snapshot = self._build_stats_snapshot()
            if self._stats_epochs() == before:
                break
        return snapshot

    def _build_stats_snapshot(self) -> Dict[str, object]:
        jits = self.jits
        snapshot: Dict[str, object] = {
            "engine": {
                "statements_executed": self.statements_executed,
                "clock": self.clock,
            },
            "tables": {
                table.name: table.row_count
                for table in self.database.tables()
            },
            "jits": {
                "enabled": jits.config.enabled,
                "s_max": jits.config.s_max,
                "collections": jits.total_collections,
                "archive_histograms": len(jits.archive),
                "archive_cells": jits.archive.total_cells,
                "history_entries": len(jits.history),
                "residual_stats": len(jits.residual_store),
                "migrations": jits.total_migrations,
                "deferred_recalibrations": jits.archive.deferred_recalibrations,
            },
        }
        if jits.sample_cache is not None:
            cache = jits.sample_cache
            snapshot["sample_cache"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "invalidations": cache.invalidations,
            }
        if jits.mask_cache is not None:
            cache = jits.mask_cache
            snapshot["mask_cache"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "entries": len(cache),
            }
        if self.plan_cache is not None:
            cache = self.plan_cache
            snapshot["plan_cache"] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "invalidations": cache.invalidations,
                "plans": len(cache),
            }
        if self.parallel is not None:
            snapshot["parallel"] = self.parallel.stats()
        if self.reopt_telemetry is not None:
            snapshot["reopt"] = self.reopt_telemetry.snapshot()
        if self.observe is not None:
            snapshot["observe"] = self.observe.snapshot()
        return snapshot

    def fingerprint_snapshot(
        self,
        limit: int = 20,
        sort_by: str = "total_ms",
        offset: int = 0,
    ) -> Dict[str, object]:
        """Aggregated per-fingerprint statistics, top-N by one metric.

        Raises ``ValueError`` for an unknown sort key. The server's
        ``fingerprints`` frame clamps ``limit`` before calling this, so a
        response can never approach the frame cap.
        """
        if self.observe is None:
            return {
                "enabled": False,
                "fingerprints": [],
                "summary": {},
            }
        return {
            "enabled": True,
            "fingerprints": self.observe.fingerprint_top(
                limit=limit, sort_by=sort_by, offset=offset
            ),
            "summary": self.observe.fingerprints.summary(),
        }

    def _explain_select(self, statement: ast.SelectStatement, now: int) -> str:
        """EXPLAIN pipeline. Caller holds the read scope."""
        block = build_query_graph(statement, self.database)
        if statement.as_of is not None:
            profile = None  # time travel: no JITS collection (see SELECT)
        else:
            profile, _ = self.jits.before_optimize(block, now)
        optimized = Optimizer(self._stats_context(profile, now)).optimize(block)
        return optimized.explain()

    # ------------------------------------------------------------------
    # SELECT pipeline
    # ------------------------------------------------------------------
    def _stats_context(self, profile, now: int) -> StatsContext:
        # Pin one catalog epoch for the whole compilation: estimation
        # reads hit the immutable snapshot (plain attribute loads), and a
        # concurrent migration/RUNSTATS publishing mid-optimize cannot
        # show this query a mix of old and new statistics.
        return StatsContext(
            database=self.database,
            catalog=self.catalog.snapshot(),
            profile=profile,
            archive=self.jits.archive if self.config.jits.enabled else None,
            residuals=(
                self.jits.residual_store if self.config.jits.enabled else None
            ),
            now=now,
        )

    def _statement_tables(
        self, statement: ast.SelectStatement
    ) -> Optional[Tuple[str, ...]]:
        """Every base table under a SELECT, or None if one is unknown."""
        names: List[str] = []
        stack: List[ast.SelectStatement] = [statement]
        while stack:
            select = stack.pop()
            for item in select.from_items:
                if isinstance(item, ast.TableRef):
                    name = item.name.lower()
                    if not self.database.has_table(name):
                        return None
                    names.append(name)
                elif isinstance(item, ast.DerivedTable):
                    stack.append(item.select)
                else:  # unknown FROM shape: treat as uncacheable
                    return None
        return tuple(sorted(set(names)))

    def _plan_fingerprint(self, tables: Tuple[str, ...]) -> Tuple:
        """Statistics the optimizer would consume for these tables, coarsened
        to epochs: the cached plan stays valid until one of them moves."""
        parts: List[Tuple] = [("catalog", self.catalog.version)]
        if self.config.jits.enabled:
            parts.append(("archive", self.jits.archive.version))
        for name in tables:
            table = self.database.table(name)
            step = int(self.config.plan_staleness * max(table.row_count, 1))
            parts.append((name, table_stats_epoch(table, step)))
        return tuple(parts)

    def _execute_select(
        self,
        statement: ast.SelectStatement,
        parse_time: float,
        now: int,
        pinned: Optional[Dict[str, TableSnapshot]] = None,
    ) -> QueryResult:
        """SELECT pipeline. Caller holds the read scope (and, under MVCC,
        has installed the pinned read view this thread resolves through)."""
        time_travel = statement.as_of is not None
        compile_started = time.perf_counter()
        optimized = None
        template = fingerprint = tables = None
        if self.plan_cache is not None and not time_travel:
            # AST nodes are plain dataclasses, so repr() is a value-based
            # normal form of the parsed query — the cache template.
            # Time-travel queries never touch the cache: their plans are
            # costed against a historical generation.
            tables = self._statement_tables(statement)
            if tables is not None:
                template = repr(statement)
                fingerprint = self._plan_fingerprint(tables)
                optimized = self.plan_cache.lookup(template, fingerprint)
        optimizer: Optional[Optimizer] = None
        if optimized is not None:
            # Fast path: the statistics this plan was costed with have not
            # moved, so the QGM/JITS/optimizer pipeline is skipped entirely.
            jits_report = CompilationReport(plan_cache_hit=True)
        else:
            block = build_query_graph(statement, self.database)
            if time_travel:
                # Historical reads bypass the JITS pipeline entirely: the
                # stats stores describe the *current* data, and a query
                # over an old generation must neither consume nor pollute
                # them (no collection, no feedback, no migration tick).
                profile, jits_report = None, CompilationReport()
            else:
                profile, jits_report = self.jits.before_optimize(block, now)
            optimizer = Optimizer(self._stats_context(profile, now))
            optimized = optimizer.optimize(block)
            if self.plan_cache is not None and template is not None:
                # Re-fingerprint after compiling: collection may have bumped
                # the catalog/archive versions, and the plan reflects that.
                self.plan_cache.store(
                    template, self._plan_fingerprint(tables), optimized, tables
                )
        if template is not None:
            # The cached plan object is shared between every statement that
            # hits (or just stored) it; the executor annotates plan nodes
            # with actual cardinalities, so each execution runs against a
            # private node tree.
            optimized = optimized.clone_for_execution()
        compile_time = parse_time + (time.perf_counter() - compile_started)

        execute_started = time.perf_counter()
        reopt_state: Optional[ReoptState] = (
            ReoptState(
                self.config.reopt,
                self.config.reopt_threshold,
                self.config.reopt_max_rounds,
            )
            if self.config.reopt != "off"
            else None
        )
        base_optimized = optimized  # round-0 plan: owns the scan estimates
        while True:
            try:
                execution = PlanExecutor(
                    self.database, parallel=self.parallel, reopt=reopt_state
                ).execute(optimized)
                break
            except CheckpointHit as hit:
                # A pipeline breaker observed a cardinality far from its
                # estimate. Register the materialized intermediate as an
                # ephemeral base table with exact statistics and re-enter
                # the optimizer over the remaining join graph. The whole
                # exchange happens inside this statement's read-lock
                # scope, so tables and statistics epochs are stable.
                switch_started = time.perf_counter()
                reopt_state.register(hit)
                if optimizer is None:
                    # Plan-cache hit: no compilation context exists yet;
                    # re-entry pins a fresh catalog snapshot (profile-less
                    # — the JITS pipeline is not re-run mid-query).
                    optimizer = Optimizer(self._stats_context(None, now))
                optimized = optimizer.reoptimize(
                    base_optimized.block, reopt_state.live_intermediates()
                )
                reopt_state.record_event(
                    ReoptEvent(
                        round=reopt_state.rounds_used,
                        kind=hit.kind,
                        operator=hit.node_label,
                        est_rows=hit.est_rows,
                        actual_rows=hit.actual_rows,
                        ratio=reopt_state.error_ratio(
                            hit.est_rows, hit.actual_rows
                        ),
                        switch_seconds=time.perf_counter() - switch_started,
                        covered_aliases=hit.covered_aliases,
                    )
                )
        execute_time = time.perf_counter() - execute_started

        fetch_started = time.perf_counter()
        rows = execution.rows()
        vectors: Optional[List[ColumnVector]] = None
        if self.config.stream_vectors:
            # Snapshot the output columns while this statement still holds
            # its read scope: result batches may alias live table arrays
            # (batch_from_table with rows=None), and the v2 wire protocol
            # serializes these buffers after the locks release. String
            # dictionaries are append-only, so sharing the reference is
            # safe.
            vectors = []
            for name in execution.output_names:
                vec = execution.batch.column("", name)
                vectors.append(
                    ColumnVector(
                        np.array(vec.values, copy=True),
                        vec.dtype,
                        vec.dictionary,
                    )
                )
        fetch_time = (
            time.perf_counter() - fetch_started + self.config.fetch_overhead
        )

        if time_travel:
            # No feedback from the past: cardinalities observed against a
            # historical generation would corrupt StatHistory for the
            # current data.
            feedback = []
        elif reopt_state is not None:
            # Feedback always compares the *round-0* estimates against the
            # union of observations across plan segments — keyed by alias,
            # so every observed quantifier feeds StatHistory exactly once
            # even when a plan switch re-executed part of the tree.
            feedback = collect_feedback(
                base_optimized,
                execution,
                observations=reopt_state.merged_observations(
                    execution.scan_observations
                ),
            )
            self.reopt_telemetry.record_statement(reopt_state)
        else:
            feedback = collect_feedback(optimized, execution)
        if not time_travel:
            self.jits.after_execute(feedback, now)
            self.jits.tick(now)

        return QueryResult(
            statement_type="select",
            columns=execution.output_names,
            rows=rows,
            timings={
                PHASE_COMPILE: compile_time,
                PHASE_EXECUTE: execute_time,
                PHASE_FETCH: fetch_time,
            },
            plan=optimized.root,
            jits_report=jits_report,
            feedback=feedback,
            reopt_events=list(reopt_state.events) if reopt_state else [],
            vectors=vectors,
            snapshots=(
                {
                    name: (snap.version, snap.stamp)
                    for name, snap in pinned.items()
                }
                if pinned is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _execute_insert(
        self, statement: ast.InsertStatement, parse_time: float
    ) -> QueryResult:
        table = self.database.table(statement.table)
        names = (
            [c.lower() for c in statement.columns]
            if statement.columns is not None
            else [c.lower() for c in table.schema.column_names()]
        )
        started = time.perf_counter()
        rows = []
        for literals in statement.rows:
            if len(literals) != len(names):
                raise BindingError(
                    f"INSERT row has {len(literals)} values for {len(names)} columns"
                )
            rows.append({n: l.value for n, l in zip(names, literals)})
        table.insert_rows(rows)
        return QueryResult(
            statement_type="insert",
            affected_rows=len(rows),
            timings={
                PHASE_COMPILE: parse_time,
                PHASE_EXECUTE: time.perf_counter() - started,
            },
        )

    def _dml_target_rows(
        self, table_name: str, where: Optional[ast.BoolExpr]
    ) -> Tuple[np.ndarray, QueryBlock]:
        """Row positions matching a DML WHERE clause."""
        select = ast.SelectStatement(
            items=[],
            from_items=[ast.TableRef(name=table_name)],
            star=True,
            where=where,
        )
        block = build_query_graph(select, self.database)
        alias = next(iter(block.quantifiers))
        table = self.database.table(table_name)
        if where is None:
            rows = np.arange(table.row_count, dtype=np.int64)
        else:
            predicates = block.local_predicates_for(alias)
            rows = None
            if self.parallel is not None:
                rows = self.parallel.scan_rows(table, predicates)
            if rows is None:
                mask = group_mask(table, predicates)
                rows = np.flatnonzero(mask).astype(np.int64)
            residuals = block.scan_residuals.get(alias, [])
            if residuals:
                batch = batch_from_table(table, alias, rows)
                keep = np.ones(len(batch), dtype=bool)
                from ..executor.expr import eval_bool

                for residual in residuals:
                    keep &= eval_bool(residual, batch)
                rows = rows[keep]
        return rows, block

    def _execute_update(
        self, statement: ast.UpdateStatement, parse_time: float
    ) -> QueryResult:
        compile_started = time.perf_counter()
        table = self.database.table(statement.table)
        rows, block = self._dml_target_rows(statement.table, statement.where)
        alias = next(iter(block.quantifiers))
        compile_time = parse_time + (time.perf_counter() - compile_started)

        started = time.perf_counter()
        if len(rows):
            batch = batch_from_table(table, alias, rows)
            physical: Dict[str, np.ndarray] = {}
            binder_visible = {
                c.name.lower(): c.dtype for c in table.schema.columns
            }
            for column, expr in statement.assignments:
                column = column.lower()
                if column not in binder_visible:
                    raise BindingError(
                        f"unknown column {column!r} in UPDATE {table.name}"
                    )
                qualified = _qualify_for_alias(expr, alias, binder_visible)
                vector = eval_expr(qualified, batch)
                physical[column] = self._coerce_assignment(table, column, vector)
            table.apply_update(rows, physical)
        return QueryResult(
            statement_type="update",
            affected_rows=len(rows),
            timings={
                PHASE_COMPILE: compile_time,
                PHASE_EXECUTE: time.perf_counter() - started,
            },
        )

    def _coerce_assignment(self, table, column: str, vector) -> np.ndarray:
        target = table.column(column)
        if target.dtype is DataType.STRING:
            if vector.dictionary is None:
                raise ExecutionError(
                    f"assigning numeric value to string column {column!r}"
                )
            if vector.dictionary is target.dictionary:
                return vector.values
            return np.array(
                [target.dictionary.encode(v) for v in vector.decode()],
                dtype=np.int64,
            )
        if vector.dtype is DataType.STRING:
            raise ExecutionError(
                f"assigning string value to numeric column {column!r}"
            )
        if target.dtype is DataType.INT:
            return np.round(vector.values).astype(np.int64)
        return vector.values.astype(np.float64)

    def _execute_delete(
        self, statement: ast.DeleteStatement, parse_time: float
    ) -> QueryResult:
        compile_started = time.perf_counter()
        table = self.database.table(statement.table)
        rows, _ = self._dml_target_rows(statement.table, statement.where)
        compile_time = parse_time + (time.perf_counter() - compile_started)
        started = time.perf_counter()
        deleted = table.delete_rows(rows)
        return QueryResult(
            statement_type="delete",
            affected_rows=deleted,
            timings={
                PHASE_COMPILE: compile_time,
                PHASE_EXECUTE: time.perf_counter() - started,
            },
        )

    def _execute_create_table(
        self, statement: ast.CreateTableStatement, parse_time: float
    ) -> QueryResult:
        schema = TableSchema(
            name=statement.table,
            columns=[ColumnDef(c.name, c.dtype) for c in statement.columns],
            primary_key=statement.primary_key,
        )
        self.database.create_table(schema)
        return QueryResult(
            statement_type="ddl", timings={PHASE_COMPILE: parse_time}
        )

    # ------------------------------------------------------------------
    # Statistics setup (experiment settings)
    # ------------------------------------------------------------------
    def collect_general_statistics(
        self, tables: Optional[Sequence[str]] = None
    ) -> float:
        """RUNSTATS on all (or the given) tables; returns elapsed seconds.

        Under MVCC this is a *reader*: it pins one snapshot generation per
        table and scans that, so statistics collection no longer excludes
        (or waits for) concurrent DML — the catalog it publishes describes
        the pinned generation, which staleness tracking already handles.
        """
        if self.config.mvcc:
            names = tuple(
                tables if tables is not None else self.database.table_names()
            )
            with self.locks.read_tables(names):
                with self.read_view(names):
                    return self._collect_general_statistics_locked(names)
        with self.locks.exclusive():
            return self._collect_general_statistics_locked(tables)

    def _collect_general_statistics_locked(
        self, tables: Optional[Sequence[str]] = None
    ) -> float:
        started = time.perf_counter()
        names = tables if tables is not None else self.database.table_names()
        now = self._clock.next()
        for name in names:
            run_runstats(
                self.database,
                self.catalog,
                name,
                now=now,
                parallel=self.parallel,
                zone_maps=(
                    self.observe.zone_maps
                    if self.observe is not None
                    else None
                ),
            )
        return time.perf_counter() - started

    def collect_workload_column_groups(
        self, statements: Sequence[str]
    ) -> Tuple[int, float]:
        """Analyze a workload and pre-build all its column-group statistics.

        This reproduces experiment setting 3 ("workload stats"): every
        column group occurring in any query gets a multi-dimensional
        histogram, built from the full data, once, up front.
        """
        with self.locks.exclusive():
            return self._collect_workload_column_groups_locked(statements)

    def _collect_workload_column_groups_locked(
        self, statements: Sequence[str]
    ) -> Tuple[int, float]:
        started = time.perf_counter()
        groups: List[Tuple[str, Tuple[str, ...]]] = []
        for sql in statements:
            statement = parse(sql)
            if not isinstance(statement, ast.SelectStatement):
                continue
            try:
                block = build_query_graph(statement, self.database)
            except ReproError:
                continue
            for candidate in analyze_query(block):
                for group in candidate.groups:
                    columns = group.columns()
                    if len(columns) >= 2:
                        groups.append((candidate.table, columns))
        now = self._clock.next()
        built = collect_workload_statistics(
            self.database, self.catalog, groups, now=now
        )
        return built, time.perf_counter() - started

    def apply_stats_mode(
        self, mode: StatsMode, workload: Sequence[str] = ()
    ) -> None:
        """Set up initial statistics per the paper's experiment settings."""
        if mode is StatsMode.NONE:
            return
        # One exclusive span for the whole setup (the lock is not
        # reentrant, so the locked helpers are called directly).
        with self.locks.exclusive():
            self._collect_general_statistics_locked()
            if mode is StatsMode.WORKLOAD:
                self._collect_workload_column_groups_locked(workload)


def _qualify_for_alias(
    expr: ast.Expr, alias: str, visible: Dict[str, DataType]
) -> ast.Expr:
    """Qualify bare column refs in UPDATE expressions with the table alias."""
    if isinstance(expr, ast.ColumnRef):
        name = expr.name.lower()
        if name not in visible:
            raise BindingError(f"unknown column {expr.name!r}")
        return ast.ColumnRef(name=name, qualifier=alias)
    if isinstance(expr, ast.BinaryArith):
        return ast.BinaryArith(
            op=expr.op,
            left=_qualify_for_alias(expr.left, alias, visible),
            right=_qualify_for_alias(expr.right, alias, visible),
        )
    if isinstance(expr, ast.UnaryArith):
        return ast.UnaryArith(
            op=expr.op, operand=_qualify_for_alias(expr.operand, alias, visible)
        )
    return expr
