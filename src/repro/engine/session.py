"""Client sessions: the unit of concurrent execution.

A :class:`Session` is one client's connection to the engine. Sessions
are cheap, single-threaded objects (one per client thread); the engine
they share is thread-safe. Each statement a session executes:

1. draws a unique logical timestamp from the engine's atomic clock,
2. takes its lock scope from the engine's
   :class:`~repro.engine.locks.LockManager` — SELECT and EXPLAIN
   read-lock the tables they reference, DML write-locks its target
   table (so writes to *disjoint* tables run concurrently), and DDL
   takes the database exclusively,
3. (writers) routes UDI activity through the session's private
   :class:`~repro.storage.table.UDIShard` and flushes it at the
   statement boundary while still holding the table write lock, so
   readers observe a statement's UDI deltas all-or-nothing.

Statistics stores (catalog, QSS archive, history, caches) are
RCU-published and deliberately *not* covered by the data locks: JITS
collection, feedback and migration may run on the reader path.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..cancel import CancelToken, cancel_scope
from ..errors import ReproError
from ..sql import ast, parse
from ..storage import udi_shard_scope, UDIShard
from .result import QueryResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine


class Session:
    """One client's view of a shared engine.

    Not thread-safe itself: a session belongs to exactly one client
    thread at a time. Concurrency comes from many sessions sharing one
    engine.
    """

    def __init__(self, engine: "Engine", session_id: int):
        self.engine = engine
        self.session_id = session_id
        self.shard = UDIShard()
        self.statements_executed = 0
        self.closed = False

    def close(self) -> None:
        """Retire the session; further statements are rejected."""
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise ReproError(f"session {self.session_id} is closed")

    # Statements whose writes stay within one named table: they take that
    # table's write lock. Everything else (DDL, index builds) changes the
    # database structure and runs database-exclusive.
    _DML_TYPES = (
        ast.InsertStatement,
        ast.UpdateStatement,
        ast.DeleteStatement,
    )

    def execute(
        self, sql: str, cancel: Optional[CancelToken] = None
    ) -> QueryResult:
        """Execute one SQL statement under its lock scope.

        ``cancel`` installs a cooperative cancellation token for the
        statement: once set, execution stops at the next morsel/operator
        boundary with :class:`~repro.errors.StatementCancelledError`,
        locks unwind, and the session stays usable.
        """
        self._check_open()
        engine = self.engine
        started = time.perf_counter()
        statement = parse(sql)
        parse_time = time.perf_counter() - started
        now = engine._clock.next()
        engine._statements.next()
        observe = engine.observe
        # Lock wait = time from requesting the lock scope to entering it;
        # recording happens after the scope releases, so the observation
        # plane never runs under statement locks (parse failures raised
        # above carry no AST to fingerprint and are not recorded).
        result = None
        lock_requested = time.perf_counter()
        lock_wait = 0.0
        try:
            with cancel_scope(cancel):
                if isinstance(statement, ast.SelectStatement):
                    tables = engine._statement_tables(statement)
                    with engine.locks.read_tables(tables):
                        lock_wait = time.perf_counter() - lock_requested
                        # Under MVCC the lock scope above is only the
                        # database intent lock; the statement's actual
                        # isolation comes from pinning one snapshot
                        # generation per table here (AS OF pins
                        # historical ones).
                        with engine.read_view(
                            tables, statement.as_of
                        ) as pinned:
                            result = engine._execute_select(
                                statement, parse_time, now, pinned=pinned
                            )
                elif isinstance(statement, self._DML_TYPES):
                    with engine.locks.write_tables((statement.table,)):
                        lock_wait = time.perf_counter() - lock_requested
                        result = self._run_write(
                            engine, statement, parse_time, now
                        )
                else:
                    with engine.locks.exclusive():
                        lock_wait = time.perf_counter() - lock_requested
                        result = self._run_write(
                            engine, statement, parse_time, now
                        )
        finally:
            if observe is not None:
                observe.record_statement(
                    statement,
                    result,
                    latency=time.perf_counter() - started,
                    lock_wait=lock_wait,
                    error=result is None,
                )
        if observe is not None:
            # The advisor tick may take the exclusive lock for index DDL;
            # the LockManager is not reentrant, so it must run after this
            # statement's scope is fully released.
            observe.maybe_tick(engine)
        self.statements_executed += 1
        return result

    def _run_write(self, engine, statement, parse_time: float, now: int):
        """Write-statement body; caller holds the statement's lock scope."""
        result = None
        try:
            with udi_shard_scope(self.shard):
                result = engine._dispatch_write(statement, parse_time, now)
        finally:
            # Flush inside the lock scope, also when the statement
            # failed: whatever it already applied to the data must
            # reach the UDI counters before readers run, and a
            # clean shard keeps the session usable afterwards.
            touched = self.shard.pending_tables()
            self.shard.flush()
            if touched:
                # Publish one MVCC snapshot generation per touched table
                # — still under the table write lock, so the publish
                # stamp (a fresh statement-clock draw) is monotone per
                # table and the generation becomes visible to readers
                # atomically with the lock release. Failed statements
                # publish too: whatever they applied is live, and the
                # snapshot chain must never diverge from the live data.
                stamp = engine._clock.next()
                published = {}
                for table in touched:
                    snap = table.publish_snapshot(stamp=stamp)
                    published[snap.name.lower()] = (snap.version, snap.stamp)
                if result is not None:
                    result.snapshots = published
            # Durable-commit cost (when configured) is paid before the
            # locks release, like a log force: it is the lock-hold time
            # the granularity benchmark overlaps across tables.
            if engine.config.commit_latency > 0.0:
                time.sleep(engine.config.commit_latency)
        return result

    def execute_all(self, statements: Sequence[str]) -> List[QueryResult]:
        """Execute a client's statement stream in order."""
        return [self.execute(sql) for sql in statements]

    def explain(self, sql: str) -> str:
        """Plan text for a SELECT without executing it (reader side)."""
        self._check_open()
        engine = self.engine
        statement = parse(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise ReproError("EXPLAIN supports SELECT statements only")
        now = engine._clock.next()
        tables = engine._statement_tables(statement)
        with engine.locks.read_tables(tables):
            with engine.read_view(tables, statement.as_of):
                return engine._explain_select(statement, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(id={self.session_id}, "
            f"statements={self.statements_executed})"
        )
