"""Phase timers used to report per-query compilation / execution times.

The paper reports wall-clock seconds split into compilation, execution and
fetch (Table 3). :class:`PhaseTimer` accumulates named phases;
:class:`Stopwatch` is the context-manager primitive underneath.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator
from contextlib import contextmanager


@dataclass
class Stopwatch:
    """A running or stopped wall-clock interval."""

    started_at: float = 0.0
    elapsed: float = 0.0
    running: bool = False

    def start(self) -> None:
        if self.running:
            raise RuntimeError("stopwatch already running")
        self.started_at = time.perf_counter()
        self.running = True

    def stop(self) -> float:
        if not self.running:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self.started_at
        self.running = False
        return self.elapsed


@dataclass
class PhaseTimer:
    """Accumulates elapsed wall-clock time per named phase."""

    phases: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] = self.phases.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def get(self, name: str) -> float:
        return self.phases.get(name, 0.0)

    def add(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.phases.values())
