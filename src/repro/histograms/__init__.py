"""Histogram structures: catalog equi-depth and adaptive max-entropy grids."""

from .accuracy import boundary_accuracy, interval_accuracy, region_accuracy
from .equidepth import DEFAULT_BUCKETS, EquiDepthHistogram
from .grid import (
    DEFAULT_MAX_BOUNDARIES,
    DEFAULT_MAX_CONSTRAINTS,
    AdaptiveGridHistogram,
    GridConstraint,
    domain_for_values,
)
from .intervals import FULL, INF, Interval, Region, hull
from .maxent import (
    CalibrationPlan,
    CellConstraint,
    iterative_scaling,
    make_constraints,
    max_abs_violation,
    uniformity_deviation,
)

__all__ = [
    "Interval",
    "Region",
    "FULL",
    "INF",
    "hull",
    "EquiDepthHistogram",
    "DEFAULT_BUCKETS",
    "AdaptiveGridHistogram",
    "GridConstraint",
    "domain_for_values",
    "DEFAULT_MAX_BOUNDARIES",
    "DEFAULT_MAX_CONSTRAINTS",
    "CalibrationPlan",
    "CellConstraint",
    "iterative_scaling",
    "make_constraints",
    "max_abs_violation",
    "uniformity_deviation",
    "boundary_accuracy",
    "interval_accuracy",
    "region_accuracy",
]
