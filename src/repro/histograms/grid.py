"""Adaptive multi-dimensional grid histograms (the QSS archive structure).

This is the data structure of paper Section 3.4 / Figure 2:

* Each newly observed predicate region inserts bucket boundaries along the
  affected dimensions; existing bucket mass is split under the uniformity
  assumption.
* The observed count becomes a *constraint*; all retained constraints are
  re-satisfied by iterative proportional fitting, i.e. the bucket counts
  move to the maximum-entropy distribution consistent with everything the
  system has learned.
* Every bucket carries a timestamp (a logical clock supplied by callers) so
  the sensitivity analysis can judge recentness.
* Per-dimension boundary counts are capped; the least informative interior
  boundary is merged away when the cap is exceeded.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import StatisticsError
from .intervals import Interval, Region
from .maxent import (
    CalibrationPlan,
    CellConstraint,
    uniformity_deviation,
)

DEFAULT_MAX_BOUNDARIES = 32
DEFAULT_MAX_CONSTRAINTS = 24
_ALIGN_TOL = 1e-9


class _NullLock:
    """No-op stand-in for the histogram lock on frozen (immutable) copies.

    Frozen copies are published RCU-style to lock-free readers; their
    arrays never change, so estimation needs no mutual exclusion at all.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def acquire(self):  # pragma: no cover - RLock API compatibility
        pass

    def release(self):  # pragma: no cover - RLock API compatibility
        pass


_NULL_LOCK = _NullLock()


class _LRUCell:
    """Mutable recency cell shared between a histogram and its frozen copies.

    ``touch`` is a plain int store (GIL-atomic); a lost race between two
    concurrent touches costs at most one LRU recency update, which the
    archive's eviction heuristic tolerates. Sharing the cell lets
    lock-free readers of a *published* copy keep the *master* entry's
    recency current without taking the archive lock.
    """

    __slots__ = ("last_used",)

    def __init__(self, now: int):
        self.last_used = int(now)


@dataclass
class GridConstraint:
    """An observed fact: ``count(region) == target`` as of ``timestamp``."""

    region: Region
    target: float
    sequence: int
    timestamp: int


class AdaptiveGridHistogram:
    """An n-dimensional bucket grid maintained under maximum entropy."""

    def __init__(
        self,
        domain: Region,
        total: float,
        now: int = 0,
        max_boundaries_per_dim: int = DEFAULT_MAX_BOUNDARIES,
        max_constraints: int = DEFAULT_MAX_CONSTRAINTS,
        calibrate: bool = True,
    ):
        if domain.ndim == 0:
            raise StatisticsError("histogram needs at least one dimension")
        for iv in domain.intervals:
            if math.isinf(iv.low) or math.isinf(iv.high) or iv.is_empty:
                raise StatisticsError(
                    f"histogram domain must be bounded and non-empty, got {iv}"
                )
        if total < 0:
            raise StatisticsError("total must be non-negative")
        self.ndim = domain.ndim
        self.boundaries: List[np.ndarray] = [
            np.array([iv.low, iv.high], dtype=np.float64)
            for iv in domain.intervals
        ]
        self.counts = np.full([1] * self.ndim, float(total))
        self.timestamps = np.full([1] * self.ndim, int(now), dtype=np.int64)
        self.constraints: List[GridConstraint] = []
        self.max_boundaries_per_dim = max_boundaries_per_dim
        self.max_constraints = max_constraints
        # Ablation knob: with calibrate=False the histogram only splits
        # buckets under uniformity and rescales the single newest
        # constraint — no maximum-entropy reconciliation of older facts.
        self.calibrate = calibrate
        self.created_at = now
        self._lru = _LRUCell(now)
        self._sequence = 0
        # True on RCU-published copies: arrays are read-only snapshots.
        self.frozen = False
        # True while deferred observations await a recalibration pass.
        self.dirty = False
        # Bumped whenever the cell grid changes shape (boundary insert,
        # merge, domain extension); keys the cell-membership cache below.
        self._grid_version = 0
        self._cells_cache: dict = {}
        self._cells_cache_version = -1
        # Estimation reads (counts + boundaries) and grid mutations must
        # not interleave: concurrent compilations estimate from the same
        # archive histograms other statements are observing into.
        self._hist_lock = threading.RLock()

    @classmethod
    def from_data(
        cls,
        columns: Sequence[np.ndarray],
        domain: Region,
        bins_per_dim: int = 8,
        now: int = 0,
        max_boundaries_per_dim: int = DEFAULT_MAX_BOUNDARIES,
        max_constraints: int = DEFAULT_MAX_CONSTRAINTS,
        integral_dims: Optional[Sequence[bool]] = None,
    ) -> "AdaptiveGridHistogram":
        """Build a grid with exact counts from full column data.

        Per-dimension boundaries are equi-depth quantiles (so dense areas
        get resolution), counts are exact. ``integral_dims`` marks
        dimensions holding INT values / dictionary codes: their boundaries
        snap to integer edges so point queries on discrete values resolve
        exactly. Used for the catalog's column-group ("workload")
        statistics.
        """
        if not columns:
            raise StatisticsError("from_data needs at least one column")
        n = len(columns[0])
        hist = cls(
            domain,
            total=float(n),
            now=now,
            max_boundaries_per_dim=max_boundaries_per_dim,
            max_constraints=max_constraints,
        )
        if integral_dims is None:
            integral_dims = [False] * len(columns)
        edges = []
        for d, data in enumerate(columns):
            data = np.asarray(data, dtype=np.float64)
            if len(data) != n:
                raise StatisticsError("column length mismatch")
            dom = domain.intervals[d]
            if len(data) == 0:
                edge = np.array([dom.low, dom.high])
            else:
                qs = np.linspace(0.0, 1.0, bins_per_dim + 1)
                edge = np.quantile(data, qs)
                if integral_dims[d]:
                    edge = np.floor(edge)
                edge = np.unique(edge)
                edge[0] = min(edge[0], dom.low)
                edge = edge[edge < dom.high]
                edge = np.append(edge, dom.high)
                edge = np.unique(edge)
                if len(edge) < 2:
                    edge = np.array([dom.low, dom.high])
            edges.append(edge)
        if n > 0:
            sample = np.stack(
                [np.asarray(c, dtype=np.float64) for c in columns], axis=1
            )
            counts, _ = np.histogramdd(sample, bins=edges)
        else:
            counts = np.zeros([len(e) - 1 for e in edges])
        hist.boundaries = [np.asarray(e, dtype=np.float64) for e in edges]
        hist.counts = counts.astype(np.float64)
        hist.timestamps = np.full(counts.shape, int(now), dtype=np.int64)
        return hist

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def domain(self) -> Region:
        return Region(
            tuple(
                Interval(float(b[0]), float(b[-1])) for b in self.boundaries
            )
        )

    @property
    def n_cells(self) -> int:
        return int(self.counts.size)

    @property
    def total_mass(self) -> float:
        return float(self.counts.sum())

    def cell_widths(self, dim: int) -> np.ndarray:
        return np.diff(self.boundaries[dim])

    def cell_volumes(self) -> np.ndarray:
        volume = np.ones([1] * self.ndim)
        for d in range(self.ndim):
            shape = [1] * self.ndim
            shape[d] = -1
            volume = volume * self.cell_widths(d).reshape(shape)
        return volume

    def uniformity(self) -> float:
        """0 == indistinguishable from the uniform assumption."""
        with self._hist_lock:
            return uniformity_deviation(
                self.counts.ravel(), self.cell_volumes().ravel()
            )

    def boundary_list(self, dim: int) -> List[float]:
        with self._hist_lock:
            return [float(b) for b in self.boundaries[dim]]

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _overlap_fractions(self, dim: int, interval: Interval) -> np.ndarray:
        b = self.boundaries[dim]
        lows = b[:-1]
        highs = b[1:]
        lo = np.maximum(lows, interval.low)
        hi = np.minimum(highs, interval.high)
        width = np.maximum(highs - lows, _ALIGN_TOL)
        frac = np.clip((hi - lo) / width, 0.0, 1.0)
        frac[hi <= lo] = 0.0
        return frac

    def estimate_count(self, region: Region) -> float:
        """Estimated rows in ``region`` (uniform interpolation per cell)."""
        self._check_ndim(region)
        if region.is_empty:
            return 0.0
        with self._hist_lock:
            weighted = self.counts
            for d in range(self.ndim):
                frac = self._overlap_fractions(d, region.intervals[d])
                shape = [1] * self.ndim
                shape[d] = -1
                weighted = weighted * frac.reshape(shape)
            return float(weighted.sum())

    def estimate_selectivity(self, region: Region) -> float:
        with self._hist_lock:
            total = self.total_mass
            if total <= 0:
                return 0.0
            return min(1.0, self.estimate_count(region) / total)

    # ------------------------------------------------------------------
    # Updates (Section 3.4)
    # ------------------------------------------------------------------
    def observe(
        self,
        region: Region,
        count: float,
        total: Optional[float] = None,
        now: int = 0,
        calibrate_now: bool = True,
    ) -> None:
        """Fold in an observed fact ``count(region) == count``.

        ``total`` (when given) is the table cardinality at observation time
        and becomes/refreshes the whole-domain constraint. Boundaries are
        inserted for every finite region endpoint, old mass is split
        uniformly, then iterative scaling recalibrates all retained
        constraints. With ``calibrate_now=False`` the scaling pass is
        deferred: the constraint is recorded, the histogram is marked
        dirty, and a later :meth:`recalibrate` satisfies the whole batch
        in one pass.
        """
        self._check_ndim(region)
        if count < 0:
            raise StatisticsError("observed count must be non-negative")
        if self.frozen:
            raise StatisticsError(
                "cannot observe into a frozen histogram snapshot"
            )
        with self._hist_lock:
            self._observe_locked(region, count, total, now, calibrate_now)

    def _observe_locked(
        self,
        region: Region,
        count: float,
        total: Optional[float],
        now: int,
        calibrate_now: bool,
    ) -> None:
        self._extend_domain(region)
        clipped = region.intersect(self.domain)
        if clipped.is_empty:
            return
        for d in range(self.ndim):
            iv = clipped.intervals[d]
            self._insert_boundary(d, iv.low)
            self._insert_boundary(d, iv.high)

        if total is not None:
            # Replace any previous whole-domain constraint: cardinality
            # changes over time and only the latest observation is truth.
            self.constraints = [
                c
                for c in self.constraints
                if not c.region.contains(self.domain)
            ]
            self._sequence += 1
            self.constraints.append(
                GridConstraint(
                    region=self.domain,
                    target=float(total),
                    sequence=self._sequence,
                    timestamp=now,
                )
            )
        self._sequence += 1
        # A re-observation of the same region supersedes the old fact.
        self.constraints = [
            c for c in self.constraints if c.region != clipped
        ]
        self.constraints.append(
            GridConstraint(
                region=clipped,
                target=float(count),
                sequence=self._sequence,
                timestamp=now,
            )
        )
        self._retire_constraints()
        if calibrate_now:
            self._calibrate()
        else:
            self.dirty = True
        self._stamp(clipped, now)
        self._merge_to_budget()
        self.touch(now)

    def recalibrate(self) -> bool:
        """Run the deferred max-entropy pass; True if anything was dirty."""
        with self._hist_lock:
            if not self.dirty:
                return False
            self._calibrate()
            return True

    @property
    def last_used(self) -> int:
        return self._lru.last_used

    def touch(self, now: int) -> None:
        """Record optimizer use (drives the archive's LRU eviction).

        Lock-free: the recency cell is shared with every frozen copy, so
        touching a published snapshot keeps the master entry recent.
        """
        cell = self._lru
        if now > cell.last_used:
            cell.last_used = int(now)

    def freeze(self) -> "AdaptiveGridHistogram":
        """An immutable copy for RCU publication.

        Counts, timestamps, boundaries and constraints are copied (and
        the arrays marked read-only); the recency cell is shared with the
        master so lock-free readers still drive LRU eviction. The copy
        swaps its lock for a no-op, making estimation a plain array read.
        """
        import copy

        with self._hist_lock:
            clone = copy.copy(self)
            clone.boundaries = [b.copy() for b in self.boundaries]
            clone.counts = self.counts.copy()
            clone.timestamps = self.timestamps.copy()
            clone.constraints = list(self.constraints)
            clone._cells_cache = {}
            clone._cells_cache_version = -1
        for array in clone.boundaries:
            array.setflags(write=False)
        clone.counts.setflags(write=False)
        clone.timestamps.setflags(write=False)
        clone.frozen = True
        clone._hist_lock = _NULL_LOCK
        return clone

    def freshness(self, region: Region) -> int:
        """Oldest timestamp among cells overlapping ``region``."""
        with self._hist_lock:
            mask = self._region_mask(region, partial=True)
            if not mask.any():
                return int(self.timestamps.min())
            return int(self.timestamps[mask].min())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_ndim(self, region: Region) -> None:
        if region.ndim != self.ndim:
            raise StatisticsError(
                f"region has {region.ndim} dims, histogram has {self.ndim}"
            )

    def _extend_domain(self, region: Region) -> None:
        """Stretch edge cells so finite region endpoints fall inside."""
        for d in range(self.ndim):
            iv = region.intervals[d]
            b = self.boundaries[d]
            if not math.isinf(iv.low) and iv.low < b[0]:
                b[0] = iv.low
                self._grid_version += 1
            if not math.isinf(iv.high) and iv.high > b[-1]:
                b[-1] = iv.high
                self._grid_version += 1

    def _insert_boundary(self, dim: int, value: float) -> None:
        if math.isinf(value):
            return
        b = self.boundaries[dim]
        pos = int(np.searchsorted(b, value))
        if pos < len(b) and abs(b[pos] - value) <= _ALIGN_TOL:
            return
        if pos == 0 or pos == len(b):
            return  # outside domain; _extend_domain handles growth
        cell = pos - 1
        width = b[pos] - b[cell]
        fraction = (value - b[cell]) / width
        self._grid_version += 1
        self.boundaries[dim] = np.insert(b, pos, value)
        slab_counts = np.take(self.counts, cell, axis=dim)
        slab_stamps = np.take(self.timestamps, cell, axis=dim)
        self.counts = np.insert(self.counts, cell, slab_counts, axis=dim)
        self.timestamps = np.insert(self.timestamps, cell, slab_stamps, axis=dim)
        left = self._axis_slice(dim, cell)
        right = self._axis_slice(dim, cell + 1)
        self.counts[left] *= fraction
        self.counts[right] *= 1.0 - fraction

    def _axis_slice(self, dim: int, index: int) -> Tuple:
        idx: List = [slice(None)] * self.ndim
        idx[dim] = index
        return tuple(idx)

    def _region_cell_range(self, dim: int, interval: Interval) -> Tuple[int, int]:
        """Cell index range [i0, i1) covered by an aligned interval."""
        b = self.boundaries[dim]
        if math.isinf(interval.low):
            i0 = 0
        else:
            i0 = int(np.searchsorted(b, interval.low - _ALIGN_TOL, side="left"))
        if math.isinf(interval.high):
            i1 = len(b) - 1
        else:
            i1 = int(np.searchsorted(b, interval.high - _ALIGN_TOL, side="left"))
        return i0, i1

    def _is_aligned(self, region: Region) -> bool:
        for d in range(self.ndim):
            iv = region.intervals[d]
            b = self.boundaries[d]
            for bound in (iv.low, iv.high):
                if math.isinf(bound):
                    continue
                pos = int(np.searchsorted(b, bound))
                near = [b[i] for i in (pos - 1, pos, pos + 1) if 0 <= i < len(b)]
                if not any(abs(x - bound) <= _ALIGN_TOL for x in near):
                    return False
        return True

    def _region_mask(self, region: Region, partial: bool = False) -> np.ndarray:
        """Boolean cell mask for a region (aligned; ``partial`` = overlap)."""
        mask = np.zeros(self.counts.shape, dtype=bool)
        slices = []
        for d in range(self.ndim):
            iv = region.intervals[d].intersect(self.domain.intervals[d])
            if iv.is_empty:
                return mask
            if partial:
                frac = self._overlap_fractions(d, iv)
                covered = np.flatnonzero(frac > 0)
                if len(covered) == 0:
                    return mask
                slices.append(slice(int(covered[0]), int(covered[-1]) + 1))
            else:
                i0, i1 = self._region_cell_range(d, iv)
                if i1 <= i0:
                    return mask
                slices.append(slice(i0, i1))
        mask[tuple(slices)] = True
        return mask

    def _region_cells(self, region: Region) -> np.ndarray:
        """Flat indices of the cells an aligned region covers.

        Computed from per-dimension cell ranges with stride arithmetic —
        no full-grid boolean mask — and memoized per grid version, since
        repeated recalibrations against an unchanged grid keep asking for
        the same memberships (the CSR arrays of the fast path).
        """
        if self._cells_cache_version != self._grid_version:
            self._cells_cache = {}
            self._cells_cache_version = self._grid_version
        cached = self._cells_cache.get(region)
        if cached is not None:
            return cached
        shape = self.counts.shape
        strides = np.empty(self.ndim, dtype=np.int64)
        strides[-1] = 1
        for d in range(self.ndim - 2, -1, -1):
            strides[d] = strides[d + 1] * shape[d + 1]
        flat = np.zeros(1, dtype=np.int64)
        for d in range(self.ndim):
            iv = region.intervals[d].intersect(self.domain.intervals[d])
            if iv.is_empty:
                flat = np.empty(0, dtype=np.int64)
                break
            i0, i1 = self._region_cell_range(d, iv)
            if i1 <= i0:
                flat = np.empty(0, dtype=np.int64)
                break
            axis = np.arange(i0, i1, dtype=np.int64) * strides[d]
            flat = (flat[:, None] + axis[None, :]).ravel()
        self._cells_cache[region] = flat
        return flat

    def _calibrate(self) -> None:
        constraints = (
            self.constraints
            if self.calibrate
            else self.constraints[-1:]  # naive mode: newest fact only
        )
        cell_constraints = []
        for c in constraints:
            if not self._is_aligned(c.region):
                continue
            cells = self._region_cells(c.region)
            if len(cells) == 0:
                continue
            cell_constraints.append(
                CellConstraint(cells=cells, target=c.target, sequence=c.sequence)
            )
        self.dirty = False
        if not cell_constraints:
            return
        flat, _ = CalibrationPlan(cell_constraints).run(self.counts.ravel())
        self.counts = flat.reshape(self.counts.shape)

    def _retire_constraints(self) -> None:
        if len(self.constraints) <= self.max_constraints:
            return
        # Keep the whole-domain (cardinality) constraint plus the most
        # recent observations.
        domain = self.domain
        keepers = [c for c in self.constraints if c.region.contains(domain)]
        others = [c for c in self.constraints if not c.region.contains(domain)]
        others.sort(key=lambda c: c.sequence)
        budget = self.max_constraints - len(keepers)
        self.constraints = sorted(
            keepers + others[-budget:], key=lambda c: c.sequence
        )

    def _stamp(self, region: Region, now: int) -> None:
        mask = self._region_mask(region, partial=True)
        self.timestamps[mask] = now

    def _merge_to_budget(self) -> None:
        for d in range(self.ndim):
            while len(self.boundaries[d]) - 1 > self.max_boundaries_per_dim:
                self._merge_one(d)

    def _merge_one(self, dim: int) -> None:
        b = self.boundaries[dim]
        if len(b) <= 2:
            return
        axes = tuple(a for a in range(self.ndim) if a != dim)
        masses = self.counts.sum(axis=axes) if axes else self.counts
        widths = np.diff(b)
        density = masses / np.maximum(widths, _ALIGN_TOL)
        # Score each interior boundary by how different the densities of the
        # two cells it separates are; merge the most similar pair.
        diffs = np.abs(np.diff(density)) / (density[:-1] + density[1:] + 1e-12)
        j = int(np.argmin(diffs)) + 1  # boundary index to remove
        cell = j - 1
        merged_counts = np.take(self.counts, cell, axis=dim) + np.take(
            self.counts, cell + 1, axis=dim
        )
        merged_stamps = np.maximum(
            np.take(self.timestamps, cell, axis=dim),
            np.take(self.timestamps, cell + 1, axis=dim),
        )
        self.counts = np.delete(self.counts, cell + 1, axis=dim)
        self.timestamps = np.delete(self.timestamps, cell + 1, axis=dim)
        self.counts[self._axis_slice(dim, cell)] = merged_counts
        self.timestamps[self._axis_slice(dim, cell)] = merged_stamps
        self._grid_version += 1
        self.boundaries[dim] = np.delete(b, j)
        # Constraints that referenced the removed boundary no longer align
        # with the grid; drop them rather than approximate.
        self.constraints = [
            c for c in self.constraints if self._is_aligned(c.region)
        ]


def domain_for_values(
    low: float, high: float, integral: bool
) -> Interval:
    """Bucket domain covering observed data values [low, high].

    Integral (INT / dictionary-code) columns get ``[low, high + 1)`` so the
    half-open convention covers the max value exactly; float columns get a
    hair past the max.
    """
    if integral:
        return Interval(float(low), float(high) + 1.0)
    return Interval(float(low), float(np.nextafter(high, np.inf)))
