"""Histogram accuracy metric of paper Section 3.3.2.

Given a histogram's bucket boundaries and a predicate constant ``value``,
the paper scores how accurately the histogram can estimate selectivities
around that constant:

1. locate the bucket ``B_j = [b_{j-1}, b_j)`` containing ``value``;
2. ``d1 = value - b_{j-1}``, ``d2 = b_j - value``;
3. ``u = (min(d1, d2) / max(d1, d2)) * (b_j - b_{j-1}) / (b_n - b_0)``;
4. ``accuracy = 1 - u``.

A constant sitting exactly on a boundary scores 1 (the histogram answers it
exactly); a constant in the middle of a wide bucket scores lowest. For
multi-dimensional histograms the overall accuracy is the product over the
dimensions; for a region with two finite endpoints on one dimension we take
the product of the endpoint accuracies (the paper defines the one-constant
case only — see DESIGN.md §4).
"""

from __future__ import annotations

import math
from typing import Sequence

from .intervals import Interval, Region


def boundary_accuracy(boundaries: Sequence[float], value: float) -> float:
    """Paper's single-dimension accuracy of a histogram at ``value``."""
    n = len(boundaries)
    if n < 2:
        return 0.0
    b0 = boundaries[0]
    bn = boundaries[-1]
    span = bn - b0
    if span <= 0:
        return 0.0
    value = min(max(value, b0), bn)
    # Find j with b_{j-1} <= value <= b_j.
    j = 1
    while j < n - 1 and boundaries[j] < value:
        j += 1
    lo = boundaries[j - 1]
    hi = boundaries[j]
    d1 = value - lo
    d2 = hi - value
    if d1 == 0.0 or d2 == 0.0:
        return 1.0
    u = (min(d1, d2) / max(d1, d2)) * ((hi - lo) / span)
    return max(0.0, 1.0 - u)


def interval_accuracy(boundaries: Sequence[float], interval: Interval) -> float:
    """Accuracy of estimating an interval: product over finite endpoints.

    An unbounded side contributes no error (the histogram edge answers it
    exactly), matching the paper's treatment of single-constant predicates.
    """
    acc = 1.0
    if not math.isinf(interval.low):
        acc *= boundary_accuracy(boundaries, interval.low)
    if not math.isinf(interval.high):
        acc *= boundary_accuracy(boundaries, interval.high)
    return acc


def region_accuracy(
    boundaries_per_dim: Sequence[Sequence[float]], region: Region
) -> float:
    """Multi-dimensional accuracy: product of per-dimension accuracies."""
    if len(boundaries_per_dim) != region.ndim:
        raise ValueError("dimension mismatch between boundaries and region")
    acc = 1.0
    for boundaries, interval in zip(boundaries_per_dim, region.intervals):
        acc *= interval_accuracy(boundaries, interval)
    return acc
