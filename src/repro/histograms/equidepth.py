"""Classic 1-D equi-depth histograms (the catalog's distribution statistic).

This is what RUNSTATS produces and what a traditional optimizer consults,
with the usual *uniformity-within-bucket* assumption the paper calls out as
an error source (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..errors import StatisticsError
from .intervals import Interval

DEFAULT_BUCKETS = 20


@dataclass
class EquiDepthHistogram:
    """Buckets ``[boundaries[i], boundaries[i+1])`` with exact counts.

    The last bucket is closed on the right so the maximum value is covered;
    this is implemented by nudging the final boundary just past the max.
    """

    boundaries: np.ndarray  # length n_buckets + 1, strictly increasing
    counts: np.ndarray  # length n_buckets, float64

    def __post_init__(self) -> None:
        self.boundaries = np.asarray(self.boundaries, dtype=np.float64)
        self.counts = np.asarray(self.counts, dtype=np.float64)
        if len(self.boundaries) != len(self.counts) + 1:
            raise StatisticsError("boundary/count length mismatch")
        if len(self.counts) == 0:
            raise StatisticsError("histogram needs at least one bucket")
        if np.any(np.diff(self.boundaries) <= 0):
            raise StatisticsError("boundaries must be strictly increasing")
        if np.any(self.counts < 0):
            raise StatisticsError("bucket counts must be non-negative")

    @property
    def n_buckets(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    @property
    def low(self) -> float:
        return float(self.boundaries[0])

    @property
    def high(self) -> float:
        return float(self.boundaries[-1])

    @classmethod
    def build(
        cls,
        values: np.ndarray,
        n_buckets: int = DEFAULT_BUCKETS,
        integral: bool = False,
    ) -> "EquiDepthHistogram":
        """Build from raw values with ~equal mass per bucket.

        Duplicate quantile boundaries (heavy values) are collapsed, so the
        result may have fewer than ``n_buckets`` buckets. For ``integral``
        domains (INT columns, dictionary codes) boundaries snap to integer
        edges and the final boundary is ``max + 1``, so the half-open
        convention covers every discrete value exactly — continuous
        interpolation over discrete codes would otherwise assign ~zero
        mass to the largest value.
        """
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise StatisticsError("cannot build a histogram from no values")
        if n_buckets < 1:
            raise StatisticsError("n_buckets must be >= 1")
        data = np.sort(values)
        qs = np.linspace(0.0, 1.0, n_buckets + 1)
        bounds = np.quantile(data, qs)
        if integral:
            bounds = np.floor(bounds)
            bounds = np.unique(bounds)
            last = np.floor(data[-1]) + 1.0
            if bounds[-1] >= last:
                bounds = bounds[:-1]
            bounds = np.append(bounds, last)
            if len(bounds) == 1:
                bounds = np.array([last - 1.0, last])
        else:
            bounds = np.unique(bounds)
            # Nudge the final boundary so max values land inside the last
            # bucket under the half-open convention.
            if len(bounds) == 1:
                bounds = np.array([bounds[0], np.nextafter(bounds[0], np.inf)])
            else:
                bounds[-1] = np.nextafter(bounds[-1], np.inf)
        counts = np.diff(np.searchsorted(data, bounds, side="left")).astype(
            np.float64
        )
        # searchsorted('left') excludes values equal to the first boundary
        # from no bucket; they start at index 0 so the first diff counts them.
        return cls(boundaries=bounds, counts=counts)

    def bucket_of(self, value: float) -> int:
        """Index of the bucket containing ``value`` (clipped to the range)."""
        idx = int(np.searchsorted(self.boundaries, value, side="right")) - 1
        return max(0, min(idx, self.n_buckets - 1))

    def estimate_count(self, interval: Interval) -> float:
        """Estimated rows inside ``interval``, uniform within buckets."""
        if interval.is_empty:
            return 0.0
        total = 0.0
        for i in range(self.n_buckets):
            bucket = Interval(
                float(self.boundaries[i]), float(self.boundaries[i + 1])
            )
            frac = interval.overlap_fraction(bucket)
            if frac > 0.0:
                total += frac * float(self.counts[i])
        return total

    def estimate_selectivity(self, interval: Interval) -> float:
        t = self.total
        if t == 0.0:
            return 0.0
        return min(1.0, self.estimate_count(interval) / t)

    def boundary_list(self) -> List[float]:
        return [float(b) for b in self.boundaries]

    def densities(self) -> np.ndarray:
        """Per-bucket density (count / width)."""
        widths = np.diff(self.boundaries)
        return self.counts / widths

    def scaled(self, factor: float) -> "EquiDepthHistogram":
        """A copy with all counts multiplied by ``factor``."""
        if factor < 0:
            raise StatisticsError("scale factor must be non-negative")
        return EquiDepthHistogram(
            boundaries=self.boundaries.copy(), counts=self.counts * factor
        )


def merge_boundaries(histograms: Sequence[EquiDepthHistogram]) -> np.ndarray:
    """Union of all boundary points across histograms (sorted, unique)."""
    if not histograms:
        return np.empty(0, dtype=np.float64)
    return np.unique(np.concatenate([h.boundaries for h in histograms]))
