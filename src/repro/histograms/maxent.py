"""Maximum-entropy calibration by iterative proportional fitting (IPF).

Section 3.4 of the paper updates QSS histograms so the bucket counts
"satisfy the knowledge gained by the new statistics without assuming any
further knowledge of the data". With axis-aligned constraints over a grid of
buckets, the maximum-entropy distribution subject to linear count
constraints is exactly what iterative proportional fitting converges to
(this is the ISOMER [13] construction the paper extends).

Constraints may be mutually inconsistent when observations were taken at
different times against changing data; the solver then oscillates inside a
bounded band. We iterate oldest-to-newest so the most recent observation
gets the last word of every sweep, and stop after ``max_iterations``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import StatisticsError

EPSILON_MASS = 1e-9


@dataclass
class CellConstraint:
    """``counts[cells].sum()`` should equal ``target``."""

    cells: np.ndarray  # flat cell indices
    target: float
    sequence: int = 0  # insertion order; newer constraints applied last

    def __post_init__(self) -> None:
        if self.target < 0:
            raise StatisticsError("constraint target must be non-negative")


class CalibrationPlan:
    """A constraint set precompiled for repeated IPF passes.

    Sorting, validating and re-materializing per-constraint index arrays on
    every calibration dominates the cost of small sweeps, so the plan
    compiles the set once into CSR-style membership arrays — one
    concatenated cell-index vector plus per-constraint offsets and targets
    — and :meth:`run` replays the sweep against any counts vector with no
    per-call Python object churn. Sweep semantics are exactly those of
    :func:`iterative_scaling` (which delegates here).
    """

    def __init__(
        self,
        constraints: Sequence[CellConstraint],
        max_iterations: int = 16,
        tolerance: float = 4e-3,
    ):
        # Zero-target constraints are absorbing (scaled zeros stay zero),
        # so they go first; every later constraint can still be satisfied
        # by scaling the remaining cells. Others apply oldest-to-newest.
        ordered = sorted(
            constraints, key=lambda c: (c.target != 0.0, c.sequence)
        )
        self.n_constraints = len(ordered)
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.targets = np.array([c.target for c in ordered], dtype=np.float64)
        sizes = np.array([len(c.cells) for c in ordered], dtype=np.int64)
        self.indptr = np.zeros(len(ordered) + 1, dtype=np.int64)
        np.cumsum(sizes, out=self.indptr[1:])
        if ordered:
            self.indices = np.concatenate(
                [np.asarray(c.cells, dtype=np.int64) for c in ordered]
            )
        else:
            self.indices = np.empty(0, dtype=np.int64)

    def _cells(self, i: int) -> np.ndarray:
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def run(self, counts: np.ndarray) -> Tuple[np.ndarray, bool]:
        """One full IPF solve; returns ``(new_counts, converged)``.

        ``counts`` is not modified. Cells inside a positive-target
        constraint that currently carry zero mass are seeded with
        :data:`EPSILON_MASS` — multiplicative scaling can never create
        mass out of nothing otherwise.
        """
        result = np.asarray(counts, dtype=np.float64).copy()
        if result.ndim != 1:
            raise StatisticsError("iterative_scaling works on flat cell arrays")
        if np.any(result < 0):
            raise StatisticsError("cell counts must be non-negative")
        if self.n_constraints == 0:
            return result, True

        for i in range(self.n_constraints):
            cells = self._cells(i)
            if self.targets[i] > 0 and len(cells) > 0 and result[cells].sum() <= 0:
                result[cells] = EPSILON_MASS

        converged = False
        for _ in range(self.max_iterations):
            worst = 0.0
            for i in range(self.n_constraints):
                cells = self._cells(i)
                if len(cells) == 0:
                    continue
                target = self.targets[i]
                current = result[cells].sum()
                if target == 0.0:
                    result[cells] = 0.0
                    continue
                if current <= 0.0:
                    result[cells] = target / len(cells)
                    worst = np.inf
                    continue
                ratio = target / current
                result[cells] *= ratio
                worst = max(worst, abs(ratio - 1.0))
            if worst <= self.tolerance:
                converged = True
                break
        return result, converged


def iterative_scaling(
    counts: np.ndarray,
    constraints: Sequence[CellConstraint],
    max_iterations: int = 16,
    tolerance: float = 4e-3,
) -> Tuple[np.ndarray, bool]:
    """Scale ``counts`` multiplicatively until all constraints hold.

    Returns ``(new_counts, converged)``. ``counts`` is not modified. This
    is the one-shot entry point; callers that re-satisfy the same
    constraint set repeatedly should hold a :class:`CalibrationPlan`.
    """
    return CalibrationPlan(constraints, max_iterations, tolerance).run(counts)


def max_abs_violation(
    counts: np.ndarray, constraints: Sequence[CellConstraint]
) -> float:
    """Largest relative violation across constraints (diagnostics/tests)."""
    worst = 0.0
    for c in constraints:
        current = float(counts[c.cells].sum()) if len(c.cells) else 0.0
        if c.target == 0.0:
            worst = max(worst, current)
        else:
            worst = max(worst, abs(current - c.target) / c.target)
    return worst


def uniformity_deviation(counts: np.ndarray, volumes: np.ndarray) -> float:
    """How far a histogram is from uniform: weighted CV of cell density.

    0 means perfectly uniform (density identical everywhere). The QSS
    archive evicts the most uniform histograms first because they carry the
    least information beyond the optimizer's default assumption
    (Section 3.4).
    """
    counts = np.asarray(counts, dtype=np.float64)
    volumes = np.asarray(volumes, dtype=np.float64)
    if counts.shape != volumes.shape:
        raise StatisticsError("counts/volumes shape mismatch")
    total_mass = counts.sum()
    total_volume = volumes.sum()
    if total_mass <= 0 or total_volume <= 0:
        return 0.0
    density = counts / np.maximum(volumes, EPSILON_MASS)
    mean_density = total_mass / total_volume
    # volume-weighted standard deviation of density, relative to the mean
    var = float(np.average((density - mean_density) ** 2, weights=volumes))
    return float(np.sqrt(var) / mean_density)


def make_constraints(
    pairs: Sequence[Tuple[np.ndarray, float]],
) -> List[CellConstraint]:
    """Convenience constructor preserving order as recency."""
    return [
        CellConstraint(cells=np.asarray(c, dtype=np.int64), target=t, sequence=i)
        for i, (c, t) in enumerate(pairs)
    ]
