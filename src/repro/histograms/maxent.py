"""Maximum-entropy calibration by iterative proportional fitting (IPF).

Section 3.4 of the paper updates QSS histograms so the bucket counts
"satisfy the knowledge gained by the new statistics without assuming any
further knowledge of the data". With axis-aligned constraints over a grid of
buckets, the maximum-entropy distribution subject to linear count
constraints is exactly what iterative proportional fitting converges to
(this is the ISOMER [13] construction the paper extends).

Constraints may be mutually inconsistent when observations were taken at
different times against changing data; the solver then oscillates inside a
bounded band. We iterate oldest-to-newest so the most recent observation
gets the last word of every sweep, and stop after ``max_iterations``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import StatisticsError

EPSILON_MASS = 1e-9


@dataclass
class CellConstraint:
    """``counts[cells].sum()`` should equal ``target``."""

    cells: np.ndarray  # flat cell indices
    target: float
    sequence: int = 0  # insertion order; newer constraints applied last

    def __post_init__(self) -> None:
        if self.target < 0:
            raise StatisticsError("constraint target must be non-negative")


def iterative_scaling(
    counts: np.ndarray,
    constraints: Sequence[CellConstraint],
    max_iterations: int = 16,
    tolerance: float = 4e-3,
) -> Tuple[np.ndarray, bool]:
    """Scale ``counts`` multiplicatively until all constraints hold.

    Returns ``(new_counts, converged)``. ``counts`` is not modified.

    Cells inside a positive-target constraint that currently carry zero
    mass are seeded with :data:`EPSILON_MASS` — multiplicative scaling can
    never create mass out of nothing otherwise.
    """
    result = np.asarray(counts, dtype=np.float64).copy()
    if result.ndim != 1:
        raise StatisticsError("iterative_scaling works on flat cell arrays")
    if np.any(result < 0):
        raise StatisticsError("cell counts must be non-negative")
    # Zero-target constraints are absorbing (scaled zeros stay zero), so
    # they go first; every later constraint can still be satisfied by
    # scaling the remaining cells. Others apply oldest-to-newest.
    ordered = sorted(
        constraints, key=lambda c: (c.target != 0.0, c.sequence)
    )
    if not ordered:
        return result, True

    for c in ordered:
        if c.target > 0 and len(c.cells) > 0 and result[c.cells].sum() <= 0:
            result[c.cells] = EPSILON_MASS

    converged = False
    for _ in range(max_iterations):
        worst = 0.0
        for c in ordered:
            if len(c.cells) == 0:
                continue
            current = result[c.cells].sum()
            if c.target == 0.0:
                result[c.cells] = 0.0
                continue
            if current <= 0.0:
                result[c.cells] = c.target / len(c.cells)
                worst = np.inf
                continue
            ratio = c.target / current
            result[c.cells] *= ratio
            worst = max(worst, abs(ratio - 1.0))
        if worst <= tolerance:
            converged = True
            break
    return result, converged


def max_abs_violation(
    counts: np.ndarray, constraints: Sequence[CellConstraint]
) -> float:
    """Largest relative violation across constraints (diagnostics/tests)."""
    worst = 0.0
    for c in constraints:
        current = float(counts[c.cells].sum()) if len(c.cells) else 0.0
        if c.target == 0.0:
            worst = max(worst, current)
        else:
            worst = max(worst, abs(current - c.target) / c.target)
    return worst


def uniformity_deviation(counts: np.ndarray, volumes: np.ndarray) -> float:
    """How far a histogram is from uniform: weighted CV of cell density.

    0 means perfectly uniform (density identical everywhere). The QSS
    archive evicts the most uniform histograms first because they carry the
    least information beyond the optimizer's default assumption
    (Section 3.4).
    """
    counts = np.asarray(counts, dtype=np.float64)
    volumes = np.asarray(volumes, dtype=np.float64)
    if counts.shape != volumes.shape:
        raise StatisticsError("counts/volumes shape mismatch")
    total_mass = counts.sum()
    total_volume = volumes.sum()
    if total_mass <= 0 or total_volume <= 0:
        return 0.0
    density = counts / np.maximum(volumes, EPSILON_MASS)
    mean_density = total_mass / total_volume
    # volume-weighted standard deviation of density, relative to the mean
    var = float(np.average((density - mean_density) ** 2, weights=volumes))
    return float(np.sqrt(var) / mean_density)


def make_constraints(
    pairs: Sequence[Tuple[np.ndarray, float]],
) -> List[CellConstraint]:
    """Convenience constructor preserving order as recency."""
    return [
        CellConstraint(cells=np.asarray(c, dtype=np.int64), target=t, sequence=i)
        for i, (c, t) in enumerate(pairs)
    ]
