"""Half-open numeric intervals and rectangular regions.

All selectivity machinery works over ``[low, high)`` intervals on the
columns' physical (numeric) domain. Integer and dictionary-coded columns
convert predicates so the half-open convention is exact (e.g. ``a > 5`` on
an INT column becomes ``[6, +inf)``); float columns use the continuous
interpretation.

A :class:`Region` is an axis-aligned box: one interval per dimension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A half-open interval ``[low, high)``; either bound may be infinite."""

    low: float = -INF
    high: float = INF

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise ValueError("interval bounds cannot be NaN")

    @property
    def is_empty(self) -> bool:
        return self.high <= self.low

    @property
    def is_unbounded(self) -> bool:
        return math.isinf(self.low) and math.isinf(self.high)

    @property
    def width(self) -> float:
        if self.is_empty:
            return 0.0
        return self.high - self.low

    def contains_value(self, value: float) -> bool:
        return self.low <= value < self.high

    def contains_interval(self, other: "Interval") -> bool:
        if other.is_empty:
            return True
        return self.low <= other.low and other.high <= self.high

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.low, other.low), min(self.high, other.high))

    def overlaps(self, other: "Interval") -> bool:
        return not self.intersect(other).is_empty

    def clip(self, low: float, high: float) -> "Interval":
        return Interval(max(self.low, low), min(self.high, high))

    def overlap_fraction(self, of: "Interval") -> float:
        """Fraction of ``of``'s width covered by this interval.

        Assumes ``of`` is bounded; used for uniform interpolation within
        histogram buckets.
        """
        if of.is_empty or of.width == 0.0:
            return 1.0 if self.contains_value(of.low) else 0.0
        inter = self.intersect(of)
        if inter.is_empty:
            return 0.0
        return min(1.0, inter.width / of.width)

    def __str__(self) -> str:
        return f"[{self.low}, {self.high})"


FULL = Interval()


@dataclass(frozen=True)
class Region:
    """An axis-aligned box: one interval per dimension (fixed order)."""

    intervals: Tuple[Interval, ...]

    @staticmethod
    def of(*intervals: Interval) -> "Region":
        return Region(tuple(intervals))

    @staticmethod
    def full(ndim: int) -> "Region":
        return Region(tuple(FULL for _ in range(ndim)))

    @property
    def ndim(self) -> int:
        return len(self.intervals)

    @property
    def is_empty(self) -> bool:
        return any(iv.is_empty for iv in self.intervals)

    def intersect(self, other: "Region") -> "Region":
        if self.ndim != other.ndim:
            raise ValueError("region dimensionality mismatch")
        return Region(
            tuple(a.intersect(b) for a, b in zip(self.intervals, other.intervals))
        )

    def contains(self, other: "Region") -> bool:
        if self.ndim != other.ndim:
            raise ValueError("region dimensionality mismatch")
        return all(
            a.contains_interval(b) for a, b in zip(self.intervals, other.intervals)
        )

    def volume_fraction(self, within: "Region") -> float:
        """Product of per-dimension overlap fractions against ``within``."""
        frac = 1.0
        for iv, box in zip(self.intervals, within.intervals):
            frac *= iv.overlap_fraction(box)
            if frac == 0.0:
                return 0.0
        return frac

    def __str__(self) -> str:
        return " x ".join(str(iv) for iv in self.intervals)


def hull(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Smallest interval containing all inputs (None for no inputs)."""
    lo: Optional[float] = None
    hi: Optional[float] = None
    for iv in intervals:
        if iv.is_empty:
            continue
        lo = iv.low if lo is None else min(lo, iv.low)
        hi = iv.high if hi is None else max(hi, iv.high)
    if lo is None or hi is None:
        return None
    return Interval(lo, hi)
