"""Figure 5: per-query scatter, JITS vs GeneralStats.

The paper: "Almost all of the queries have a significant improvement,
while only a few ones lie in the degradation region." General statistics
combine correlated predicates under independence and never refresh, so
JITS wins on most plan-sensitive queries.
"""

from conftest import emit

from repro.workload import ScatterSplit, Setting, format_table


def test_fig5_jits_vs_general_stats(benchmark, setting_reports):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    jits = setting_reports[Setting.JITS]
    general = setting_reports[Setting.GENERAL]

    wall = ScatterSplit.of(
        [r.total_time for r in jits.select_records()],
        [r.total_time for r in general.select_records()],
    )
    cost = ScatterSplit.of(
        jits.select_modeled_costs(), general.select_modeled_costs()
    )
    emit(
        "fig5_vs_general_stats",
        format_table(
            ["metric", "improved", "degraded", "unchanged", "total ratio"],
            [
                [
                    "wall-clock",
                    wall.improved,
                    wall.degraded,
                    wall.unchanged,
                    round(wall.total_candidate / wall.total_baseline, 3),
                ],
                [
                    "modeled cost",
                    cost.improved,
                    cost.degraded,
                    cost.unchanged,
                    round(cost.total_candidate / cost.total_baseline, 3),
                ],
            ],
        ),
        metrics={
            "wall": {
                "improved": wall.improved,
                "degraded": wall.degraded,
                "total_ratio": wall.total_candidate / wall.total_baseline,
            },
            "modeled_cost": {
                "improved": cost.improved,
                "degraded": cost.degraded,
                "total_ratio": cost.total_candidate / cost.total_baseline,
            },
        },
    )

    # The deterministic comparison: more queries improve than degrade, and
    # the workload as a whole is cheaper under JITS. (The paper's margin
    # is larger at DB2 scale; see EXPERIMENTS.md for the fidelity notes.)
    assert cost.improved > cost.degraded
    assert cost.total_candidate < 0.97 * cost.total_baseline
