"""Figure 6: tuning the sensitivity-analysis threshold s_max.

Average compilation and execution time per query for
s_max in {0, 0.1, 0.5, 0.7, 0.9, 1}:

* s_max = 0 — no sensitivity analysis, all statistics always collected:
  huge compilation time, no execution benefit over moderate thresholds;
* rising s_max sheds collection (compilation time falls monotonically);
* s_max = 1 — no statistics ever collected: compilation is cheapest,
  execution worst (this is the traditional optimizer).
"""

import os

from conftest import DATA_SEED, SCALE, emit

from repro.workload import (
    Setting,
    WorkloadOptions,
    build_car_database,
    format_table,
    generate_workload,
    run_setting,
)

S_MAX_VALUES = (0.0, 0.1, 0.5, 0.7, 0.9, 1.0)
# The sweep runs the workload six times; trim it a little by default.
N_SWEEP = int(os.environ.get("REPRO_SWEEP_STATEMENTS", "180"))


def test_fig6_smax_sweep(benchmark):
    _, profile = build_car_database(scale=SCALE, seed=DATA_SEED)
    workload = generate_workload(
        profile, WorkloadOptions(n_statements=N_SWEEP, seed=3)
    )

    def sweep():
        return {
            s_max: run_setting(
                Setting.JITS,
                workload,
                scale=SCALE,
                data_seed=DATA_SEED,
                s_max=s_max,
            )
            for s_max in S_MAX_VALUES
        }

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for s_max, report in reports.items():
        cost = sum(report.select_modeled_costs()) / 1000.0
        rows.append(
            [
                s_max,
                round(report.avg_compile * 1000, 2),
                round(report.avg_execution * 1000, 2),
                round(report.avg_total * 1000, 2),
                round(cost, 0),
            ]
        )
    emit(
        "fig6_smax_sweep",
        format_table(
            ["s_max", "avg compile ms", "avg execute ms", "avg total ms",
             "total modeled kcost"],
            rows,
        ),
        metrics={
            str(s_max): {
                "avg_compile_ms": report.avg_compile * 1000,
                "avg_execute_ms": report.avg_execution * 1000,
                "avg_total_ms": report.avg_total * 1000,
                "total_modeled_cost": sum(report.select_modeled_costs()),
            }
            for s_max, report in reports.items()
        },
        config={"n_statements": N_SWEEP, "s_max_values": list(S_MAX_VALUES)},
    )

    compile_ms = {s: r.avg_compile for s, r in reports.items()}
    modeled = {s: sum(r.select_modeled_costs()) for s, r in reports.items()}

    # Compilation time falls as s_max rises (less collection) — checked at
    # the paper's inflection points with a little slack for wall noise.
    assert compile_ms[0.0] > compile_ms[0.5] * 1.3
    assert compile_ms[0.5] >= compile_ms[1.0] * 0.9
    assert compile_ms[0.0] > compile_ms[1.0] * 2.0

    # Execution quality: collecting (any s_max < 1) beats never collecting.
    assert modeled[0.5] < modeled[1.0]
    assert modeled[0.0] < modeled[1.0]
    # "Increasing s_max from 0 to 0.5 decreases the average compilation
    # time significantly while the average execution time is not affected"
    # (plan quality at 0.5 stays within a modest factor of always-collect).
    assert modeled[0.5] < modeled[0.0] * 1.4

    # The paper's headline: with no sensitivity analysis (s_max = 0) the
    # system performs worse than traditional (s_max = 1) on *total* time
    # because of pure overhead. Compare total wall-clock.
    total = {s: r.avg_total for s, r in reports.items()}
    assert total[0.0] > total[1.0] * 0.9
