"""Table 2: the experiment database (CAR / OWNER / DEMOGRAPHICS / ACCIDENTS).

Regenerates the paper's table of row counts (at the configured scale) and
benchmarks database construction.
"""

from conftest import DATA_SEED, SCALE, emit

from repro.workload import PAPER_SIZES, build_car_database, format_table


def test_table2_database_sizes(benchmark):
    db, profile = benchmark.pedantic(
        build_car_database,
        kwargs={"scale": SCALE, "seed": DATA_SEED},
        rounds=1,
        iterations=1,
    )
    rows = []
    for name in ("car", "owner", "demographics", "accidents"):
        table = db.table(name)
        rows.append(
            [
                name.upper(),
                f"{PAPER_SIZES[name]:,}",
                f"{table.row_count:,}",
                len(table.schema.columns),
            ]
        )
    emit(
        "table2_database",
        format_table(
            ["Table", "Paper rows", f"Ours (x{SCALE})", "Columns"], rows
        ),
        metrics={
            name: {
                "paper_rows": PAPER_SIZES[name],
                "rows": db.table(name).row_count,
            }
            for name in ("car", "owner", "demographics", "accidents")
        },
    )
    # Shape: proportions of Table 2 are preserved.
    ratio_car = db.table("car").row_count / db.table("owner").row_count
    ratio_acc = db.table("accidents").row_count / db.table("owner").row_count
    assert abs(ratio_car - 1.430798) < 0.01
    assert abs(ratio_acc - 4.28998) < 0.01
