"""MVCC snapshot reads vs the blocking read path under a sustained writer.

One writer session hammers CAR with UPDATE statements, each paying
``commit_latency`` inside its lock span (the durable-commit model: a log
force before the locks release). Four reader sessions concurrently run
aggregate SELECTs against the same table. Flipping only
``EngineConfig.mvcc``:

* ``mvcc=False`` — the blocking read path: every SELECT takes the
  table's read lock and queues behind the writer's exclusive commit
  spans.
* ``mvcc=True``  — readers pin the table's published snapshot
  generation at statement start and never touch the per-table write
  lock; the writer's copy-on-write publish does not stall them.

Bars: aggregate read throughput at 4 readers is >= ``SPEEDUP_BAR`` (3x)
with snapshots vs blocking, and **every** read observes a statement-
atomic state: each ``(COUNT, SUM)`` pair must exactly equal one of the
states a sequential replay of the writer's statements produces
(``sequential_match`` == 1.00, asserted for both modes).

Run under pytest (the usual path) or standalone:

    python bench_mvcc_reads.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Dict, List

from repro import Engine, EngineConfig
from repro.workload import build_car_database, format_table

N_READERS = 4
COMMIT_LATENCY = 0.06  # seconds per write statement, inside the lock span
WRITER_GAP = 0.002  # think time between commits (see bench_lock_granularity)
SPEEDUP_BAR = 3.0  # snapshot vs blocking aggregate read throughput

WRITER_STATEMENT = "UPDATE car SET price = price + 1.0 WHERE id < 40"
READER_STATEMENT = "SELECT COUNT(*), SUM(price) FROM car"


def build_engine(mvcc: bool, scale: float, seed: int,
                 commit_latency: float) -> Engine:
    db, _ = build_car_database(scale=scale, seed=seed)
    config = EngineConfig.traditional()
    config.mvcc = mvcc
    config.commit_latency = commit_latency
    return Engine(db, config)


def run_side(
    mvcc: bool,
    scale: float,
    seed: int,
    reads_per_reader: int,
    commit_latency: float,
) -> Dict:
    engine = build_engine(mvcc, scale, seed, commit_latency)
    stop = threading.Event()
    writes = {"n": 0}
    observed: List[List[tuple]] = [[] for _ in range(N_READERS)]
    start = threading.Barrier(N_READERS + 1)

    def writer() -> None:
        session = engine.session()
        start.wait()
        while not stop.is_set():
            session.execute(WRITER_STATEMENT)
            writes["n"] += 1
            time.sleep(WRITER_GAP)

    def reader(index: int) -> None:
        session = engine.session()
        start.wait()
        for _ in range(reads_per_reader):
            observed[index].append(session.execute(READER_STATEMENT).rows[0])

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(i,)) for i in range(N_READERS)
    ]
    for t in threads:
        t.start()
    started = time.perf_counter()
    for t in threads[1:]:
        t.join(timeout=600)
    elapsed = time.perf_counter() - started
    stop.set()
    threads[0].join(timeout=60)

    # Sequential replay: the set of statement-atomic states a reader may
    # legally observe is exactly {state after k writer commits}.
    replay = build_engine(mvcc, scale, seed, commit_latency=0.0)
    valid = {replay.execute(READER_STATEMENT).rows[0]}
    for _ in range(writes["n"]):
        replay.execute(WRITER_STATEMENT)
        valid.add(replay.execute(READER_STATEMENT).rows[0])

    reads = [row for per_reader in observed for row in per_reader]
    matched = sum(1 for row in reads if row in valid)
    return {
        "elapsed": elapsed,
        "reads": len(reads),
        "reads_per_sec": len(reads) / elapsed,
        "writer_statements": writes["n"],
        "sequential_match": matched / len(reads) if reads else 0.0,
    }


def run_bench(
    scale: float,
    seed: int,
    reads_per_reader: int,
    commit_latency: float = COMMIT_LATENCY,
) -> Dict:
    sides = {
        "blocking": run_side(
            False, scale, seed, reads_per_reader, commit_latency
        ),
        "snapshot": run_side(
            True, scale, seed, reads_per_reader, commit_latency
        ),
    }
    speedup = (
        sides["snapshot"]["reads_per_sec"] / sides["blocking"]["reads_per_sec"]
    )
    table = format_table(
        ["read path", "reads", "elapsed_s", "reads/s", "writer stmts",
         "seq match"],
        [
            [
                name,
                str(r["reads"]),
                f"{r['elapsed']:.3f}",
                f"{r['reads_per_sec']:.1f}",
                str(r["writer_statements"]),
                f"{r['sequential_match']:.2f}",
            ]
            for name, r in sides.items()
        ],
    )
    table += (
        f"\nread throughput, {N_READERS} readers vs 1 sustained writer "
        f"(commit latency {commit_latency * 1000:.0f} ms/write): "
        f"{speedup:.2f}x (bar {SPEEDUP_BAR}x)"
    )
    return {"sides": sides, "speedup": speedup, "table": table}


def check_bars(bench: Dict, speedup_bar: float = SPEEDUP_BAR) -> List[str]:
    failures = []
    if bench["speedup"] < speedup_bar:
        failures.append(
            f"snapshot-read speedup {bench['speedup']:.2f}x < {speedup_bar}x"
        )
    for name, side in bench["sides"].items():
        if side["sequential_match"] != 1.0:
            failures.append(
                f"{name}: only {side['sequential_match']:.3f} of reads "
                "matched a sequential-replay state (want 1.00)"
            )
    return failures


def json_metrics(bench: Dict) -> Dict:
    return {
        "sides": {
            name: {
                "reads_per_sec": side["reads_per_sec"],
                "writer_statements": side["writer_statements"],
                "sequential_match": side["sequential_match"],
            }
            for name, side in bench["sides"].items()
        },
        "read_speedup": bench["speedup"],
    }


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_mvcc_reads():
    from conftest import DATA_SEED, SCALE, emit

    # Small scale on purpose: the contrast under test is lock waiting vs
    # snapshot pinning, not scan CPU (which the GIL charges both paths).
    bench = run_bench(min(SCALE, 0.005), DATA_SEED, reads_per_reader=40)
    emit(
        "bench_mvcc_reads",
        bench["table"],
        metrics=json_metrics(bench),
        config={
            "commit_latency": COMMIT_LATENCY,
            "readers": N_READERS,
            "writer_statement": WRITER_STATEMENT,
        },
    )
    failures = check_bars(bench)
    assert not failures, "\n".join(failures) + "\n" + bench["table"]


# ----------------------------------------------------------------------
# standalone entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale / short streams with a relaxed speedup bar; the "
        "sequential-match bar stays exact",
    )
    parser.add_argument("--scale", type=float, default=0.005)
    parser.add_argument("--reads", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    scale = 0.005 if args.smoke else args.scale
    reads = 15 if args.smoke else args.reads
    bench = run_bench(scale, args.seed, reads)
    print(bench["table"])
    failures = check_bars(bench, speedup_bar=1.5 if args.smoke else SPEEDUP_BAR)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(
        f"OK: snapshot-read speedup {bench['speedup']:.2f}x, sequential "
        f"match 1.00 on both read paths"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
