"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper. Knobs:

* ``REPRO_SCALE``       — fraction of the paper's Table 2 row counts
                          (default 0.04; the paper's DB2 run is scale 1.0).
* ``REPRO_STATEMENTS``  — workload length (default 250; the paper uses 840).
* ``REPRO_SEED``        — data/workload seed (default 0/3).

Each bench prints its table to stdout AND appends it to
``benchmarks/results/<name>.txt`` so results survive pytest's capture,
plus a machine-readable ``benchmarks/results/BENCH_<name>.json`` (metrics
+ run config) so the perf trajectory is trackable across PRs.

Assertions target the *shape* of the paper's results (who wins, direction
of trends). Wall-clock numbers are reported; assertions use the
deterministic modeled-cost metric wherever machine noise could flake.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.workload import (
    GeneratedWorkload,
    WorkloadOptions,
    build_car_database,
    generate_workload,
)

# Defaults chosen so the paper's contrasts are visible: large enough that
# misestimated plans are genuinely expensive, long enough that data churn
# makes pre-collected statistics stale. (The paper: scale 1.0, 840 stmts.)
SCALE = float(os.environ.get("REPRO_SCALE", "0.05"))
N_STATEMENTS = int(os.environ.get("REPRO_STATEMENTS", "840"))
DATA_SEED = int(os.environ.get("REPRO_SEED", "0"))
WORKLOAD_SEED = 3

RESULTS_DIR = Path(__file__).parent / "results"


def _git_sha() -> str:
    """HEAD commit of the repo the benchmark ran from ('' outside git)."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return ""


def provenance() -> dict:
    """Run provenance stamped into every BENCH_<name>.json: which commit
    produced the number, when, and on which interpreter/numpy — so perf
    trajectories across PRs are attributable."""
    return {
        "git_sha": _git_sha(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
    }


def _atomic_write(path: Path, content: str) -> None:
    """Write via a same-directory temp file + rename, so an interrupted
    or partial benchmark run never truncates a previous good result."""
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    with open(tmp, "w") as f:
        f.write(content)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def emit(name: str, text: str, metrics=None, config=None) -> None:
    """Print a result block and persist it under benchmarks/results/.

    Writes the human-readable table to ``<name>.txt`` and a structured
    ``BENCH_<name>.json`` ({bench, config, metrics}) next to it, both
    atomically (temp file + rename). ``metrics`` is the bench's own
    measurement dict (ops/s, p50/p95, counters, ...); ``config`` adds
    bench-specific knobs on top of the shared scale/statements/seed
    envelope.
    """
    banner = f"\n===== {name} (scale={SCALE}, statements={N_STATEMENTS}) ====="
    print(banner)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    _atomic_write(
        RESULTS_DIR / f"{name}.txt", banner.strip() + "\n" + text + "\n"
    )
    payload = {
        "bench": name,
        "provenance": provenance(),
        "config": {
            "scale": SCALE,
            "statements": N_STATEMENTS,
            "data_seed": DATA_SEED,
            "workload_seed": WORKLOAD_SEED,
            **(config or {}),
        },
        "metrics": metrics if metrics is not None else {},
    }
    _atomic_write(
        RESULTS_DIR / f"BENCH_{name}.json",
        json.dumps(payload, indent=2, sort_keys=True, default=float) + "\n",
    )


@pytest.fixture(scope="session")
def workload() -> GeneratedWorkload:
    _, profile = build_car_database(scale=SCALE, seed=DATA_SEED)
    return generate_workload(
        profile, WorkloadOptions(n_statements=N_STATEMENTS, seed=WORKLOAD_SEED)
    )


@pytest.fixture(scope="session")
def setting_reports(workload):
    """The four Section 4.2 settings, run once and shared by Figs 3-5."""
    from repro.workload import Setting, run_setting

    return {
        setting: run_setting(
            setting, workload, scale=SCALE, data_seed=DATA_SEED
        )
        for setting in Setting
    }
