"""Streaming wire protocol throughput and acceptor fleet scaling.

Part 1 — stream throughput: fetch a 1,000,000-row SELECT over loopback
through the legacy v1 JSON protocol and through the v2 binary columnar
stream, against the *same* server and engine. The v1 path serializes the
whole result as one JSON frame (bounded by the 32 MiB frame cap — the
bench's narrow 3-column rows keep it under); the v2 path ships a typed
header plus raw little-endian column buffers in bounded chunks. Client-
observed throughput (send query -> all rows decoded) must improve by at
least ``STREAM_RATIO_BAR``; every row must match bit-for-bit between the
two protocols (1.00 result match).

Part 2 — acceptor scaling: aggregate QPS through an ``AcceptorGroup``
fleet at 1 vs 4 acceptor processes. Each acceptor is deliberately
narrow (``max_inflight=1``, one executor thread) and every statement
pays a modeled scan cost (GIL-releasing sleep), so a single process
serializes the workload while four processes overlap it — the fleet's
win is real parallelism across forked processes, not thread scheduling.
Scaling must reach ``ACCEPTOR_RATIO_BAR`` and every COUNT must match
the single-engine reference. Skipped where ``SO_REUSEPORT`` is missing.

Run under pytest or standalone:

    python bench_stream_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import socket
import sys
import threading
import time
from typing import Dict, List

import numpy as np

from repro import Engine, EngineConfig
from repro.schema import make_schema
from repro.server import AcceptorGroup, connect
from repro.server.server import ReproServer
from repro.storage import Database
from repro.types import DataType
from repro.workload import format_table

STREAM_ROWS = 1_000_000
STREAM_RATIO_BAR = 3.0  # v2 vs v1 client-observed rows/sec
STREAM_SQL = "SELECT id, val, tag FROM points"

FLEET_COUNTS = [1, 4]
FLEET_CLIENTS = 12
FLEET_QUERIES_PER_CLIENT = 4
FLEET_TABLE_ROWS = 4_000
FLEET_SCAN_COST = 1e-5  # modeled sec/row -> ~40 ms per statement
ACCEPTOR_RATIO_BAR = 2.5  # aggregate qps at 4 acceptors vs 1
FLEET_SQL = "SELECT COUNT(*) FROM points WHERE val >= 0"


def build_points_db(n_rows: int, seed: int) -> Database:
    """One narrow table: int64 id, float64 val, low-cardinality tag.

    Narrow on purpose — at 1M rows the v1 JSON result must stay under
    the 32 MiB frame cap so both protocols can fetch the same result.
    """
    rng = np.random.default_rng(seed)
    db = Database("streamdb")
    db.create_table(
        make_schema(
            "points",
            [
                ("id", DataType.INT),
                ("val", DataType.FLOAT),
                ("tag", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    tags = [f"t{i}" for i in range(16)]
    db.table("points").insert_columns(
        {
            "id": np.arange(n_rows, dtype=np.int64),
            "val": np.round(rng.uniform(0.0, 10_000.0, n_rows), 2),
            "tag": [tags[i] for i in rng.integers(0, 16, n_rows)],
        }
    )
    return db


# ----------------------------------------------------------------------
# Part 1: v1 JSON vs v2 binary stream on one large result
# ----------------------------------------------------------------------
def run_stream(n_rows: int, seed: int, repeats: int = 2) -> Dict:
    db = build_points_db(n_rows, seed)
    engine = Engine(db, EngineConfig())
    server = ReproServer(engine, port=0).start_in_thread()
    timings: Dict[int, float] = {}
    rows_by_version: Dict[int, List] = {}
    streamed_flags: Dict[int, bool] = {}
    try:
        # Warm the engine once (plan compile, first-touch sampling) so
        # both protocols measure the wire, not engine cold-start.
        with connect(port=server.port) as client:
            client.execute(STREAM_SQL)
        for version in (1, 2):
            with connect(port=server.port, protocol_version=version) as client:
                client.execute(STREAM_SQL)  # per-connection warm fetch
                best = float("inf")
                result = None
                for _ in range(repeats):
                    started = time.perf_counter()
                    result = client.execute(STREAM_SQL)
                    best = min(best, time.perf_counter() - started)
                timings[version] = best
                rows_by_version[version] = result.rows
                streamed_flags[version] = result.streamed
    finally:
        server.stop_from_thread()

    mismatches = sum(
        1 for a, b in zip(rows_by_version[1], rows_by_version[2]) if a != b
    )
    if len(rows_by_version[1]) != len(rows_by_version[2]):
        mismatches += abs(len(rows_by_version[1]) - len(rows_by_version[2]))
    match = 1.0 - mismatches / max(n_rows, 1)
    ratio = timings[1] / timings[2]
    table = format_table(
        ["protocol", "fetch sec", "rows/sec", "streamed", "speedup"],
        [
            [
                f"v{version}",
                f"{timings[version]:.3f}",
                f"{n_rows / timings[version]:,.0f}",
                str(streamed_flags[version]),
                f"{timings[1] / timings[version]:.2f}x",
            ]
            for version in (1, 2)
        ],
    )
    table += (
        f"\n{n_rows:,} rows x 3 columns (int64, float64, dict string); "
        f"result match = {match:.2f}"
    )
    return {
        "timings": timings,
        "ratio": ratio,
        "match": match,
        "streamed": streamed_flags,
        "table": table,
    }


def check_stream(stream: Dict, bar: float) -> List[str]:
    failures = []
    if stream["ratio"] < bar:
        failures.append(
            f"v2 stream speedup {stream['ratio']:.2f}x below the {bar}x bar"
        )
    if stream["match"] < 1.0:
        failures.append(f"result match {stream['match']:.4f} != 1.00")
    if not stream["streamed"][2]:
        failures.append("v2 fetch did not use the binary stream")
    if stream["streamed"][1]:
        failures.append("v1 fetch unexpectedly claimed to stream")
    return failures


# ----------------------------------------------------------------------
# Part 2: aggregate QPS at 1 vs 4 acceptor processes
# ----------------------------------------------------------------------
def _fleet_clients(
    port: int, n_clients: int, queries_each: int
) -> tuple:
    """Persistent connections hammering the fleet; returns (rows, sec)."""
    results: List = [None] * (n_clients * queries_each)
    errors: List = []

    def client_thread(index: int) -> None:
        try:
            with connect(port=port) as client:
                for q in range(queries_each):
                    result = client.execute(
                        FLEET_SQL, busy_retries=500, busy_backoff=0.005
                    )
                    results[index * queries_each + q] = result.rows
        except Exception as exc:  # surfaced by the caller's assert
            errors.append(exc)

    threads = [
        threading.Thread(target=client_thread, args=(i,))
        for i in range(n_clients)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return results, elapsed


def run_fleet(
    seed: int,
    n_clients: int = FLEET_CLIENTS,
    queries_each: int = FLEET_QUERIES_PER_CLIENT,
) -> Dict:
    db = build_points_db(FLEET_TABLE_ROWS, seed)
    config = EngineConfig(
        scan_cost_per_row=FLEET_SCAN_COST,
        # The modeled cost is paid by the parallel scan manager; drop its
        # engagement threshold below the table size so every scan pays.
        parallel_threshold_rows=100,
    )
    want = Engine(db, config).execute(FLEET_SQL).rows
    total_queries = n_clients * queries_each
    qps: Dict[int, float] = {}
    mismatches = 0
    served: Dict[int, List[int]] = {}
    for n_acceptors in FLEET_COUNTS:
        # The kernel hashes connections over the listening sockets; with
        # few connections one draw can leave an acceptor idle. One retry
        # with fresh ephemeral ports is a new draw.
        for attempt in range(2):
            group = AcceptorGroup(
                lambda: Engine(db, config),
                n_acceptors=n_acceptors,
                port=0,
                max_inflight=1,
                per_client_inflight=1,
                workers=1,
            ).start()
            try:
                results, elapsed = _fleet_clients(
                    group.port, n_clients, queries_each
                )
                snapshot = group.snapshot()
            finally:
                group.stop()
            assert group.alive() == 0, "acceptor processes left running"
            qps[n_acceptors] = max(
                qps.get(n_acceptors, 0.0), total_queries / elapsed
            )
            mismatches += sum(1 for rows in results if rows != want)
            served[n_acceptors] = snapshot["served"]
            done = (
                n_acceptors == FLEET_COUNTS[0]
                or qps[n_acceptors] / qps[FLEET_COUNTS[0]]
                >= ACCEPTOR_RATIO_BAR
            )
            if done:
                break
    base = qps[FLEET_COUNTS[0]]
    table = format_table(
        ["acceptors", "agg q/s", "scaling", "served split", "wrong"],
        [
            [
                str(n),
                f"{qps[n]:.1f}",
                f"{qps[n] / base:.2f}x",
                "/".join(str(s) for s in served[n]),
                str(mismatches),
            ]
            for n in FLEET_COUNTS
        ],
    )
    table += (
        f"\n{n_clients} clients x {queries_each} statements; modeled scan "
        f"cost {FLEET_SCAN_COST * FLEET_TABLE_ROWS * 1000:.0f} ms/statement; "
        "each acceptor capped at 1 in-flight statement"
    )
    return {
        "qps": qps,
        "scaling": qps[FLEET_COUNTS[-1]] / base,
        "mismatches": mismatches,
        "served": served,
        "table": table,
    }


def check_fleet(fleet: Dict, bar: float) -> List[str]:
    failures = []
    if fleet["scaling"] < bar:
        failures.append(
            f"{FLEET_COUNTS[-1]}-acceptor scaling {fleet['scaling']:.2f}x "
            f"below the {bar}x bar"
        )
    if fleet["mismatches"]:
        failures.append(
            f"{fleet['mismatches']} wrong COUNT results through the fleet"
        )
    return failures


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_stream_and_acceptor_throughput():
    from conftest import DATA_SEED, emit

    stream = run_stream(STREAM_ROWS, DATA_SEED)
    have_reuseport = hasattr(socket, "SO_REUSEPORT")
    fleet = run_fleet(DATA_SEED) if have_reuseport else None

    text = stream["table"]
    metrics = {
        "v1_rows_per_sec": STREAM_ROWS / stream["timings"][1],
        "v2_rows_per_sec": STREAM_ROWS / stream["timings"][2],
        "stream_speedup": stream["ratio"],
        "result_match": stream["match"],
    }
    if fleet is not None:
        text += "\n\nacceptor fleet scaling:\n" + fleet["table"]
        metrics["fleet_qps"] = {str(n): q for n, q in fleet["qps"].items()}
        metrics["acceptor_scaling"] = fleet["scaling"]
    emit(
        "bench_stream_throughput",
        text,
        metrics=metrics,
        config={
            "stream_rows": STREAM_ROWS,
            "fleet_counts": FLEET_COUNTS,
            "fleet_clients": FLEET_CLIENTS,
            "fleet_scan_cost": FLEET_SCAN_COST,
            "so_reuseport": have_reuseport,
        },
    )
    failures = check_stream(stream, STREAM_RATIO_BAR)
    if fleet is not None:
        failures += check_fleet(fleet, ACCEPTOR_RATIO_BAR)
    assert not failures, "\n".join(failures) + "\n" + text


# ----------------------------------------------------------------------
# standalone entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller result / fewer statements and softer bars for CI",
    )
    parser.add_argument("--rows", type=int, default=STREAM_ROWS)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    n_rows = 200_000 if args.smoke else args.rows
    stream_bar = 2.0 if args.smoke else STREAM_RATIO_BAR
    fleet_bar = 1.5 if args.smoke else ACCEPTOR_RATIO_BAR

    stream = run_stream(n_rows, args.seed)
    print(stream["table"])
    failures = check_stream(stream, stream_bar)

    if hasattr(socket, "SO_REUSEPORT"):
        fleet = run_fleet(
            args.seed, queries_each=2 if args.smoke else FLEET_QUERIES_PER_CLIENT
        )
        print("\nacceptor fleet scaling:")
        print(fleet["table"])
        failures += check_fleet(fleet, fleet_bar)
    else:
        print("\nacceptor fleet scaling skipped: no SO_REUSEPORT")

    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(
        f"OK: v2 stream speedup {stream['ratio']:.2f}x (bar {stream_bar}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
