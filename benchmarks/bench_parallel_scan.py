"""Process-parallel table scans: 4-worker pool vs the sequential engine.

Both engines run the identical scan-heavy workload over the identical
car database with the identical modeled per-row scan cost
(``EngineConfig.scan_cost_per_row``, the scan-path analogue of the
lock-granularity bench's ``commit_latency``: a deterministic cost both
engines pay per scanned row, so the measured speedup is the worker
overlap, not host-core count). The sequential engine is
``scan_workers=0`` — the same sharded kernels, run in-process over a
single shard; the parallel engine shards every scan across a 4-worker
forkserver pool attached to the shared-memory column exports.

Bars:

* aggregate throughput speedup >= 2.5x at 4 workers;
* every query's result set byte-identical to the sequential engine
  (result-match ratio exactly 1.00) — sharding is an execution strategy,
  never a semantics change.

Run under pytest (the usual path) or standalone:

    python bench_parallel_scan.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List

from repro import Engine, EngineConfig
from repro.workload import build_car_database, format_table

SCAN_WORKERS = 4
SCAN_COST_PER_ROW = 2e-6  # seconds per scanned row, paid by both engines
PARALLEL_THRESHOLD = 512
SPEEDUP_BAR = 2.5  # parallel vs sequential aggregate throughput
RESULT_MATCH_BAR = 1.0  # fraction of queries with identical result sets

# Scan-heavy workload: every predicate targets an unindexed column, so
# each query is a full SeqScan of its table (price/year/salary/damage
# carry sorted indexes and would divert to index scans).
QUERIES = [
    "SELECT COUNT(*) FROM car WHERE make = 'Toyota'",
    "SELECT COUNT(*) FROM car WHERE color IN ('red', 'blue')",
    "SELECT id FROM car WHERE make = 'Honda' AND color = 'white'",
    "SELECT COUNT(*) FROM car WHERE model IN ('Camry', 'Civic', 'F150')",
    "SELECT COUNT(*) FROM owner WHERE age BETWEEN 30 AND 60",
    "SELECT id FROM owner WHERE gender = 'F' AND age < 25",
    "SELECT COUNT(*) FROM owner WHERE age > 65",
    "SELECT COUNT(*) FROM accidents WHERE severity >= 3",
    "SELECT AVG(damage) FROM accidents WHERE severity = 2",
    "SELECT COUNT(*) FROM accidents WHERE year BETWEEN 1998 AND 2003",
    "SELECT COUNT(*) FROM demographics WHERE education = 'phd'",
    "SELECT COUNT(*) FROM demographics WHERE city IN ('Ottawa', 'Toronto')",
]


def build_engine(
    workers: int, scale: float, seed: int, cost_per_row: float
) -> Engine:
    db, _ = build_car_database(scale=scale, seed=seed)
    config = EngineConfig.traditional()
    config.scan_workers = workers
    config.scan_cost_per_row = cost_per_row
    config.parallel_threshold_rows = PARALLEL_THRESHOLD
    return Engine(db, config)


def run_engine(engine: Engine, rounds: int) -> Dict:
    """Canonical per-query results (round 1) plus timed throughput."""
    results = {sql: sorted(map(repr, engine.execute(sql).rows))
               for sql in QUERIES}
    started = time.perf_counter()
    n = 0
    for _ in range(rounds):
        for sql in QUERIES:
            engine.execute(sql)
            n += 1
    elapsed = time.perf_counter() - started
    return {
        "results": results,
        "elapsed": elapsed,
        "queries_per_sec": n / elapsed,
        "parallel": engine.stats_snapshot().get("parallel", {}),
    }


def run_bench(
    scale: float,
    seed: int,
    rounds: int,
    cost_per_row: float = SCAN_COST_PER_ROW,
    workers: int = SCAN_WORKERS,
) -> Dict:
    runs = {}
    for label, n_workers in (("sequential", 0), (f"{workers}w", workers)):
        engine = build_engine(n_workers, scale, seed, cost_per_row)
        try:
            runs[label] = run_engine(engine, rounds)
        finally:
            engine.shutdown()

    par_label = f"{workers}w"
    matched = sum(
        runs[par_label]["results"][sql] == runs["sequential"]["results"][sql]
        for sql in QUERIES
    )
    result_match_ratio = matched / len(QUERIES)
    speedup = (
        runs[par_label]["queries_per_sec"]
        / runs["sequential"]["queries_per_sec"]
    )

    par_stats = runs[par_label]["parallel"]
    rows = [
        [
            label,
            f"{run['elapsed']:.3f}",
            f"{run['queries_per_sec']:.1f}",
            str(run["parallel"].get("parallel_calls", 0)),
            str(run["parallel"].get("inline_calls", 0)),
            str(run["parallel"].get("fallbacks", 0)),
        ]
        for label, run in runs.items()
    ]
    table = (
        f"Scan-heavy workload, {len(QUERIES)} queries x {rounds} rounds "
        f"(modeled scan cost {cost_per_row * 1e6:.1f} us/row):\n"
        + format_table(
            ["engine", "elapsed_s", "queries/s", "pool calls",
             "inline calls", "fallbacks"],
            rows,
        )
        + f"\n{workers}-worker speedup: {speedup:.2f}x (bar {SPEEDUP_BAR}x)"
        + f"\nresult-match ratio vs sequential: {result_match_ratio:.2f} "
        f"(bar {RESULT_MATCH_BAR:.2f})"
        + f"\ntables exported: {par_stats.get('tables_exported', 0)}, "
        f"worker respawns: {par_stats.get('worker_respawns', 0)}"
    )
    return {
        "runs": runs,
        "speedup": speedup,
        "result_match_ratio": result_match_ratio,
        "table": table,
    }


def check_bars(bench: Dict, speedup_bar: float = SPEEDUP_BAR) -> List[str]:
    failures = []
    if bench["speedup"] < speedup_bar:
        failures.append(
            f"4-worker speedup {bench['speedup']:.2f}x < {speedup_bar}x"
        )
    if bench["result_match_ratio"] < RESULT_MATCH_BAR:
        failures.append(
            f"result-match ratio {bench['result_match_ratio']:.2f} < "
            f"{RESULT_MATCH_BAR:.2f}"
        )
    par = bench["runs"][[k for k in bench["runs"] if k != "sequential"][0]]
    if par["parallel"].get("fallbacks", 0):
        failures.append(
            f"parallel engine fell back {par['parallel']['fallbacks']} time(s)"
        )
    return failures


def json_metrics(bench: Dict) -> Dict:
    return {
        "engines": {
            label: {
                "elapsed_s": run["elapsed"],
                "queries_per_sec": run["queries_per_sec"],
                "parallel_calls": run["parallel"].get("parallel_calls", 0),
                "inline_calls": run["parallel"].get("inline_calls", 0),
                "fallbacks": run["parallel"].get("fallbacks", 0),
            }
            for label, run in bench["runs"].items()
        },
        "speedup_4_workers": bench["speedup"],
        "result_match_ratio": bench["result_match_ratio"],
    }


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_parallel_scan():
    from conftest import DATA_SEED, SCALE, emit

    bench = run_bench(min(SCALE, 0.02), DATA_SEED, rounds=2)
    emit(
        "bench_parallel_scan",
        bench["table"],
        metrics=json_metrics(bench),
        config={
            "scan_workers": SCAN_WORKERS,
            "scan_cost_per_row": SCAN_COST_PER_ROW,
            "parallel_threshold_rows": PARALLEL_THRESHOLD,
            "queries": len(QUERIES),
        },
    )
    failures = check_bars(bench)
    assert not failures, "\n".join(failures) + "\n" + bench["table"]


# ----------------------------------------------------------------------
# standalone entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale / one round: verify identical results and that "
        "the overlap materializes, with a relaxed speedup bar",
    )
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    scale = 0.005 if args.smoke else args.scale
    rounds = 1 if args.smoke else args.rounds
    cost = 1e-5 if args.smoke else SCAN_COST_PER_ROW
    bench = run_bench(scale, args.seed, rounds, cost_per_row=cost)
    print(bench["table"])
    failures = check_bars(bench, speedup_bar=1.5 if args.smoke else SPEEDUP_BAR)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(
        f"OK: speedup {bench['speedup']:.2f}x, result-match ratio "
        f"{bench['result_match_ratio']:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
