"""Compilation fast path: sample/mask/plan caches + batched recalibration.

A repeated-template workload (the regime the fast path targets) compiled
three ways:

  cold      every cache disabled: per-query sampling, per-predicate mask
            evaluation, per-observe max-entropy calibration
  warm      sample + mask caches and deferred (batched) calibration
  fastpath  warm + the engine plan cache

All three run JITS with ``always_collect`` so per-query statistics
collection dominates compile time, as in the paper's Table 3 setup.
Expected shape: warm cuts mean compile time via cache hits, and fastpath
cuts it by >= 2x overall (the acceptance bar for this optimization); all
three produce identical query results.
"""

import pytest
from conftest import DATA_SEED, SCALE, emit

from repro import Engine, EngineConfig
from repro.jits import JITSConfig
from repro.workload import build_car_database, format_table

TEMPLATES = [
    "SELECT COUNT(*) FROM car WHERE make = 'Toyota' AND model = 'Camry'",
    "SELECT COUNT(*) FROM car WHERE price < 20000 AND year > 1999",
    "SELECT COUNT(*) FROM demographics WHERE city = 'Ottawa' AND salary > 5000",
    "SELECT COUNT(*) FROM accidents WHERE damage > 3000",
    "SELECT o.id, COUNT(*) FROM owner o, car c WHERE c.ownerid = o.id "
    "AND c.year > 2000 GROUP BY o.id",
]
ROUNDS = 30


def make_config(mode: str) -> EngineConfig:
    jits = JITSConfig(
        enabled=True,
        always_collect=True,
        migration_interval=0,  # isolate compile cost from migration ticks
        sample_cache_enabled=mode != "cold",
        mask_cache_enabled=mode != "cold",
        deferred_calibration=mode != "cold",
    )
    return EngineConfig(jits=jits, plan_cache_enabled=mode == "fastpath")


def run_mode(mode: str):
    db, _ = build_car_database(scale=SCALE, seed=DATA_SEED)
    engine = Engine(db, make_config(mode))
    compile_total = 0.0
    statements = 0
    answers = []
    # Blocked repetition: with always_collect, every *compiled* query lands
    # new QSS (bumping the archive version), so interleaving templates
    # would keep invalidating each other's cached plans by design. Blocks
    # are the repeated-template regime the plan cache targets.
    for sql in TEMPLATES:
        for _ in range(ROUNDS):
            result = engine.execute(sql)
            compile_total += result.compile_time
            statements += 1
            answers.append(sorted(map(tuple, result.rows)))
    return {
        "engine": engine,
        "mean_compile_ms": compile_total / statements * 1000,
        "answers": answers,
    }


def counters(engine: Engine) -> str:
    jits = engine.jits
    parts = []
    if jits.sample_cache is not None:
        sc = jits.sample_cache
        parts.append(f"sample {sc.hits}h/{sc.misses}m")
    if jits.mask_cache is not None:
        mc = jits.mask_cache
        parts.append(f"mask {mc.hits}h/{mc.misses}m")
    parts.append(f"deferred {jits.archive.deferred_recalibrations}")
    if engine.plan_cache is not None:
        pc = engine.plan_cache
        parts.append(f"plan {pc.hits}h/{pc.misses}m")
    return ", ".join(parts) if parts else "-"


def test_compile_fastpath(benchmark):
    def run_all():
        return {mode: run_mode(mode) for mode in ("cold", "warm", "fastpath")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [mode, round(r["mean_compile_ms"], 3), counters(r["engine"])]
        for mode, r in results.items()
    ]
    cold = results["cold"]["mean_compile_ms"]
    warm = results["warm"]["mean_compile_ms"]
    fast = results["fastpath"]["mean_compile_ms"]
    rows.append(["cold/warm", round(cold / warm, 2), ""])
    rows.append(["cold/fastpath", round(cold / fast, 2), ""])
    emit(
        "compile_fastpath",
        format_table(["Mode", "Mean compile ms", "Cache counters"], rows),
        metrics={
            "mean_compile_ms": {
                mode: r["mean_compile_ms"] for mode, r in results.items()
            },
            "speedup_cold_over_warm": cold / warm,
            "speedup_cold_over_fastpath": cold / fast,
        },
        config={"templates": len(TEMPLATES), "rounds": ROUNDS},
    )

    # Identical answers in every mode, query by query.
    assert results["cold"]["answers"] == results["warm"]["answers"]
    assert results["cold"]["answers"] == results["fastpath"]["answers"]

    # The caches actually absorbed work.
    warm_jits = results["warm"]["engine"].jits
    assert warm_jits.sample_cache.hits > warm_jits.sample_cache.misses
    assert warm_jits.mask_cache.hits > 0
    fast_pc = results["fastpath"]["engine"].plan_cache
    assert fast_pc.hits >= (ROUNDS - 2) * len(TEMPLATES)

    # The acceptance bar: >= 2x mean compile-time reduction warm-with-plan-
    # cache vs cold/disabled. Warm alone must at least not regress (its
    # savings — sampling, masks, per-observe IPF — are real but smaller
    # than the QGM/optimizer work it still performs every query).
    assert fast < cold / 2.0
    assert warm <= cold * 1.05
