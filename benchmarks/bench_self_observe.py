"""Self-observing plane: zone-map skipping + JIT index advisor payoff.

A skewed multi-tenant workload runs twice over the identical ``events``
table with the identical modeled per-row scan cost: once on a blind
engine (observe off — every query pays a full scan) and once on a
self-observing engine (``observe=True``, ``auto_index=auto``). The
table is clustered by ``tenant_id``, so the hot tenant's rows occupy a
narrow run of zones: zone maps refute the hot-tenant predicate for
every other zone and the scan touches a fraction of the table, while
the advisor's fingerprint-derived heat promotes ``tenant_id`` into a
hash index mid-run.

Bars:

* observed/blind aggregate throughput speedup >= 2.0x;
* zone-map skip rate > 0 (scans pruned, rows skipped);
* the advisor created at least one index, on the hot column;
* every query's result set identical to the blind engine
  (result-match ratio exactly 1.00) — observation is an execution
  strategy, never a semantics change.

Run under pytest (the usual path) or standalone:

    python bench_self_observe.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List

import numpy as np

from repro import Engine, EngineConfig
from repro.rng import make_rng
from repro.schema import make_schema
from repro.storage import Database
from repro.types import DataType
from repro.workload import format_table

N_TENANTS = 64
HOT_TENANT = 7
ROWS_PER_SCALE = 2_000_000  # events rows at scale 1.0
SCAN_COST_PER_ROW = 2e-6  # seconds per scanned row, paid by both engines
PARALLEL_THRESHOLD = 512
ZONE_ROWS = 1024
ADVISOR_INTERVAL = 16
SPEEDUP_BAR = 2.0  # observed vs blind aggregate throughput
RESULT_MATCH_BAR = 1.0


def build_events_database(n_rows: int, seed: int) -> Database:
    """One ``events`` table, clustered by tenant_id (the natural layout
    of a tenant-partitioned ingest), values correlated with tenant."""
    rng = make_rng(seed)
    database = Database("eventsdb")
    database.create_table(
        make_schema(
            "events",
            [
                ("id", DataType.INT),
                ("tenant_id", DataType.INT),
                ("kind", DataType.INT),
                ("value", DataType.FLOAT),
                ("ts", DataType.INT),
            ],
            primary_key="id",
        )
    )
    tenants = np.sort(rng.integers(0, N_TENANTS, n_rows))
    database.table("events").insert_columns(
        {
            "id": np.arange(n_rows, dtype=np.int64),
            "tenant_id": tenants.astype(np.int64),
            "kind": rng.integers(0, 8, n_rows).astype(np.int64),
            "value": rng.uniform(0.0, 1000.0, n_rows)
            + tenants * 3.0,  # mild tenant correlation
            "ts": rng.integers(1_000_000, 2_000_000, n_rows).astype(np.int64),
        }
    )
    return database


def build_workload(n_statements: int, seed: int) -> List[str]:
    """~80% of statements probe the hot tenant (varying literals, one
    fingerprint per template); the rest scan value ranges across all
    tenants (zone maps cannot refute them)."""
    rng = make_rng(seed + 17)
    statements = []
    for i in range(n_statements):
        roll = rng.random()
        if roll < 0.5:
            statements.append(
                f"SELECT COUNT(*) FROM events "
                f"WHERE tenant_id = {HOT_TENANT} AND kind = {i % 8}"
            )
        elif roll < 0.8:
            statements.append(
                f"SELECT AVG(value) FROM events "
                f"WHERE tenant_id = {HOT_TENANT} AND value < {400 + i % 300}"
            )
        else:
            statements.append(
                f"SELECT COUNT(*) FROM events WHERE value < {150 + i % 100}"
            )
    return statements


def build_engine(observing: bool, n_rows: int, seed: int,
                 cost_per_row: float) -> Engine:
    db = build_events_database(n_rows, seed)
    config = EngineConfig.traditional()
    config.scan_cost_per_row = cost_per_row
    config.parallel_threshold_rows = PARALLEL_THRESHOLD
    if observing:
        config.observe = True
        config.auto_index = "auto"
        config.auto_index_interval = ADVISOR_INTERVAL
        config.zone_map_rows = ZONE_ROWS
    return Engine(db, config)


def run_engine(engine: Engine, statements: List[str]) -> Dict:
    """Canonical per-statement results plus timed throughput."""
    results = {}
    started = time.perf_counter()
    for sql in statements:
        rows = engine.execute(sql).rows
        results.setdefault(sql, sorted(map(repr, rows)))
    elapsed = time.perf_counter() - started
    snapshot = engine.stats_snapshot()
    return {
        "results": results,
        "elapsed": elapsed,
        "statements_per_sec": len(statements) / elapsed,
        "observe": snapshot.get("observe", {}),
    }


def run_bench(scale: float, seed: int, n_statements: int,
              cost_per_row: float = SCAN_COST_PER_ROW) -> Dict:
    n_rows = max(20_000, int(ROWS_PER_SCALE * scale))
    statements = build_workload(n_statements, seed)
    runs = {}
    for label, observing in (("blind", False), ("observed", True)):
        engine = build_engine(observing, n_rows, seed, cost_per_row)
        try:
            runs[label] = run_engine(engine, statements)
            if observing:
                runs[label]["fingerprints"] = engine.fingerprint_snapshot(
                    limit=5, sort_by="executions"
                )["fingerprints"]
        finally:
            engine.shutdown()

    distinct = list(runs["blind"]["results"])
    matched = sum(
        runs["observed"]["results"][sql] == runs["blind"]["results"][sql]
        for sql in distinct
    )
    result_match_ratio = matched / len(distinct)
    speedup = (
        runs["observed"]["statements_per_sec"]
        / runs["blind"]["statements_per_sec"]
    )

    obs = runs["observed"]["observe"]
    zm = obs.get("zone_maps", {})
    advisor = obs.get("advisor", {})
    created_on_hot = any(
        entry["action"] in ("create", "advise_create")
        and entry["table"] == "events"
        and entry["column"] == "tenant_id"
        for entry in advisor.get("audit", [])
    )
    rows_table = [
        [
            label,
            f"{run['elapsed']:.3f}",
            f"{run['statements_per_sec']:.1f}",
        ]
        for label, run in runs.items()
    ]
    table = (
        f"Skewed multi-tenant workload: {len(statements)} statements over "
        f"{n_rows} events rows (modeled scan cost "
        f"{cost_per_row * 1e6:.1f} us/row):\n"
        + format_table(["engine", "elapsed_s", "statements/s"], rows_table)
        + f"\nobserved speedup: {speedup:.2f}x (bar {SPEEDUP_BAR}x)"
        + f"\nresult-match ratio vs blind: {result_match_ratio:.2f} "
        f"(bar {RESULT_MATCH_BAR:.2f})"
        + f"\nzone maps: {zm.get('scans_pruned', 0)}/"
        f"{zm.get('scans_considered', 0)} scans pruned, "
        f"{zm.get('zones_skipped', 0)} zones / "
        f"{zm.get('rows_skipped', 0)} rows skipped"
        + f"\nadvisor: {advisor.get('created', 0)} created, "
        f"{advisor.get('dropped', 0)} dropped "
        f"(hot column indexed: {created_on_hot})"
    )
    return {
        "runs": runs,
        "speedup": speedup,
        "result_match_ratio": result_match_ratio,
        "zone_maps": zm,
        "advisor": advisor,
        "created_on_hot": created_on_hot,
        "table": table,
    }


def check_bars(bench: Dict, speedup_bar: float = SPEEDUP_BAR) -> List[str]:
    failures = []
    if bench["speedup"] < speedup_bar:
        failures.append(
            f"observed speedup {bench['speedup']:.2f}x < {speedup_bar}x"
        )
    if bench["result_match_ratio"] < RESULT_MATCH_BAR:
        failures.append(
            f"result-match ratio {bench['result_match_ratio']:.2f} < "
            f"{RESULT_MATCH_BAR:.2f}"
        )
    if not bench["zone_maps"].get("scans_pruned", 0):
        failures.append("zone maps pruned no scans (skip rate 0)")
    if not bench["zone_maps"].get("rows_skipped", 0):
        failures.append("zone maps skipped no rows")
    if not bench["advisor"].get("created", 0):
        failures.append("index advisor created no index")
    if not bench["created_on_hot"]:
        failures.append("no advisor action on the hot column events.tenant_id")
    return failures


def json_metrics(bench: Dict) -> Dict:
    return {
        "engines": {
            label: {
                "elapsed_s": run["elapsed"],
                "statements_per_sec": run["statements_per_sec"],
            }
            for label, run in bench["runs"].items()
        },
        "speedup_observed": bench["speedup"],
        "result_match_ratio": bench["result_match_ratio"],
        "zone_maps": bench["zone_maps"],
        "advisor": {
            key: bench["advisor"].get(key, 0)
            for key in ("ticks", "created", "dropped", "advised")
        },
        "top_fingerprints": [
            {
                "statement": row["statement"],
                "executions": row["executions"],
                "p50_ms": row["p50_ms"],
                "p95_ms": row["p95_ms"],
            }
            for row in bench["runs"]["observed"].get("fingerprints", [])
        ],
    }


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_self_observe():
    from conftest import DATA_SEED, SCALE, emit

    bench = run_bench(min(SCALE, 0.02), DATA_SEED, n_statements=120)
    emit(
        "bench_self_observe",
        bench["table"],
        metrics=json_metrics(bench),
        config={
            "n_tenants": N_TENANTS,
            "hot_tenant": HOT_TENANT,
            "zone_rows": ZONE_ROWS,
            "advisor_interval": ADVISOR_INTERVAL,
            "scan_cost_per_row": SCAN_COST_PER_ROW,
            "parallel_threshold_rows": PARALLEL_THRESHOLD,
        },
    )
    failures = check_bars(bench)
    assert not failures, "\n".join(failures) + "\n" + bench["table"]


# ----------------------------------------------------------------------
# standalone entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale / short workload: verify skip rate > 0, the "
        "advisor fires on the hot fingerprint and results match, with "
        "a relaxed speedup bar",
    )
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--statements", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    scale = 0.01 if args.smoke else args.scale
    n_statements = 60 if args.smoke else args.statements
    bench = run_bench(scale, args.seed, n_statements)
    print(bench["table"])
    failures = check_bars(
        bench, speedup_bar=1.3 if args.smoke else SPEEDUP_BAR
    )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(
        f"OK: speedup {bench['speedup']:.2f}x, result-match ratio "
        f"{bench['result_match_ratio']:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
