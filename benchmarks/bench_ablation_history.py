"""Ablation: the StatHistory accuracy term (s1) vs UDI-only triggering.

Isolates Section 3.3.2's scoring: with ``use_history_score=False`` a table
is only re-sampled when its UDI counter shows churn — estimation errors
revealed by feedback never trigger collection, so new query shapes keep
running on whatever statistics happen to exist.
"""

from conftest import DATA_SEED, SCALE, emit

from repro import Engine, EngineConfig
from repro.workload import (
    WorkloadOptions,
    build_car_database,
    format_table,
    generate_workload,
    run_workload,
)

N = 300


def run_variant(use_history: bool, workload):
    db, _ = build_car_database(scale=SCALE, seed=DATA_SEED)
    config = EngineConfig.with_jits(s_max=0.5)
    config.jits.use_history_score = use_history
    engine = Engine(db, config)
    report = run_workload(engine, workload, f"history={use_history}")
    return engine, report


def test_ablation_history_score(benchmark):
    _, profile = build_car_database(scale=SCALE, seed=DATA_SEED)
    workload = generate_workload(profile, WorkloadOptions(n_statements=N, seed=3))

    def run():
        return run_variant(True, workload), run_variant(False, workload)

    (eng_s1, rep_s1), (eng_udi, rep_udi) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        [
            "s1 + s2 (paper)",
            eng_s1.jits.total_collections,
            round(rep_s1.avg_compile * 1000, 2),
            round(sum(rep_s1.select_modeled_costs()) / 1000, 0),
        ],
        [
            "s2 only (UDI)",
            eng_udi.jits.total_collections,
            round(rep_udi.avg_compile * 1000, 2),
            round(sum(rep_udi.select_modeled_costs()) / 1000, 0),
        ],
    ]
    emit(
        "ablation_history",
        format_table(
            ["variant", "collections", "avg compile ms", "total modeled kcost"],
            rows,
        ),
        metrics={
            "s1_s2": {
                "collections": eng_s1.jits.total_collections,
                "avg_compile_ms": rep_s1.avg_compile * 1000,
                "total_modeled_cost": sum(rep_s1.select_modeled_costs()),
            },
            "s2_only": {
                "collections": eng_udi.jits.total_collections,
                "avg_compile_ms": rep_udi.avg_compile * 1000,
                "total_modeled_cost": sum(rep_udi.select_modeled_costs()),
            },
        },
        config={"n_statements": N},
    )
    # UDI-only triggering collects far less (cheap compiles) but pays in
    # plan quality: feedback-detected estimation errors go unfixed.
    assert eng_udi.jits.total_collections < eng_s1.jits.total_collections
    s1_cost = sum(rep_s1.select_modeled_costs())
    udi_cost = sum(rep_udi.select_modeled_costs())
    assert s1_cost < udi_cost
