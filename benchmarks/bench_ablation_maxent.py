"""Ablation: maximum-entropy calibration vs naive bucket overwrites.

Isolates Section 3.4: when a new observation arrives, the max-entropy
update reconciles *all* retained facts (joint + marginals + cardinality);
the naive variant only rescales the newest fact, so earlier knowledge
drifts away. We measure estimation error of the archive histogram on
correlated predicate regions after a stream of observations.
"""

import numpy as np
from conftest import DATA_SEED, SCALE, emit

from repro.histograms import Region
from repro.jits import QSSArchive
from repro.predicates import (
    LocalPredicate,
    PredOp,
    PredicateGroup,
    count_matches,
    group_region,
)
from repro.workload import build_car_database, format_table


def pred(column, op, *values):
    return LocalPredicate("a", column, op, values)


def observation_stream(db):
    """Joint + marginal facts about (severity, damage) on ACCIDENTS,
    exact counts from the data (as a JITS sample would deliver)."""
    table = db.table("accidents")
    cases = []
    for severity in (1, 2, 3, 4, 5):
        for damage in (1_000, 5_000, 10_000, 20_000):
            cases.append(
                PredicateGroup.of(
                    pred("severity", PredOp.GE, severity),
                    pred("damage", PredOp.GT, damage),
                )
            )
    return table, cases


def run_variant(calibrate: bool, db):
    table, cases = observation_stream(db)
    archive = QSSArchive(db, calibrate=calibrate)
    total = table.row_count
    for now, group in enumerate(cases):
        columns, region = group_region(table, group)
        count = count_matches(table, group.predicates)
        archive.observe(table.name, columns, region, count, total, now=now)
    # Evaluate on held-out regions (values between observed boundaries).
    errors = []
    for severity in (2, 3, 4):
        for damage in (3_000, 8_000, 15_000):
            group = PredicateGroup.of(
                pred("severity", PredOp.GE, severity),
                pred("damage", PredOp.GT, damage),
            )
            columns, region = group_region(table, group)
            actual = count_matches(table, group.predicates) / total
            estimate = archive.lookup(table.name, columns).estimate_selectivity(
                region
            )
            ratio = max(estimate, 1e-6) / max(actual, 1e-6)
            errors.append(max(ratio, 1.0 / ratio))
    return float(np.exp(np.mean(np.log(errors))))  # geometric mean error


def test_ablation_maxent(benchmark):
    db, _ = build_car_database(scale=SCALE, seed=DATA_SEED)

    def run():
        return run_variant(True, db), run_variant(False, db)

    with_maxent, without_maxent = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_maxent",
        format_table(
            ["variant", "geo-mean estimation error (x)"],
            [
                ["max-entropy calibration", round(with_maxent, 3)],
                ["naive newest-only", round(without_maxent, 3)],
            ],
        ),
        metrics={
            "geo_mean_error_maxent": with_maxent,
            "geo_mean_error_naive": without_maxent,
        },
    )
    # Reconciling all retained facts must not hurt, and should help.
    assert with_maxent <= without_maxent * 1.02
    # And the calibrated archive is a genuinely good estimator.
    assert with_maxent < 1.8
