"""Ablation: materializing QSS in the archive vs re-sampling every query.

Isolates Section 3.3.3: with the archive disabled, every query that needs
statistics pays the sampling price again — nothing is reusable between
queries. With the archive on, the sensitivity analysis finds accurate
histograms and stops collecting.

Expected trade-off: the archive cuts *collections* by close to an order of
magnitude at a modest plan-quality price (histograms approximate what a
fresh sample answers exactly). In the paper's DB2 setting each collection
costs seconds of sampling I/O, so fewer collections dominates; in this
in-memory engine a 2000-row sample costs well under a millisecond, so the
wall-clock benefit of reuse is small — the collection count is the metric
that carries the paper's economics (see EXPERIMENTS.md).
"""

from conftest import DATA_SEED, SCALE, emit

from repro import Engine, EngineConfig
from repro.workload import (
    WorkloadOptions,
    build_car_database,
    format_table,
    generate_workload,
    run_workload,
)

N = 300


def run_variant(materialize: bool, workload):
    db, _ = build_car_database(scale=SCALE, seed=DATA_SEED)
    config = EngineConfig.with_jits(s_max=0.5)
    config.jits.materialize_enabled = materialize
    engine = Engine(db, config)
    report = run_workload(engine, workload, f"materialize={materialize}")
    return engine, report


def test_ablation_materialize(benchmark):
    _, profile = build_car_database(scale=SCALE, seed=DATA_SEED)
    workload = generate_workload(profile, WorkloadOptions(n_statements=N, seed=3))

    def run():
        return run_variant(True, workload), run_variant(False, workload)

    (eng_on, rep_on), (eng_off, rep_off) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        [
            "archive ON",
            eng_on.jits.total_collections,
            len(eng_on.jits.archive),
            round(rep_on.avg_compile * 1000, 2),
            round(sum(rep_on.select_modeled_costs()) / 1000, 0),
        ],
        [
            "archive OFF",
            eng_off.jits.total_collections,
            len(eng_off.jits.archive),
            round(rep_off.avg_compile * 1000, 2),
            round(sum(rep_off.select_modeled_costs()) / 1000, 0),
        ],
    ]
    emit(
        "ablation_materialize",
        format_table(
            ["variant", "collections", "archive size", "avg compile ms",
             "total modeled kcost"],
            rows,
        ),
        metrics={
            "archive_on": {
                "collections": eng_on.jits.total_collections,
                "archive_size": len(eng_on.jits.archive),
                "avg_compile_ms": rep_on.avg_compile * 1000,
                "total_modeled_cost": sum(rep_on.select_modeled_costs()),
            },
            "archive_off": {
                "collections": eng_off.jits.total_collections,
                "archive_size": len(eng_off.jits.archive),
                "avg_compile_ms": rep_off.avg_compile * 1000,
                "total_modeled_cost": sum(rep_off.select_modeled_costs()),
            },
        },
        config={"n_statements": N},
    )

    # Without materialization nothing is reusable: every query with
    # predicates triggers sampling again.
    assert eng_off.jits.total_collections > 4 * eng_on.jits.total_collections
    assert len(eng_off.jits.archive) == 0
    assert len(eng_on.jits.archive) > 0
    # Plan quality stays in the same league: archive histograms approximate
    # what a fresh sample answers exactly.
    on_cost = sum(rep_on.select_modeled_costs())
    off_cost = sum(rep_off.select_modeled_costs())
    assert on_cost < off_cost * 1.5
