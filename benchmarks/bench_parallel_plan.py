"""Morsel-driven plan fragments: 4-worker pool vs the sequential engine.

Where ``bench_parallel_scan`` shards only the predicate scan, this bench
pushes whole plan fragments onto the worker pool: fused
scan→filter→partial-aggregate, partitioned hash joins (both inputs
hash-partitioned by join key, one build+probe task per partition) and
shard-local sort/distinct with a stable parent merge.

Both engines run the identical join/group-by-heavy workload over the
identical car database (built without indexes, so every access is a
SeqScan and every join a HashJoin — the fragment-eligible shapes) with
the identical modeled per-row cost (``EngineConfig.scan_cost_per_row``).
The sequential engine is ``scan_workers=0``: the same fragment kernels,
run in-process over a single shard, paying the same total modeled cost —
so the measured speedup is worker overlap, not host-core count.

Bars:

* aggregate throughput speedup >= 3.0x at 4 workers;
* every query's result set byte-identical to the sequential engine
  (result-match ratio exactly 1.00);
* every fragment kind (aggregate / join / sort / distinct) actually
  dispatched through the pool.

Run under pytest (the usual path) or standalone:

    python bench_parallel_plan.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List

from repro import Engine, EngineConfig
from repro.workload import build_car_database, format_table

SCAN_WORKERS = 4
SCAN_COST_PER_ROW = 8e-6  # seconds per processed row, paid by both engines
PARALLEL_THRESHOLD = 512
SPEEDUP_BAR = 3.0  # parallel vs sequential aggregate throughput
RESULT_MATCH_BAR = 1.0  # fraction of queries with identical result sets
FRAGMENT_KINDS = ("aggregate", "join", "sort", "distinct")

# Join- and group-by-heavy workload. The database carries no indexes, so
# every leaf is a SeqScan and every join a HashJoin — exactly the shapes
# the fragment planner offloads. Aggregates cover COUNT / AVG-over-INT
# / MIN / MAX; float SUM also fuses now (exact big-integer partials make
# the merge order-independent, see executor/floatsum.py).
QUERIES = [
    "SELECT o.name, c.model FROM car c, owner o "
    "WHERE c.ownerid = o.id AND c.year >= 2000",
    "SELECT a.driver, c.make FROM accidents a, car c "
    "WHERE a.carid = c.id AND a.severity >= 3",
    "SELECT d.city, o.age FROM demographics d, owner o "
    "WHERE d.ownerid = o.id AND d.education IN ('phd', 'masters')",
    "SELECT make, COUNT(*), AVG(year) FROM car GROUP BY make",
    "SELECT color, COUNT(*) FROM car "
    "WHERE year BETWEEN 1997 AND 2005 GROUP BY color",
    "SELECT severity, COUNT(*), MAX(year) FROM accidents GROUP BY severity",
    "SELECT education, COUNT(*), MIN(ownerid) FROM demographics "
    "GROUP BY education",
    "SELECT MIN(price), MAX(price), COUNT(*) FROM car WHERE color = 'red'",
    "SELECT year FROM car WHERE make = 'Toyota' ORDER BY year DESC",
    "SELECT model FROM car WHERE year > 1999 ORDER BY model",
    "SELECT DISTINCT color FROM car",
    "SELECT DISTINCT city FROM demographics WHERE salary >= 2000",
]


def build_engine(
    workers: int, scale: float, seed: int, cost_per_row: float
) -> Engine:
    db, _ = build_car_database(scale=scale, seed=seed, with_indexes=False)
    config = EngineConfig.traditional()
    config.scan_workers = workers
    config.scan_cost_per_row = cost_per_row
    config.parallel_threshold_rows = PARALLEL_THRESHOLD
    return Engine(db, config)


def run_engine(engine: Engine, rounds: int) -> Dict:
    """Canonical per-query results (round 1) plus timed throughput."""
    results = {sql: sorted(map(repr, engine.execute(sql).rows))
               for sql in QUERIES}
    started = time.perf_counter()
    n = 0
    for _ in range(rounds):
        for sql in QUERIES:
            engine.execute(sql)
            n += 1
    elapsed = time.perf_counter() - started
    return {
        "results": results,
        "elapsed": elapsed,
        "queries_per_sec": n / elapsed,
        "parallel": engine.stats_snapshot().get("parallel", {}),
    }


def run_bench(
    scale: float,
    seed: int,
    rounds: int,
    cost_per_row: float = SCAN_COST_PER_ROW,
    workers: int = SCAN_WORKERS,
) -> Dict:
    runs = {}
    for label, n_workers in (("sequential", 0), (f"{workers}w", workers)):
        engine = build_engine(n_workers, scale, seed, cost_per_row)
        try:
            runs[label] = run_engine(engine, rounds)
        finally:
            engine.shutdown()

    par_label = f"{workers}w"
    matched = sum(
        runs[par_label]["results"][sql] == runs["sequential"]["results"][sql]
        for sql in QUERIES
    )
    result_match_ratio = matched / len(QUERIES)
    speedup = (
        runs[par_label]["queries_per_sec"]
        / runs["sequential"]["queries_per_sec"]
    )

    par_stats = runs[par_label]["parallel"]
    fragments = par_stats.get("fragments", {})
    latency = par_stats.get("shard_latency", {})
    rows = [
        [
            label,
            f"{run['elapsed']:.3f}",
            f"{run['queries_per_sec']:.1f}",
            str(run["parallel"].get("parallel_calls", 0)),
            str(sum(run["parallel"].get("fragments", {}).values())),
            str(run["parallel"].get("rebalances", 0)),
            str(run["parallel"].get("fallbacks", 0)),
        ]
        for label, run in runs.items()
    ]
    table = (
        f"Join/group-by-heavy workload, {len(QUERIES)} queries x {rounds} "
        f"rounds (modeled cost {cost_per_row * 1e6:.1f} us/row):\n"
        + format_table(
            ["engine", "elapsed_s", "queries/s", "pool calls",
             "fragments", "rebalances", "fallbacks"],
            rows,
        )
        + f"\n{workers}-worker speedup: {speedup:.2f}x (bar {SPEEDUP_BAR}x)"
        + f"\nresult-match ratio vs sequential: {result_match_ratio:.2f} "
        f"(bar {RESULT_MATCH_BAR:.2f})"
        + f"\nfragments dispatched: "
        + ", ".join(f"{k}={fragments.get(k, 0)}" for k in FRAGMENT_KINDS)
        + f"\nshard latency p50/p95: {latency.get('p50_ms', 0.0)} / "
        f"{latency.get('p95_ms', 0.0)} ms over "
        f"{latency.get('samples', 0)} samples"
    )
    return {
        "runs": runs,
        "speedup": speedup,
        "result_match_ratio": result_match_ratio,
        "fragments": fragments,
        "table": table,
    }


def check_bars(bench: Dict, speedup_bar: float = SPEEDUP_BAR) -> List[str]:
    failures = []
    if bench["speedup"] < speedup_bar:
        failures.append(
            f"4-worker speedup {bench['speedup']:.2f}x < {speedup_bar}x"
        )
    if bench["result_match_ratio"] < RESULT_MATCH_BAR:
        failures.append(
            f"result-match ratio {bench['result_match_ratio']:.2f} < "
            f"{RESULT_MATCH_BAR:.2f}"
        )
    for kind in FRAGMENT_KINDS:
        if not bench["fragments"].get(kind):
            failures.append(f"fragment kind {kind!r} never dispatched")
    par = bench["runs"][[k for k in bench["runs"] if k != "sequential"][0]]
    if par["parallel"].get("fallbacks", 0):
        failures.append(
            f"parallel engine fell back {par['parallel']['fallbacks']} time(s)"
        )
    return failures


def json_metrics(bench: Dict) -> Dict:
    return {
        "engines": {
            label: {
                "elapsed_s": run["elapsed"],
                "queries_per_sec": run["queries_per_sec"],
                "parallel_calls": run["parallel"].get("parallel_calls", 0),
                "fragments": run["parallel"].get("fragments", {}),
                "rebalances": run["parallel"].get("rebalances", 0),
                "shard_latency": run["parallel"].get("shard_latency", {}),
                "fallbacks": run["parallel"].get("fallbacks", 0),
            }
            for label, run in bench["runs"].items()
        },
        "speedup_4_workers": bench["speedup"],
        "result_match_ratio": bench["result_match_ratio"],
    }


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_parallel_plan():
    from conftest import DATA_SEED, SCALE, emit

    bench = run_bench(min(SCALE, 0.02), DATA_SEED, rounds=2)
    emit(
        "parallel_plan",
        bench["table"],
        metrics=json_metrics(bench),
        config={
            "scan_workers": SCAN_WORKERS,
            "scan_cost_per_row": SCAN_COST_PER_ROW,
            "parallel_threshold_rows": PARALLEL_THRESHOLD,
            "queries": len(QUERIES),
        },
    )
    failures = check_bars(bench)
    assert not failures, "\n".join(failures) + "\n" + bench["table"]


# ----------------------------------------------------------------------
# standalone entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale / one round: verify identical results and that "
        "every fragment kind dispatches, with a relaxed speedup bar",
    )
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    scale = 0.005 if args.smoke else args.scale
    rounds = 1 if args.smoke else args.rounds
    cost = 1e-5 if args.smoke else SCAN_COST_PER_ROW
    bench = run_bench(scale, args.seed, rounds, cost_per_row=cost)
    print(bench["table"])
    failures = check_bars(bench, speedup_bar=1.5 if args.smoke else SPEEDUP_BAR)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(
        f"OK: speedup {bench['speedup']:.2f}x, result-match ratio "
        f"{bench['result_match_ratio']:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
