"""Table 3: compilation / execution / total time of a single query.

The Section 4.1 experiment: the 4-table join query (Toyota Camry, Ottawa,
CA, salary > 5000) issued in four cases:

  1-a  no initial statistics, JITS disabled
  1-b  no initial statistics, JITS enabled
  2-a  general (basic + distribution) statistics, JITS disabled
  2-b  general statistics, JITS enabled

As in the paper, the automatic sensitivity analysis is turned off (JITS
always collects). Expected shape: 1-b pays compile overhead but cuts the
execution time vs 1-a (paper: -27% execution, -18% total); with fresh
general statistics JITS does not win for a single query (2-b >= 2-a).
"""

import pytest
from conftest import DATA_SEED, SCALE, emit

from repro import Engine, EngineConfig
from repro.workload import build_car_database, format_table

QUERY = """
SELECT o.name, a.driver, a.damage
FROM car c, accidents a, demographics d, owner o
WHERE d.ownerid = o.id AND a.carid = c.id AND c.ownerid = o.id
  AND c.make = 'Toyota' AND c.model = 'Camry'
  AND d.city = 'Ottawa' AND d.country = 'CA' AND d.salary > 5000
"""


def run_case(with_general_stats: bool, with_jits: bool):
    db, _ = build_car_database(scale=SCALE, seed=DATA_SEED)
    config = (
        EngineConfig.with_jits(always_collect=True)
        if with_jits
        else EngineConfig.traditional()
    )
    engine = Engine(db, config)
    if with_general_stats:
        engine.collect_general_statistics()
    result = engine.execute(QUERY)
    return result


def test_table3_single_query(benchmark):
    def run_all():
        return {
            "1-a": run_case(False, False),
            "1-b": run_case(False, True),
            "2-a": run_case(True, False),
            "2-b": run_case(True, True),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for case, result in results.items():
        rows.append(
            [
                case,
                round(result.compile_time * 1000, 2),
                round(result.execution_time * 1000, 2),
                round(result.total_time * 1000, 2),
                round(result.modeled_execution_cost() / 1000, 2),
                result.row_count,
            ]
        )
    emit(
        "table3_single_query",
        format_table(
            ["Case", "Compile ms", "Execute ms", "Total ms",
             "Modeled kcost", "Rows"],
            rows,
        ),
        metrics={
            case: {
                "compile_ms": result.compile_time * 1000,
                "execute_ms": result.execution_time * 1000,
                "total_ms": result.total_time * 1000,
                "modeled_cost": result.modeled_execution_cost(),
                "rows": result.row_count,
            }
            for case, result in results.items()
        },
    )

    # Same answer everywhere.
    counts = {r.row_count for r in results.values()}
    assert len(counts) == 1

    # 1-b: JITS pays compilation, wins execution (deterministic metric).
    assert results["1-b"].compile_time > results["1-a"].compile_time
    assert (
        results["1-b"].modeled_execution_cost()
        < results["1-a"].modeled_execution_cost()
    )
    # With fresh general statistics, JITS cannot beat the plan much:
    # its modeled execution cost is at best equal (paper: "JITS might not
    # outperform the traditional model for a single query").
    assert results["2-b"].modeled_execution_cost() <= (
        results["2-a"].modeled_execution_cost() * 1.05
    )
    # And 1-a (no stats at all) has the worst plan of the four.
    worst = max(r.modeled_execution_cost() for r in results.values())
    assert worst == pytest.approx(results["1-a"].modeled_execution_cost())
