"""Multi-client throughput: one engine, N concurrent client sessions.

Models a serving workload: every client statement costs the engine's own
compile/execute work plus a fixed client latency (network round-trip +
client think time, simulated with ``sleep``). A sequential server pays
``work + latency`` per statement; with N worker sessions the latencies
overlap — and the engine's numpy kernels release the GIL — so throughput
(queries/sec) climbs until the serialized engine work saturates.

The latency is calibrated to 3x the measured per-statement engine work,
so the expected speedup at 4 workers is ~(w + 3w) / max(w, 3w/4) = 4x;
the acceptance bar asserts >= 2x. Every concurrent run's per-statement
rows are checked against the sequential reference executor — concurrency
must never change answers.

Run under pytest (the usual path) or standalone:

    python bench_concurrent_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Sequence, Tuple

from repro import Engine, EngineConfig
from repro.executor import run_reference
from repro.sql import build_query_graph, parse_select
from repro.workload import build_car_database, format_table

WORKER_COUNTS = [1, 2, 4, 8]
SPEEDUP_BAR = 2.0  # at 4 workers vs sequential

TEMPLATES = [
    "SELECT COUNT(*) FROM car WHERE make = 'Toyota' AND model = 'Camry'",
    "SELECT id, price FROM car WHERE price < 20000 AND year > 1999",
    "SELECT COUNT(*) FROM demographics WHERE city = 'Ottawa' AND salary > 5000",
    "SELECT COUNT(*) FROM accidents WHERE damage > 3000",
    "SELECT o.id, COUNT(*) FROM owner o, car c WHERE c.ownerid = o.id "
    "AND c.year > 2000 GROUP BY o.id",
    "SELECT make, COUNT(*) FROM car WHERE year >= 1998 GROUP BY make",
]


def build_engine(scale: float, seed: int) -> Engine:
    db, _ = build_car_database(scale=scale, seed=seed)
    return Engine(db, EngineConfig.fastpath(migration_interval=20))


def statement_stream(n_statements: int) -> List[str]:
    return [TEMPLATES[i % len(TEMPLATES)] for i in range(n_statements)]


def calibrate_latency(engine: Engine, statements: Sequence[str]) -> float:
    """Per-statement client latency: 3x the measured engine work."""
    probe = statements[: min(len(statements), 2 * len(TEMPLATES))]
    started = time.perf_counter()
    for sql in probe:
        engine.execute(sql)
    per_statement = (time.perf_counter() - started) / len(probe)
    return min(max(3.0 * per_statement, 0.002), 0.025)


def serve(
    engine: Engine,
    statements: Sequence[str],
    workers: int,
    latency: float,
) -> Tuple[List[List], float]:
    """Serve the statement stream with ``workers`` client sessions.

    Returns (per-statement sorted row lists, elapsed seconds); rows come
    back aligned with the input stream order.
    """
    indexed = list(enumerate(statements))
    streams = [indexed[i::workers] for i in range(workers)]

    def client(stream):
        session = engine.session()
        out = []
        stamps = []
        for index, sql in stream:
            stmt_started = time.perf_counter()
            result = session.execute(sql)
            stamps.append(time.perf_counter() - stmt_started)
            out.append((index, sorted(result.rows)))
            time.sleep(latency)
        return out, stamps

    started = time.perf_counter()
    if workers == 1:
        batches = [client(indexed)]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            batches = list(pool.map(client, streams))
    elapsed = time.perf_counter() - started
    rows: List[List] = [None] * len(statements)  # type: ignore[list-item]
    latencies: List[float] = []
    for batch, stamps in batches:
        latencies.extend(stamps)
        for index, sorted_rows in batch:
            rows[index] = sorted_rows
    return rows, elapsed, latencies


def reference_rows(engine: Engine, statements: Sequence[str]) -> List[List]:
    cache: Dict[str, List] = {}
    out = []
    for sql in statements:
        if sql not in cache:
            block = build_query_graph(parse_select(sql), engine.database)
            cache[sql] = sorted(run_reference(block, engine.database))
        out.append(cache[sql])
    return out


def run_bench(scale: float, n_statements: int, seed: int) -> Dict:
    engine = build_engine(scale, seed)
    statements = statement_stream(n_statements)
    latency = calibrate_latency(engine, statements)
    want = reference_rows(engine, statements)

    throughput: Dict[int, float] = {}
    percentiles: Dict[int, Dict[str, float]] = {}
    rows = []
    for workers in WORKER_COUNTS:
        got, elapsed, latencies = serve(engine, statements, workers, latency)
        mismatches = sum(1 for g, w in zip(got, want) if g != w)
        qps = n_statements / elapsed
        throughput[workers] = qps
        ordered = sorted(latencies)
        percentiles[workers] = {
            "p50_ms": ordered[len(ordered) // 2] * 1000,
            "p95_ms": ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
            * 1000,
        }
        rows.append(
            [
                str(workers),
                f"{elapsed:.3f}",
                f"{qps:.1f}",
                f"{qps / throughput[1]:.2f}x",
                str(mismatches),
            ]
        )
        assert mismatches == 0, (
            f"{mismatches} statements returned wrong rows at "
            f"workers={workers}"
        )
    table = format_table(
        ["workers", "elapsed_s", "queries/s", "speedup", "wrong_results"],
        rows,
    )
    table += (
        f"\nclient latency = {latency * 1000:.2f} ms/statement "
        f"(3x measured engine work); {n_statements} statements"
    )
    return {
        "throughput": throughput,
        "percentiles": percentiles,
        "table": table,
        "latency": latency,
    }


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_concurrent_throughput():
    from conftest import DATA_SEED, SCALE, N_STATEMENTS, emit

    n_statements = min(N_STATEMENTS, 240)
    bench = run_bench(SCALE, n_statements, DATA_SEED)
    emit(
        "bench_concurrent_throughput",
        bench["table"],
        metrics={
            "ops_per_sec": {str(w): q for w, q in bench["throughput"].items()},
            "statement_latency": {
                str(w): p for w, p in bench["percentiles"].items()
            },
            "speedup_4_workers": bench["throughput"][4] / bench["throughput"][1],
            "client_latency_ms": bench["latency"] * 1000,
        },
        config={"worker_counts": WORKER_COUNTS, "n_statements": n_statements},
    )
    speedup = bench["throughput"][4] / bench["throughput"][1]
    assert speedup >= SPEEDUP_BAR, (
        f"4-worker speedup {speedup:.2f}x below the {SPEEDUP_BAR}x bar\n"
        + bench["table"]
    )


# ----------------------------------------------------------------------
# standalone entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale / short stream: verify result-equivalence and "
        "that throughput improves, without the full 2x bar",
    )
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--statements", type=int, default=240)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    scale = 0.005 if args.smoke else args.scale
    n_statements = 48 if args.smoke else args.statements
    bench = run_bench(scale, n_statements, args.seed)
    print(bench["table"])
    speedup = bench["throughput"][4] / bench["throughput"][1]
    bar = 1.2 if args.smoke else SPEEDUP_BAR
    if speedup < bar:
        print(f"FAIL: 4-worker speedup {speedup:.2f}x < {bar}x")
        return 1
    print(f"OK: 4-worker speedup {speedup:.2f}x (bar {bar}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
