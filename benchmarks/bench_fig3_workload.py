"""Figure 3: box plot of per-query elapsed time across the four settings.

The Section 4.2 experiment: an 840-statement workload (scaled) with
interleaved updates, run under NoStats / GeneralStats / WorkloadStats /
JITS. The paper's box plot shows JITS winning overall; our assertions use
the deterministic modeled plan cost so machine noise cannot flake them,
and the wall-clock five-number summary is reported alongside.
"""

import numpy as np
from conftest import emit

from repro.workload import (
    BoxStats,
    Setting,
    ascii_box_plot,
    format_table,
    summarize_settings,
)


def test_fig3_workload_boxplot(benchmark, setting_reports):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # timing is in the fixture
    reports = setting_reports

    wall_table = summarize_settings(reports)
    rows = []
    for setting, report in reports.items():
        costs = np.array(report.select_modeled_costs()) / 1000.0
        box = BoxStats.of(list(costs))
        rows.append(
            [
                setting.value,
                *(round(v, 1) for v in box.row(unit=1.0)),
                round(float(costs.mean()), 1),
                round(float(costs.sum()), 0),
            ]
        )
    cost_table = format_table(
        ["setting", "min", "q1", "median", "q3", "max", "mean", "total"], rows
    )
    plot = ascii_box_plot(
        [s.value for s in reports],
        [BoxStats.of(r.select_totals()) for r in reports.values()],
    )
    per_setting = {}
    for setting, report in reports.items():
        costs = sorted(report.select_modeled_costs())
        wall = sorted(r.total_time for r in report.select_records())
        n = len(costs)
        per_setting[setting.value] = {
            "total_modeled_cost": float(sum(costs)),
            "modeled_cost_p50": float(costs[n // 2]),
            "modeled_cost_p95": float(costs[min(n - 1, int(0.95 * n))]),
            "wall_p50_ms": wall[n // 2] * 1000,
            "wall_p95_ms": wall[min(n - 1, int(0.95 * n))] * 1000,
            "avg_total_ms": report.avg_total * 1000,
        }
    emit(
        "fig3_workload",
        "Wall-clock per-query totals (ms):\n" + wall_table
        + "\n\nModeled plan cost per query (kcost units):\n" + cost_table
        + "\n\nWall-clock box plot:\n" + plot,
        metrics=per_setting,
    )

    total = {s: sum(r.select_modeled_costs()) for s, r in reports.items()}
    # The paper's ordering on overall workload cost: JITS beats general
    # statistics and beats no statistics by a wide margin.
    assert total[Setting.JITS] < total[Setting.GENERAL]
    assert total[Setting.JITS] < 0.65 * total[Setting.NOSTATS]
    assert total[Setting.WORKLOAD] < total[Setting.NOSTATS]
    # "Having general statistics only results in a slight benefit" over
    # collecting the workload's column groups up front.
    assert total[Setting.WORKLOAD] <= total[Setting.GENERAL]
    # Wall-clock numbers are reported above but deliberately not asserted:
    # they flake under machine load, while the modeled plan cost is
    # deterministic for a fixed seed.
