"""Mid-query adaptive re-optimization vs a static optimizer.

The setup is the classic re-optimization trap: table ``a``'s join key is
heavily skewed (90% of rows on 10 hot keys) but general statistics only
see per-column NDVs, so the optimizer estimates the ``a ⋈ b`` fan-out at
a few hundred rows and picks an index nested-loop into the large ``cc``
table (cheap at the estimate, ruinous at the actual ~25k Python-loop
probes). With ``EngineConfig.reopt`` enabled, the hash-join output
checkpoint observes the real cardinality before any probe work is sunk,
suspends execution, registers the materialized intermediate as an exact-
statistics base table, and re-enters the optimizer — which switches the
remaining join to a vectorized hash join.

Bars (full mode):

* the trigger query's estimation error is >= 10x;
* reopt beats the static engine by >= 2x wall-clock (and the modeled
  plan cost, re-costed with actual cardinalities, agrees);
* every query's result set is byte-identical to the static engine
  (result-match ratio exactly 1.00);
* at least one plan switch fired.

Smoke mode (CI) shrinks the data and asserts only switch + identity.

Run under pytest (the usual path) or standalone:

    python bench_adaptive_reopt.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List

import numpy as np

from repro import Database, DataType, Engine, EngineConfig, make_schema
from repro.workload import format_table

MISESTIMATE_BAR = 10.0  # est/actual error ratio at the trigger operator
SPEEDUP_BAR = 2.0  # reopt vs static wall-clock
RESULT_MATCH_BAR = 1.0

QUERIES = [
    "SELECT COUNT(*) FROM a, b, cc WHERE a.k = b.k AND a.c = cc.id",
    "SELECT b.bval, COUNT(*), MIN(cc.cval) FROM a, b, cc "
    "WHERE a.k = b.k AND a.c = cc.id GROUP BY b.bval ORDER BY b.bval",
]


def build_skew_db(
    n_a: int, n_b: int, n_c: int, domain: int, seed: int
) -> Database:
    """a(id, k, c) with skewed k; small b(k); large cc(id) with a hash
    index — the index-nested-loop bait."""
    db = Database()
    db.create_table(
        make_schema(
            "a",
            [("id", DataType.INT), ("k", DataType.INT), ("c", DataType.INT)],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema("b", [("k", DataType.INT), ("bval", DataType.INT)])
    )
    db.create_table(
        make_schema(
            "cc", [("id", DataType.INT), ("cval", DataType.INT)],
            primary_key="id",
        )
    )
    rng = np.random.default_rng(seed)
    hot = rng.choice(domain, 10, replace=False)

    def skewed(n: int) -> np.ndarray:
        out = rng.integers(0, domain, n)
        mask = rng.random(n) < 0.9
        out[mask] = hot[rng.integers(0, 10, mask.sum())]
        return out

    db.table("a").insert_columns(
        {
            "id": np.arange(n_a),
            "k": skewed(n_a),
            "c": rng.integers(0, n_c, n_a),
        }
    )
    db.table("b").insert_columns(
        {"k": skewed(n_b), "bval": np.arange(n_b)}
    )
    db.table("cc").insert_columns(
        {"id": np.arange(n_c), "cval": rng.integers(0, 100, n_c)}
    )
    db.create_hash_index("cc", "id")
    return db


def build_engine(reopt: str, sizes: Dict, seed: int) -> Engine:
    config = EngineConfig.traditional()
    config.reopt = reopt  # threshold/rounds stay at their defaults
    engine = Engine(
        build_skew_db(
            sizes["n_a"], sizes["n_b"], sizes["n_c"], sizes["domain"], seed
        ),
        config,
    )
    engine.collect_general_statistics()
    return engine


def run_engine(engine: Engine, rounds: int) -> Dict:
    results = {sql: sorted(map(repr, engine.execute(sql).rows))
               for sql in QUERIES}
    events: List = []
    modeled = 0.0
    started = time.perf_counter()
    for _ in range(rounds):
        for sql in QUERIES:
            result = engine.execute(sql)
            modeled += result.modeled_execution_cost()
            events.extend(result.reopt_events)
    elapsed = time.perf_counter() - started
    return {
        "results": results,
        "elapsed": elapsed,
        "modeled_cost": modeled,
        "events": events,
        "reopt": engine.stats_snapshot().get("reopt", {}),
    }


def run_bench(sizes: Dict, seed: int, rounds: int) -> Dict:
    runs = {}
    for label, mode in (("static", "off"), ("reopt", "conservative")):
        engine = build_engine(mode, sizes, seed)
        try:
            runs[label] = run_engine(engine, rounds)
        finally:
            engine.shutdown()

    matched = sum(
        runs["reopt"]["results"][sql] == runs["static"]["results"][sql]
        for sql in QUERIES
    )
    result_match_ratio = matched / len(QUERIES)
    speedup = runs["static"]["elapsed"] / max(runs["reopt"]["elapsed"], 1e-9)
    modeled_speedup = runs["static"]["modeled_cost"] / max(
        runs["reopt"]["modeled_cost"], 1e-9
    )
    events = runs["reopt"]["events"]
    misestimate = max((e.ratio for e in events), default=0.0)
    switch_ms = sum(e.switch_seconds for e in events) * 1000.0

    snap = runs["reopt"]["reopt"]
    rows = [
        [
            label,
            f"{run['elapsed']:.3f}",
            f"{run['modeled_cost']:.0f}",
            str(len(run["events"])),
        ]
        for label, run in runs.items()
    ]
    table = (
        f"Skewed 3-table join, {len(QUERIES)} queries x {rounds} round(s) "
        f"(a={sizes['n_a']}, b={sizes['n_b']}, cc={sizes['n_c']}):\n"
        + format_table(
            ["engine", "elapsed_s", "modeled cost", "plan switches"], rows
        )
        + f"\nmisestimate at trigger: {misestimate:.1f}x "
        f"(bar {MISESTIMATE_BAR:.0f}x)"
        + f"\nreopt speedup: {speedup:.2f}x wall-clock, "
        f"{modeled_speedup:.2f}x modeled (bar {SPEEDUP_BAR}x)"
        + f"\nresult-match ratio vs static: {result_match_ratio:.2f} "
        f"(bar {RESULT_MATCH_BAR:.2f})"
        + f"\nswitch overhead: {switch_ms:.2f} ms across "
        f"{len(events)} switch(es); telemetry: "
        f"{snap.get('queries_reoptimized', 0)} query(ies) reoptimized, "
        f"{snap.get('checkpoints_evaluated', 0)} checkpoint(s)"
    )
    return {
        "runs": runs,
        "speedup": speedup,
        "modeled_speedup": modeled_speedup,
        "misestimate": misestimate,
        "result_match_ratio": result_match_ratio,
        "events": len(events),
        "switch_ms": switch_ms,
        "table": table,
    }


def check_bars(bench: Dict, smoke: bool = False) -> List[str]:
    failures = []
    if not bench["events"]:
        failures.append("no reopt event fired")
    if bench["result_match_ratio"] < RESULT_MATCH_BAR:
        failures.append(
            f"result-match ratio {bench['result_match_ratio']:.2f} < "
            f"{RESULT_MATCH_BAR:.2f}"
        )
    if smoke:
        return failures
    if bench["misestimate"] < MISESTIMATE_BAR:
        failures.append(
            f"misestimate {bench['misestimate']:.1f}x < {MISESTIMATE_BAR}x"
        )
    if bench["speedup"] < SPEEDUP_BAR:
        failures.append(
            f"wall-clock speedup {bench['speedup']:.2f}x < {SPEEDUP_BAR}x"
        )
    if bench["modeled_speedup"] < SPEEDUP_BAR:
        failures.append(
            f"modeled speedup {bench['modeled_speedup']:.2f}x < "
            f"{SPEEDUP_BAR}x"
        )
    return failures


def json_metrics(bench: Dict) -> Dict:
    return {
        "engines": {
            label: {
                "elapsed_s": run["elapsed"],
                "modeled_cost": run["modeled_cost"],
                "plan_switches": len(run["events"]),
            }
            for label, run in bench["runs"].items()
        },
        "misestimate_ratio": bench["misestimate"],
        "speedup_wall_clock": bench["speedup"],
        "speedup_modeled": bench["modeled_speedup"],
        "result_match_ratio": bench["result_match_ratio"],
        "switch_ms_total": bench["switch_ms"],
        "reopt_telemetry": bench["runs"]["reopt"]["reopt"],
    }


FULL_SIZES = dict(n_a=10_000, n_b=30, n_c=50_000, domain=4_000)
SMOKE_SIZES = dict(n_a=2_000, n_b=30, n_c=5_000, domain=1_000)


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_adaptive_reopt():
    from conftest import DATA_SEED, emit

    bench = run_bench(FULL_SIZES, DATA_SEED, rounds=3)
    emit(
        "adaptive_reopt",
        bench["table"],
        metrics=json_metrics(bench),
        config=dict(FULL_SIZES, rounds=3, reopt="conservative"),
    )
    failures = check_bars(bench)
    assert not failures, "\n".join(failures) + "\n" + bench["table"]


# ----------------------------------------------------------------------
# standalone entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale, one round: assert a switch fires and results "
        "stay identical (timing bars skipped)",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    rounds = 1 if args.smoke else args.rounds
    bench = run_bench(sizes, args.seed, rounds)
    print(bench["table"])
    failures = check_bars(bench, smoke=args.smoke)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(
        f"OK: {bench['events']} switch(es), misestimate "
        f"{bench['misestimate']:.1f}x, speedup {bench['speedup']:.2f}x "
        f"wall / {bench['modeled_speedup']:.2f}x modeled, result-match "
        f"{bench['result_match_ratio']:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
